//! Per-rank mailboxes: the O(p) replacement for the O(p²) mpsc
//! channel mesh.
//!
//! Every rank owns one [`Mailbox`]; a send from rank `s` pushes onto
//! the *receiver's* mailbox under its per-sender FIFO queue, so the
//! job carries `p` mailboxes total instead of `p²` channels — the
//! difference between p=4096 being a 4096-element vector and a
//! sixteen-million-channel mesh. Queues are sparse (a `HashMap` keyed
//! by sender) because real SPMD traffic touches a handful of
//! neighbors, not all peers.
//!
//! Ordering: per-edge FIFO is preserved exactly as mpsc channels
//! preserved it — each `(sender, receiver)` edge has its own queue and
//! `push`/`try_pop` operate on queue ends. Only the owning rank ever
//! *waits* on its mailbox condvar; senders and the completion-wakeup
//! path only notify.

use crate::comm::Packet;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One rank's inbox: per-sender FIFO queues plus the condvar its owner
/// parks on while blocked in `recv`.
pub(crate) struct Mailbox {
    inner: Mutex<HashMap<usize, VecDeque<Packet>>>,
    cv: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Mailbox {
            inner: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }

    /// Deliver a packet on the `(from → owner)` edge and wake the
    /// owner if it is parked.
    pub fn push(&self, from: usize, pkt: Packet) {
        let mut inner = self.inner.lock().unwrap();
        inner.entry(from).or_default().push_back(pkt);
        drop(inner);
        self.cv.notify_all();
    }

    /// Whether a packet from `from` is queued. The deadlock detector
    /// uses this to tell a genuinely blocked rank from a starved one
    /// that just hasn't consumed its mail yet.
    pub fn has_from(&self, from: usize) -> bool {
        self.inner
            .lock()
            .unwrap()
            .get(&from)
            .is_some_and(|q| !q.is_empty())
    }

    /// Non-blocking take of the next packet from `from`.
    pub fn try_pop(&self, from: usize) -> Option<Packet> {
        let mut inner = self.inner.lock().unwrap();
        let q = inner.get_mut(&from)?;
        let pkt = q.pop_front();
        if q.is_empty() {
            inner.remove(&from);
        }
        pkt
    }

    /// Take the next packet from `from`, parking on the mailbox
    /// condvar for at most `timeout` if none is queued. Returns `None`
    /// on timeout or when woken for a reason other than a matching
    /// packet (a peer finishing, a verdict being posted) — the caller
    /// re-checks the job state and calls again.
    pub fn pop_or_wait(&self, from: usize, timeout: Duration) -> Option<Packet> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(q) = inner.get_mut(&from) {
            if let Some(pkt) = q.pop_front() {
                if q.is_empty() {
                    inner.remove(&from);
                }
                return Some(pkt);
            }
        }
        let (mut inner, _timed_out) = self.cv.wait_timeout(inner, timeout).unwrap();
        let q = inner.get_mut(&from)?;
        let pkt = q.pop_front();
        if q.is_empty() {
            inner.remove(&from);
        }
        pkt
    }

    /// Wake the owner without delivering anything, so a parked rank
    /// re-checks peer states immediately (used when a peer finishes or
    /// a deadlock verdict is posted, replacing the mpsc disconnect
    /// signal).
    pub fn notify(&self) {
        // Taking the lock orders this wakeup after the state change
        // the owner must observe: the owner either holds the lock in
        // `pop_or_wait` (and will re-check after waking) or has not
        // yet entered it (and will see the state on its fast path).
        drop(self.inner.lock().unwrap());
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pkt(v: f64) -> Packet {
        Packet {
            data: vec![v],
            send_clock: v,
        }
    }

    #[test]
    fn per_edge_fifo_is_preserved() {
        let mb = Mailbox::new();
        for i in 0..5 {
            mb.push(1, pkt(i as f64));
        }
        mb.push(2, pkt(100.0));
        for i in 0..5 {
            assert_eq!(mb.try_pop(1).unwrap().data, vec![i as f64]);
        }
        assert!(mb.try_pop(1).is_none());
        assert_eq!(mb.try_pop(2).unwrap().data, vec![100.0]);
    }

    #[test]
    fn pop_or_wait_times_out_empty() {
        let mb = Mailbox::new();
        assert!(mb.pop_or_wait(0, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn pop_or_wait_sees_a_concurrent_push() {
        let mb = Arc::new(Mailbox::new());
        let pusher = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                mb.push(3, pkt(7.0));
            })
        };
        // Generous deadline; the push should land within the first
        // couple of waits.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let got = loop {
            if let Some(p) = mb.pop_or_wait(3, Duration::from_millis(20)) {
                break p;
            }
            assert!(std::time::Instant::now() < deadline, "push never arrived");
        };
        assert_eq!(got.data, vec![7.0]);
        pusher.join().unwrap();
    }

    #[test]
    fn notify_wakes_without_delivery() {
        let mb = Arc::new(Mailbox::new());
        let waker = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                mb.notify();
            })
        };
        // A long timeout cut short by notify still returns None —
        // the caller is expected to re-check job state.
        let t0 = std::time::Instant::now();
        let got = mb.pop_or_wait(0, Duration::from_secs(30));
        assert!(got.is_none());
        assert!(t0.elapsed() < Duration::from_secs(10), "notify must wake");
        waker.join().unwrap();
    }
}
