//! Worker-slot scheduler: multiplexes `p` virtual ranks over a fixed
//! pool of `W` execution slots.
//!
//! A logical rank is a *schedulable task*, not a dedicated OS thread.
//! Each rank does run on its own small-stack carrier thread (arbitrary
//! rank closures cannot be suspended mid-call without coroutines), but
//! at most `W` carriers execute at any moment: a rank must hold one of
//! `W` worker slots to run, and a rank that blocks in `recv` *parks* —
//! it releases its slot back to the pool and sleeps on its own condvar,
//! costing nothing but a parked stack until a message (or a verdict)
//! wakes it. This is the scheduler-activations shape: the slot pool
//! bounds concurrency, the carrier threads preserve blocked state.
//!
//! Handoff is direct and FIFO: `release` gives the freed slot straight
//! to the longest-waiting rank (waking exactly that rank's condvar)
//! instead of incrementing a shared semaphore and letting every waiter
//! stampede. With `W >= p` no rank ever queues, which is how the
//! pooled scheduler stays byte-identical to the seed's
//! thread-per-rank behavior.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// One rank's park flag: `granted` is set by the releasing rank when
/// it hands its slot over, under the slot's own mutex so only the one
/// chosen waiter wakes.
struct ParkSlot {
    granted: Mutex<bool>,
    cv: Condvar,
}

/// Slot-pool bookkeeping, guarded by one mutex: free slots and the
/// FIFO of ranks waiting for one.
struct SchedState {
    free: usize,
    ready: VecDeque<usize>,
}

/// The per-job scheduler shared by every rank's [`crate::Comm`].
pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    slots: Vec<ParkSlot>,
    /// Times a rank had to queue for a slot (its acquire did not find
    /// one free). Purely observational — never read on the hot path.
    parks: AtomicU64,
}

impl Scheduler {
    /// A pool of `workers` slots serving ranks `0..p`.
    pub fn new(workers: usize, p: usize) -> Self {
        debug_assert!(workers >= 1, "a pool needs at least one worker");
        Scheduler {
            state: Mutex::new(SchedState {
                free: workers,
                ready: VecDeque::new(),
            }),
            slots: (0..p)
                .map(|_| ParkSlot {
                    granted: Mutex::new(false),
                    cv: Condvar::new(),
                })
                .collect(),
            parks: AtomicU64::new(0),
        }
    }

    /// Times a rank queued for a slot over the job's lifetime.
    #[cfg(test)]
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Block until `rank` holds a worker slot. Called once at rank
    /// start and again after every park; the caller must not already
    /// hold a slot.
    pub fn acquire(&self, rank: usize) {
        {
            let mut st = self.state.lock().unwrap();
            if st.free > 0 {
                st.free -= 1;
                return;
            }
            st.ready.push_back(rank);
        }
        self.parks.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[rank];
        let mut granted = slot.granted.lock().unwrap();
        while !*granted {
            granted = slot.cv.wait(granted).unwrap();
        }
        // Consume the grant so the next acquire by this rank waits
        // again instead of reusing a stale flag.
        *granted = false;
    }

    /// Give this rank's worker slot back: hand it directly to the
    /// longest-queued rank, or return it to the free pool when nobody
    /// waits. Called when a rank parks in a blocked receive and when
    /// it finishes.
    pub fn release(&self) {
        let next = {
            let mut st = self.state.lock().unwrap();
            match st.ready.pop_front() {
                Some(r) => r,
                None => {
                    st.free += 1;
                    return;
                }
            }
        };
        let slot = &self.slots[next];
        *slot.granted.lock().unwrap() = true;
        slot.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn pool_never_exceeds_worker_count() {
        let p = 32;
        let workers = 3;
        let sched = Arc::new(Scheduler::new(workers, p));
        let running = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for rank in 0..p {
                let sched = Arc::clone(&sched);
                let running = Arc::clone(&running);
                let high_water = Arc::clone(&high_water);
                scope.spawn(move || {
                    for _ in 0..10 {
                        sched.acquire(rank);
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        high_water.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        running.fetch_sub(1, Ordering::SeqCst);
                        sched.release();
                    }
                });
            }
        });
        let peak = high_water.load(Ordering::SeqCst);
        assert!(
            peak <= workers,
            "{peak} ranks ran concurrently on a {workers}-slot pool"
        );
        assert!(sched.parks() > 0, "32 ranks over 3 slots must queue");
    }

    #[test]
    fn uncontended_pool_never_parks() {
        let p = 4;
        let sched = Arc::new(Scheduler::new(p, p));
        std::thread::scope(|scope| {
            for rank in 0..p {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    for _ in 0..100 {
                        sched.acquire(rank);
                        sched.release();
                    }
                });
            }
        });
        assert_eq!(sched.parks(), 0, "W >= p must behave like a free pool");
    }

    #[test]
    fn release_hands_off_in_fifo_order() {
        // One slot, taken up front; ranks 1 and 2 queue in order and
        // must be granted in that order.
        let sched = Arc::new(Scheduler::new(1, 3));
        sched.acquire(0);
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for rank in [1usize, 2] {
                let sched_for_thread = Arc::clone(&sched);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    sched_for_thread.acquire(rank);
                    order.lock().unwrap().push(rank);
                    sched_for_thread.release();
                });
                // Let the spawned thread enqueue before the next one.
                while sched.parks() < rank as u64 {
                    std::thread::yield_now();
                }
            }
            sched.release();
        });
        assert_eq!(*order.lock().unwrap(), vec![1, 2]);
    }
}
