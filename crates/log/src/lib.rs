//! Job-scoped structured logging for the Otter runtime.
//!
//! Three small pieces, all dependency-free:
//!
//! * [`JobId`] / [`SpanId`] — the correlation keys. One `JobId` is
//!   minted per engine run (or per `otterd` request) and threaded
//!   through compile, the scheduler, Comm, the executor, metrics, and
//!   any failure report, so every observability artifact produced by
//!   one job can be joined on the same key. `SpanId`s subdivide a job
//!   into phases (compile, run, per-pass) without a global registry.
//! * [`LogLevel`] — the usual four-level severity lattice with a total
//!   order, so "give me warn and up" is a single comparison.
//! * [`FlightRecorder`] — a bounded ring buffer of [`FlightEvent`]s,
//!   the always-on backing store. Recording is overwrite-oldest and
//!   allocation-free after construction, so every rank can afford one
//!   even when full tracing is off: when a job dies, the last few
//!   dozen events per rank are exactly the context a postmortem needs.
//!
//! The recorder deliberately stores fixed-size events (`&'static str`
//! code plus two integer payload slots) rather than formatted strings:
//! formatting happens only if the events are ever rendered, which for
//! a healthy job is never.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide monotonic source for [`JobId::mint`].
static NEXT_JOB: AtomicU64 = AtomicU64::new(1);

/// Stable correlation key for one job (one engine run).
///
/// Displays as 16 lowercase hex digits — the same spelling the serve
/// layer uses in `/jobs`, trace exports, and postmortem bundles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl JobId {
    /// Mint a process-unique id (monotonic, starts at 1).
    pub fn mint() -> JobId {
        JobId(NEXT_JOB.fetch_add(1, Ordering::Relaxed))
    }

    /// Parse the 16-hex-digit spelling produced by `Display`.
    pub fn parse(s: &str) -> Option<JobId> {
        u64::from_str_radix(s, 16).ok().map(JobId)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Correlation key for one phase (span) within a job.
///
/// Spans are allocated per job by [`SpanId::next`] chaining, so
/// two jobs' spans never need a shared counter: span k of job j is
/// just `(j, k)` — the pair is globally unique because `JobId` is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId {
    pub job: JobId,
    pub seq: u32,
}

impl SpanId {
    /// The first span of a job.
    pub fn root(job: JobId) -> SpanId {
        SpanId { job, seq: 0 }
    }

    /// The span following this one within the same job.
    pub fn next(self) -> SpanId {
        SpanId {
            job: self.job,
            seq: self.seq + 1,
        }
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.job, self.seq)
    }
}

/// Severity levels, ordered `Error < Warn < Info < Debug` so that
/// "at most this verbose" is `level <= filter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogLevel {
    Error,
    Warn,
    Info,
    Debug,
}

impl LogLevel {
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    /// Parse the lowercase spelling (`"warn"`), for protocol fields.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "error" => Some(LogLevel::Error),
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One flight-recorder event. Fixed size, no heap: the code is a
/// `&'static str` tag (dotted, e.g. `"comm.send"`), and the two
/// payload slots carry whatever the code defines (peer rank, byte
/// count, op index...). `clock` is a read-only observation of the
/// rank's virtual clock at record time — the recorder never *charges*
/// time, so enabling it cannot perturb modeled results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Per-recorder monotonic sequence number (never wraps in practice).
    pub seq: u64,
    /// Virtual clock of the owning rank when the event was recorded.
    pub clock: f64,
    pub level: LogLevel,
    pub code: &'static str,
    /// First payload slot (meaning depends on `code`).
    pub a: u64,
    /// Second payload slot (meaning depends on `code`).
    pub b: u64,
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} [{}] {} a={} b={} clock={:.6}",
            self.seq, self.level, self.code, self.a, self.b, self.clock
        )
    }
}

/// Default ring capacity per rank. Small enough that even p=3000
/// stress jobs stay in the low megabytes, large enough to hold the
/// whole recent comm history that a deadlock diagnosis wants.
pub const DEFAULT_RECORDER_CAPACITY: usize = 64;

/// Bounded ring-buffer flight recorder: always on, fixed memory,
/// overwrite-oldest. One per rank (single-writer, no locks); the
/// serve layer also keeps one process-wide behind a mutex for the
/// `logs` protocol op.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<FlightEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Total events ever recorded (= next seq).
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events. Capacity 0 is
    /// clamped to 1 so `record` never has to special-case it.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            buf: Vec::with_capacity(capacity.max(1)),
            cap: capacity.max(1),
            head: 0,
            recorded: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Append an event, overwriting the oldest if the ring is full.
    /// Allocation-free after the ring first fills.
    pub fn record(&mut self, level: LogLevel, code: &'static str, a: u64, b: u64, clock: f64) {
        let ev = FlightEvent {
            seq: self.recorded,
            clock,
            level,
            code,
            a,
            b,
        };
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Events in record order (oldest first).
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// The last `n` events in record order.
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let all = self.events();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }

    /// Events at `level` or more severe, in record order.
    pub fn filtered(&self, max_level: LogLevel) -> Vec<FlightEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.level <= max_level)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_are_unique_and_round_trip() {
        let a = JobId::mint();
        let b = JobId::mint();
        assert_ne!(a, b);
        assert_eq!(a.to_string().len(), 16);
        assert_eq!(JobId::parse(&a.to_string()), Some(a));
        assert_eq!(JobId::parse("zz"), None);
    }

    #[test]
    fn span_ids_chain_within_a_job() {
        let job = JobId(7);
        let s0 = SpanId::root(job);
        let s1 = s0.next();
        assert_eq!(s0.seq, 0);
        assert_eq!(s1.seq, 1);
        assert_eq!(s1.job, job);
        assert_eq!(s1.to_string(), "0000000000000007/1");
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        for l in [
            LogLevel::Error,
            LogLevel::Warn,
            LogLevel::Info,
            LogLevel::Debug,
        ] {
            assert_eq!(LogLevel::parse(l.as_str()), Some(l));
        }
        assert_eq!(LogLevel::parse("loud"), None);
    }

    #[test]
    fn ring_overwrites_oldest_and_stays_bounded() {
        let mut fr = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            fr.record(LogLevel::Debug, "t", i, 0, i as f64);
            assert!(fr.len() <= 4, "ring exceeded capacity");
        }
        assert_eq!(fr.recorded(), 10);
        let evs = fr.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest events must be overwritten, order preserved"
        );
        assert_eq!(evs[0].seq, 6);
    }

    #[test]
    fn tail_and_filter() {
        let mut fr = FlightRecorder::with_capacity(8);
        fr.record(LogLevel::Debug, "a", 0, 0, 0.0);
        fr.record(LogLevel::Error, "b", 1, 0, 0.0);
        fr.record(LogLevel::Info, "c", 2, 0, 0.0);
        assert_eq!(fr.tail(2).iter().map(|e| e.a).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(fr.tail(99).len(), 3);
        let errs = fr.filtered(LogLevel::Error);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].code, "b");
        assert_eq!(fr.filtered(LogLevel::Info).len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut fr = FlightRecorder::with_capacity(0);
        fr.record(LogLevel::Info, "x", 1, 2, 0.5);
        fr.record(LogLevel::Info, "y", 3, 4, 1.0);
        assert_eq!(fr.capacity(), 1);
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.events()[0].code, "y");
    }

    #[test]
    fn clone_snapshots_are_independent() {
        let mut fr = FlightRecorder::with_capacity(2);
        fr.record(LogLevel::Info, "x", 1, 0, 0.0);
        let snap = fr.clone();
        fr.record(LogLevel::Info, "y", 2, 0, 0.0);
        assert_eq!(snap.len(), 1);
        assert_eq!(fr.len(), 2);
    }
}
