//! Wall-clock benches for the ablation studies: peephole on/off and
//! compiler-pipeline cost itself (plain timing harness).

use otter_core::{compile, run, CompiledArtifact, EngineOptions, RunRequest};
use otter_machine::meiko_cs2;
use std::time::Instant;

const SAMPLES: usize = 10;

fn bench(label: &str, mut f: impl FnMut()) {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("{label:<40} {:>12.3} ms (best of {SAMPLES})", best * 1e3);
}

fn run_compiled(artifact: &CompiledArtifact, p: usize) {
    run(artifact, &RunRequest::on(meiko_cs2(), p)).unwrap();
}

fn bench_peephole() {
    let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params::test());
    let with = compile(&app.script, &EngineOptions::default()).unwrap();
    let without = compile(
        &app.script,
        &EngineOptions::builder().disable_pass("peephole").build(),
    )
    .unwrap();
    println!("== ablation_peephole ==");
    bench("cg_with_peephole", || run_compiled(&with, 4));
    bench("cg_without_peephole", || run_compiled(&without, 4));
}

fn bench_compile_time() {
    println!("== compiler_pipeline ==");
    for app in otter_apps::test_apps() {
        bench(&format!("compile/{}", app.id), || {
            otter_core::compile_str(&app.script).unwrap();
        });
    }
}

fn main() {
    bench_peephole();
    bench_compile_time();
}
