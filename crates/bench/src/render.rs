//! Text rendering of tables and figures for the harness binary and
//! EXPERIMENTS.md.

use crate::ablation::{CollectiveAblation, GrainPoint, PeepholeAblation, TypeInferAblation};
use crate::figures::{Fig2Row, FigureData};
use crate::table1::System;
use std::fmt::Write;

/// Render Table 1.
pub fn render_table1(systems: &[System]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1. Experimental and commercial MATLAB-based systems targeting parallel computers."
    );
    let _ = writeln!(
        out,
        "{:<18} {:<34} {:<24} Pure-MATLAB parallel",
        "Name", "Site", "Implementation"
    );
    let _ = writeln!(out, "{}", "-".repeat(98));
    for s in systems {
        let _ = writeln!(
            out,
            "{:<18} {:<34} {:<24} {}",
            s.name,
            s.site,
            s.implementation,
            if s.pure_matlab_parallel { "yes" } else { "no" }
        );
    }
    out
}

/// Render Figure 2 as a table.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2. Relative performance on a single UltraSPARC CPU (interpreter = 1.0)."
    );
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "Application", "Interpreter", "MATCOM", "Otter", "Otter ops"
    );
    let _ = writeln!(out, "{}", "-".repeat(75));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>12.2} {:>12.2} {:>12.2} {:>12}",
            r.app,
            r.interpreter.relative,
            r.matcom.relative,
            r.otter.relative,
            r.otter.total_ops()
        );
    }
    out
}

/// Render one speedup figure as a table plus an ASCII chart.
pub fn render_figure(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}. {} — speedup over the MATLAB interpreter on one CPU of each machine.",
        fig.figure, fig.app
    );
    // Header: CPU counts from the widest series.
    let widest = fig.series.iter().max_by_key(|s| s.points.len()).unwrap();
    let _ = write!(out, "{:<22}", "Machine");
    for (p, _) in &widest.points {
        let _ = write!(out, "{:>9}", format!("p={p}"));
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(22 + 9 * widest.points.len()));
    for s in &fig.series {
        let _ = write!(out, "{:<22}", s.machine);
        for (_, v) in &s.points {
            let _ = write!(out, "{v:>9.1}");
        }
        let _ = writeln!(out);
    }
    // ASCII chart of the final column.
    let max = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|(_, v)| *v))
        .fold(1.0_f64, f64::max);
    let _ = writeln!(out);
    for s in &fig.series {
        let best = s.points.last().map(|(_, v)| *v).unwrap_or(0.0);
        let bars = ((best / max) * 40.0).round() as usize;
        let _ = writeln!(
            out,
            "{:<22} {} {:.1}x",
            s.machine,
            "#".repeat(bars.max(1)),
            best
        );
    }
    out
}

/// Render a speedup figure as CSV (for external plotting).
pub fn render_figure_csv(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} — {}", fig.figure, fig.app);
    let _ = writeln!(out, "machine,cpus,speedup");
    for s in &fig.series {
        for (p, v) in &s.points {
            let _ = writeln!(out, "{},{},{:.4}", s.machine, p, v);
        }
    }
    out
}

/// Render Figure 2 as CSV: one row per application × engine, carrying
/// the uniform [`EngineReport`](otter_core::EngineReport) counters
/// (per-opcode operation totals, messages, bytes) alongside the
/// relative-performance number.
pub fn render_fig2_csv(rows: &[Fig2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "application,engine,relative,seconds,total_ops,messages,bytes,op_counts"
    );
    for r in rows {
        for (engine, cell) in r.cells() {
            let breakdown = cell
                .op_counts
                .iter()
                .map(|(k, v)| format!("{k}:{v}"))
                .collect::<Vec<_>>()
                .join(";");
            let _ = writeln!(
                out,
                "{},{},{:.4},{:.6e},{},{},{},{}",
                r.app,
                engine,
                cell.relative,
                cell.seconds,
                cell.total_ops(),
                cell.messages,
                cell.bytes,
                breakdown
            );
        }
    }
    out
}

/// Render the peephole ablation.
pub fn render_peephole(rows: &[PeepholeAblation]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablation: pass-6 peephole optimizer (Meiko CS-2).");
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "Application", "CPUs", "IR w/", "IR w/o", "sec w/", "sec w/o", "msgs -%"
    );
    let _ = writeln!(out, "{}", "-".repeat(88));
    for a in rows {
        let msg_drop = if a.messages_without > 0 {
            100.0 * (1.0 - a.messages_with as f64 / a.messages_without as f64)
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>10} {:>10} {:>12.4} {:>12.4} {:>8.1}%",
            a.app,
            a.p,
            a.instrs_with,
            a.instrs_without,
            a.seconds_with,
            a.seconds_without,
            msg_drop
        );
    }
    out
}

/// Render the type-inference ablation.
pub fn render_typeinfer(rows: &[TypeInferAblation]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: type inference (real vs complex-assumed), Meiko CS-2."
    );
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>12} {:>14} {:>10} {:>12}",
        "Application", "CPUs", "sec (real)", "sec (complex)", "slowdown", "bytes ratio"
    );
    let _ = writeln!(out, "{}", "-".repeat(82));
    for a in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>12.4} {:>14.4} {:>9.2}x {:>11.1}x",
            a.app,
            a.p,
            a.seconds_real,
            a.seconds_complex,
            a.seconds_complex / a.seconds_real,
            a.bytes_complex as f64 / a.bytes_real as f64
        );
    }
    out
}

/// Render the collectives ablation.
pub fn render_collectives(rows: &[CollectiveAblation]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: collective schedules (binomial tree vs linear), CG-style message mix."
    );
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>14} {:>14} {:>10}",
        "Machine", "CPUs", "tree (s)", "linear (s)", "linear/tree"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>14.6} {:>14.6} {:>9.2}x",
            r.machine,
            r.p,
            r.seconds_tree,
            r.seconds_linear,
            r.seconds_linear / r.seconds_tree
        );
    }
    out
}

/// Render the grain-size sweep.
pub fn render_grain(machine: &str, p: usize, pts: &[GrainPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Grain-size sweep: conjugate-gradient speedup at p={p} on the {machine}."
    );
    let _ = writeln!(out, "{:<10} {:>10}", "n", "speedup");
    let _ = writeln!(out, "{}", "-".repeat(21));
    for pt in pts {
        let _ = writeln!(out, "{:<10} {:>10.2}", pt.n, pt.speedup);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::SpeedupSeries;

    #[test]
    fn table1_renders_all_rows() {
        let s = render_table1(crate::TABLE1);
        assert!(s.contains("Otter"));
        assert!(s.contains("FALCON"));
        assert_eq!(s.lines().count(), 3 + crate::TABLE1.len());
    }

    #[test]
    fn figure_render_includes_all_machines() {
        let fig = FigureData {
            figure: "Figure 9",
            app: "Test".into(),
            series: vec![
                SpeedupSeries {
                    machine: "Meiko CS-2".into(),
                    points: vec![(1, 2.0), (2, 4.0)],
                },
                SpeedupSeries {
                    machine: "Enterprise SMP".into(),
                    points: vec![(1, 2.0)],
                },
            ],
            messages_at_max: 0,
        };
        let s = render_figure(&fig);
        assert!(s.contains("Meiko CS-2"));
        assert!(s.contains("Enterprise SMP"));
        assert!(s.contains("p=2"));
        assert!(s.contains("4.0"));
    }
}
