//! Property tests for the front end: random expression generation,
//! print→parse round-trips, and robustness of the scanner on
//! arbitrary input.

use otter_frontend::ast::*;
use otter_frontend::pretty::expr_to_string;
use otter_frontend::{lexer, parse_expr};
use proptest::prelude::*;

/// Generate random well-formed expressions over a small vocabulary.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (1u32..1000).prop_map(|v| Expr::int(v as i64)),
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("xs")]
            .prop_map(|n| Expr::var(n)),
        (1u32..100, 1u32..100)
            .prop_map(|(a, b)| Expr::synth(ExprKind::Number {
                value: a as f64 / b as f64,
                is_int: false
            })),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            // Binary operators.
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::ElemMul),
                    Just(BinOp::ElemDiv),
                    Just(BinOp::Pow),
                    Just(BinOp::Lt),
                    Just(BinOp::And),
                ]
            )
                .prop_map(|(l, r, op)| Expr::synth(ExprKind::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r)
                })),
            // Unary.
            inner.clone().prop_map(|e| Expr::synth(ExprKind::Unary {
                op: UnOp::Neg,
                operand: Box::new(e)
            })),
            // Transpose.
            inner.clone().prop_map(|e| Expr::synth(ExprKind::Transpose {
                op: TransposeOp::Conjugate,
                operand: Box::new(e)
            })),
            // Call with up to 2 args.
            (inner.clone(), proptest::collection::vec(inner.clone(), 0..3)).prop_map(
                |(first, mut rest)| {
                    let mut args = vec![first];
                    args.append(&mut rest);
                    Expr::synth(ExprKind::Call { callee: "f".into(), args })
                }
            ),
            // Range.
            (inner.clone(), inner).prop_map(|(a, b)| Expr::synth(ExprKind::Range {
                start: Box::new(a),
                step: None,
                stop: Box::new(b)
            })),
        ]
    })
}

proptest! {
    /// print → parse → print is a fixed point: whatever the printer
    /// produces, re-parsing yields the same surface form.
    #[test]
    fn print_parse_print_is_stable(e in expr_strategy()) {
        let printed = expr_to_string(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("printer produced unparseable `{printed}`: {err}"));
        let printed2 = expr_to_string(&reparsed);
        prop_assert_eq!(printed, printed2);
    }

    /// The scanner never panics, whatever bytes arrive.
    #[test]
    fn lexer_total_on_arbitrary_ascii(s in "[ -~\n\t]{0,200}") {
        let _ = lexer::tokenize(&s); // Ok or Err, never panic
    }

    /// Token spans are monotonically non-decreasing and in-bounds.
    #[test]
    fn token_spans_are_ordered(s in "[a-z0-9+*();,=\\[\\] .':\n-]{0,120}") {
        if let Ok(tokens) = lexer::tokenize(&s) {
            let mut last_start = 0u32;
            for t in &tokens {
                prop_assert!(t.span.start >= last_start, "span order in {s:?}");
                prop_assert!(t.span.end as usize <= s.len() || t.span.len() == 0);
                last_start = t.span.start;
            }
        }
    }

    /// Parsing arbitrary input never panics either.
    #[test]
    fn parser_total_on_arbitrary_ascii(s in "[ -~\n]{0,200}") {
        let _ = otter_frontend::parse(&s);
    }
}
