//! Benchmark 3 — n-body simulation (paper §5):
//! "performs an n-body simulation for 5,000 particles. This algorithm
//! uses the built-in function mean. In addition, it exercises the
//! run-time library's broadcast function."
//!
//! The paper's n-body uses O(n) vector operations per step (its §6
//! discussion: "the preponderance of O(n) operations limits the
//! opportunities for speedup"), i.e. a mean-field approximation rather
//! than all-pairs forces. This reconstruction follows that structure:
//! per step, the centre of mass comes from `mean` (an O(n) reduction),
//! forces and integration are O(n) element-wise vectors, and a probe
//! particle is read out each step — the element read that "exercises
//! the run-time library's broadcast function".

use crate::App;

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Particle count.
    pub n: usize,
    /// Time steps.
    pub steps: usize,
}

impl Params {
    /// Paper scale: 5 000 particles.
    pub fn paper() -> Params {
        Params {
            n: 5000,
            steps: 100,
        }
    }

    /// Test scale.
    pub fn test() -> Params {
        Params { n: 200, steps: 20 }
    }

    /// Large scale: long particle vectors over more steps.
    pub fn large() -> Params {
        Params { n: 2000, steps: 50 }
    }
}

/// Build the n-body benchmark script.
pub fn n_body(p: Params) -> App {
    let Params { n, steps } = p;
    let script = format!(
        "\
% Mean-field n-body simulation (1-D positions and velocities).
n = {n};
nsteps = {steps};
dt = 0.002;
g = 4.0;
% Deterministic initial conditions: smooth position spread, zero
% total momentum.
xs = (1:n)' / n;
x = xs + 0.05 * sin(xs * 12.566370614359172);
v = 0.1 * cos(xs * 6.283185307179586);
v = v - mean(v);
probe = 0;
for step = 1:nsteps
  cm = mean(x);
  acc = g * (cm - x);
  v = v + dt * acc;
  x = x + dt * v;
  probe = probe + x(17);
end
cmend = mean(x);
spread = norm(x - cmend);
ke = sum(v .* v) / 2;
"
    );
    App {
        name: "N-body Problem",
        id: "nbody",
        script,
        result_vars: vec!["probe", "cmend", "spread", "ke"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conserves_center_of_mass() {
        let app = n_body(Params::test());
        let out = otter_interp::run_script(&app.script, None)
            .unwrap_or_else(|e| panic!("{e}\n{}", app.script));
        // Zero net momentum ⇒ centre of mass is stationary at its
        // initial value (mean of x at t=0).
        let cmend = out.scalar("cmend").unwrap();
        let n = Params::test().n as f64;
        let cm0_expect = (n + 1.0) / (2.0 * n); // mean of xs (sin-mean ~ 0)
        assert!(
            (cmend - cm0_expect).abs() < 1e-2,
            "cmend={cmend} vs {cm0_expect}"
        );
    }

    #[test]
    fn probe_accumulates() {
        let app = n_body(Params { n: 64, steps: 5 });
        let out = otter_interp::run_script(&app.script, None).unwrap();
        let probe = out.scalar("probe").unwrap();
        assert!(probe.is_finite() && probe != 0.0);
    }

    #[test]
    fn energy_is_bounded() {
        let app = n_body(Params::test());
        let out = otter_interp::run_script(&app.script, None).unwrap();
        let ke = out.scalar("ke").unwrap();
        assert!(ke > 0.0 && ke < 100.0, "ke={ke}");
    }
}
