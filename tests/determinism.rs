//! Determinism guarantees: compiled SPMD execution is a simulation of
//! a *specific* machine, so repeated runs must agree exactly — same
//! numerical results, same modeled time, same message counts —
//! regardless of host scheduling. These properties are what make the
//! benchmark harness's figures reproducible.

mod common;

use common::run_compiled;
use otter_core::{compile, EngineOptions};
use otter_machine::{meiko_cs2, sparc20_cluster};

const SRC: &str = "\
n = 33;
u = 1:n;
a = u' * u / n + eye(n);
v = cos(u)';
w = a * v;
d = v' * w;
s = sum(w);
t = circshift(w, 3);
z = norm(t - w);
";

#[test]
fn repeated_runs_are_bitwise_identical() {
    let compiled = compile(SRC, &EngineOptions::default()).unwrap();
    let machine = meiko_cs2();
    let first = run_compiled(&compiled, &machine, 8).unwrap();
    for _ in 0..3 {
        let again = run_compiled(&compiled, &machine, 8).unwrap();
        for v in ["d", "s", "z"] {
            assert_eq!(
                first.scalar(v).unwrap().to_bits(),
                again.scalar(v).unwrap().to_bits(),
                "{v} must be bitwise stable"
            );
        }
        assert_eq!(first.modeled_seconds, again.modeled_seconds, "modeled time");
        assert_eq!(first.messages, again.messages, "message count");
        assert_eq!(first.bytes, again.bytes, "byte count");
    }
}

#[test]
fn modeled_time_is_a_pure_function_of_machine_and_p() {
    let compiled = compile(SRC, &EngineOptions::default()).unwrap();
    for machine in [meiko_cs2(), sparc20_cluster()] {
        for p in [1usize, 2, 5, 8] {
            let a = run_compiled(&compiled, &machine, p)
                .unwrap()
                .modeled_seconds;
            let b = run_compiled(&compiled, &machine, p)
                .unwrap()
                .modeled_seconds;
            assert_eq!(a, b, "{} p={p}", machine.name);
        }
    }
}

#[test]
fn results_are_p_invariant_within_tolerance() {
    // Reductions reassociate across p, so exact bits may differ
    // between *different* processor counts — but values must agree to
    // tight tolerance.
    let compiled = compile(SRC, &EngineOptions::default()).unwrap();
    let machine = meiko_cs2();
    let base = run_compiled(&compiled, &machine, 1).unwrap();
    for p in [2usize, 3, 7, 16] {
        let run = run_compiled(&compiled, &machine, p).unwrap();
        for v in ["d", "s", "z"] {
            let a = base.scalar(v).unwrap();
            let b = run.scalar(v).unwrap();
            assert!(
                (a - b).abs() <= 1e-10 * (1.0 + a.abs()),
                "{v}: p=1 gives {a}, p={p} gives {b}"
            );
        }
    }
}

#[test]
fn machine_model_changes_time_not_answers() {
    let compiled = compile(SRC, &EngineOptions::default()).unwrap();
    let meiko = run_compiled(&compiled, &meiko_cs2(), 8).unwrap();
    let cluster = run_compiled(&compiled, &sparc20_cluster(), 8).unwrap();
    for v in ["d", "s", "z"] {
        assert_eq!(
            meiko.scalar(v).unwrap().to_bits(),
            cluster.scalar(v).unwrap().to_bits(),
            "{v}: answers must not depend on the machine model"
        );
    }
    assert!(
        cluster.modeled_seconds > meiko.modeled_seconds,
        "the Ethernet cluster must be slower at p=8"
    );
}

#[test]
fn seeded_rand_is_p_invariant() {
    // The replicated-stream rand initializer must give every rank the
    // same data no matter how many ranks there are. Individual
    // elements are bitwise stable; sums only agree to reduction
    // tolerance (tree reassociation).
    let src = "a = rand(12, 12);\ns = sum(sum(a));\ne = a(3, 4);";
    let compiled = compile(src, &EngineOptions::default()).unwrap();
    let machine = meiko_cs2();
    let r1 = run_compiled(&compiled, &machine, 1).unwrap();
    for p in [2usize, 5, 8] {
        let rp = run_compiled(&compiled, &machine, p).unwrap();
        assert_eq!(
            r1.scalar("e").unwrap().to_bits(),
            rp.scalar("e").unwrap().to_bits(),
            "rand element must be bitwise identical at p={p}"
        );
        let (a, b) = (r1.scalar("s").unwrap(), rp.scalar("s").unwrap());
        assert!(
            (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
            "sum at p={p}: {a} vs {b}"
        );
    }
}
