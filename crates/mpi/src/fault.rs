//! Seeded, deterministic fault injection for SPMD jobs.
//!
//! A [`FaultPlan`] attached to `SpmdOptions` perturbs the job at
//! specific communication operations: drop the n-th message on an
//! edge, delay it by virtual seconds, or kill a rank outright at its
//! k-th comm op. Plans are data, not callbacks, so a seeded plan
//! reproduces the same failure on every run — the whole point of the
//! subsystem is turning "the job hung on the Meiko again" into a
//! replayable test case.
//!
//! When no plan is set the per-op cost is a single `Option` branch and
//! job output is byte-identical to a build without this module.

/// One deterministic perturbation of the job.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Silently drop the `nth` (0-based) message sent on the edge
    /// `from → to`. The sender is charged the full transfer as usual
    /// (it believes the send succeeded); the receiver never sees the
    /// message, which the deadlock detector then diagnoses.
    Drop { from: usize, to: usize, nth: u64 },
    /// Delay the `nth` (0-based) message on `from → to` by `seconds`
    /// virtual seconds: the packet's availability clock is pushed
    /// back, modeling a slow or retransmitted link.
    Delay {
        from: usize,
        to: usize,
        nth: u64,
        seconds: f64,
    },
    /// Kill rank `rank` at its `at_op`-th (1-based) communication
    /// operation: the op returns `CommError::InjectedCrash` before
    /// touching the wire.
    Crash { rank: usize, at_op: u64 },
}

/// A deterministic schedule of [`FaultAction`]s for one job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub actions: Vec<FaultAction>,
    /// The seed this plan was derived from, if any; carried for
    /// reporting so a failing CI run names its reproducer.
    pub seed: Option<u64>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder: drop the `nth` message on `from → to`.
    pub fn drop_message(mut self, from: usize, to: usize, nth: u64) -> Self {
        self.actions.push(FaultAction::Drop { from, to, nth });
        self
    }

    /// Builder: delay the `nth` message on `from → to` by `seconds`
    /// virtual seconds.
    pub fn delay_message(mut self, from: usize, to: usize, nth: u64, seconds: f64) -> Self {
        self.actions.push(FaultAction::Delay {
            from,
            to,
            nth,
            seconds,
        });
        self
    }

    /// Builder: crash `rank` at its `at_op`-th (1-based) comm op.
    pub fn crash(mut self, rank: usize, at_op: u64) -> Self {
        self.actions.push(FaultAction::Crash { rank, at_op });
        self
    }

    /// Derive a single-fault plan from a seed for a `p`-rank job:
    /// even seeds crash a rank early in the program, odd seeds drop a
    /// message on a pseudo-random edge. Same seed + same `p` → same
    /// plan, so CI failures quote their reproducer as `seed=N`.
    pub fn seeded(seed: u64, p: usize) -> Self {
        let mut s = seed;
        let r1 = splitmix64(&mut s);
        let r2 = splitmix64(&mut s);
        let r3 = splitmix64(&mut s);
        let p = p.max(2) as u64;
        let mut plan = if seed.is_multiple_of(2) {
            FaultPlan::new().crash((r1 % p) as usize, 1 + r2 % 4)
        } else {
            let from = r1 % p;
            let to = (from + 1 + r2 % (p - 1)) % p;
            FaultPlan::new().drop_message(from as usize, to as usize, r3 % 2)
        };
        plan.seed = Some(seed);
        plan
    }

    /// Does any action in this plan involve `rank` as the acting side
    /// (crash victim or sender of a dropped/delayed message)?
    pub(crate) fn touches(&self, rank: usize) -> bool {
        self.actions.iter().any(|a| match *a {
            FaultAction::Drop { from, .. } | FaultAction::Delay { from, .. } => from == rank,
            FaultAction::Crash { rank: r, .. } => r == rank,
        })
    }
}

/// `splitmix64`: the standard 64-bit mixer; tiny, seedable, and good
/// enough for picking fault sites (this is not cryptography).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-rank fault bookkeeping, built once at launch for ranks the
/// plan touches. Boxed behind an `Option` in `Comm` so the no-plan
/// path costs one branch per op.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// Comm ops this rank has executed (sends + recvs, 1-based after
    /// increment).
    pub ops: u64,
    /// First crash op for this rank, if any.
    pub crash_at: Option<u64>,
    /// Send perturbations: `(to, nth, what)`.
    edge_faults: Vec<(usize, u64, EdgeFault)>,
    /// Messages sent so far per destination.
    sent: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
enum EdgeFault {
    Drop,
    Delay(f64),
}

/// What a fault-checked send should do with the outgoing packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SendDisposition {
    Deliver,
    Drop,
    Delay(f64),
}

impl FaultState {
    pub fn for_rank(plan: &FaultPlan, rank: usize, size: usize) -> Option<Box<FaultState>> {
        if !plan.touches(rank) {
            return None;
        }
        let mut st = FaultState {
            ops: 0,
            crash_at: None,
            edge_faults: Vec::new(),
            sent: vec![0; size],
        };
        for a in &plan.actions {
            match *a {
                FaultAction::Crash { rank: r, at_op } if r == rank => {
                    st.crash_at = Some(st.crash_at.map_or(at_op, |c: u64| c.min(at_op)));
                }
                FaultAction::Drop { from, to, nth } if from == rank => {
                    st.edge_faults.push((to, nth, EdgeFault::Drop));
                }
                FaultAction::Delay {
                    from,
                    to,
                    nth,
                    seconds,
                } if from == rank => {
                    st.edge_faults.push((to, nth, EdgeFault::Delay(seconds)));
                }
                _ => {}
            }
        }
        Some(Box::new(st))
    }

    /// Count one comm op; `true` means the plan kills the rank here.
    pub fn note_op(&mut self) -> bool {
        self.ops += 1;
        self.crash_at == Some(self.ops)
    }

    /// Count one outgoing message to `to` and decide its fate.
    pub fn outgoing(&mut self, to: usize) -> SendDisposition {
        let seq = self.sent[to];
        self.sent[to] += 1;
        for &(t, nth, what) in &self.edge_faults {
            if t == to && nth == seq {
                return match what {
                    EdgeFault::Drop => SendDisposition::Drop,
                    EdgeFault::Delay(s) => SendDisposition::Delay(s),
                };
            }
        }
        SendDisposition::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed, 8);
            let b = FaultPlan::seeded(seed, 8);
            assert_eq!(a, b);
            assert_eq!(a.seed, Some(seed));
            assert_eq!(a.actions.len(), 1);
            match a.actions[0] {
                FaultAction::Crash { rank, at_op } => {
                    assert!(seed % 2 == 0);
                    assert!(rank < 8 && (1..=4).contains(&at_op));
                }
                FaultAction::Drop { from, to, nth } => {
                    assert!(seed % 2 == 1);
                    assert!(from < 8 && to < 8 && from != to && nth < 2);
                }
                FaultAction::Delay { .. } => panic!("seeded plans never delay"),
            }
        }
    }

    #[test]
    fn fault_state_tracks_per_edge_sequence() {
        let plan = FaultPlan::new().drop_message(0, 1, 1).crash(0, 3);
        let mut st = FaultState::for_rank(&plan, 0, 2).unwrap();
        assert_eq!(st.outgoing(1), SendDisposition::Deliver); // msg 0
        assert_eq!(st.outgoing(1), SendDisposition::Drop); // msg 1
        assert_eq!(st.outgoing(1), SendDisposition::Deliver);
        assert!(!st.note_op());
        assert!(!st.note_op());
        assert!(st.note_op()); // third op crashes
        assert!(FaultState::for_rank(&plan, 1, 2).is_none());
    }
}
