//! M-file source management.
//!
//! A MATLAB *program* is a script plus every M-file reachable from it
//! (paper §3). The resolution pass asks a [`SourceProvider`] for the
//! text of `name.m` whenever it meets an identifier that is not a
//! variable and not a built-in. Providers exist for in-memory maps
//! (tests, embedded benchmark apps) and directories on disk.

use std::collections::HashMap;
use std::path::PathBuf;

/// Supplies M-file sources by function name.
pub trait SourceProvider {
    /// Return the source text of `name.m`, or `None` if no such
    /// user-defined M-file exists (the name may still be a built-in).
    fn m_file(&self, name: &str) -> Option<String>;
}

/// A provider with no M-files at all; scripts must be self-contained.
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptyProvider;

impl SourceProvider for EmptyProvider {
    fn m_file(&self, _name: &str) -> Option<String> {
        None
    }
}

/// In-memory provider mapping function names to source text.
#[derive(Debug, Default, Clone)]
pub struct MapProvider {
    files: HashMap<String, String>,
}

impl MapProvider {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name.m` with the given source.
    pub fn insert(&mut self, name: impl Into<String>, src: impl Into<String>) -> &mut Self {
        self.files.insert(name.into(), src.into());
        self
    }

    /// Builder-style registration.
    pub fn with(mut self, name: impl Into<String>, src: impl Into<String>) -> Self {
        self.insert(name, src);
        self
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Registered `(name, source)` pairs in name order — a stable view
    /// for content hashing (e.g. compile-cache option fingerprints).
    pub fn entries(&self) -> Vec<(&str, &str)> {
        let mut pairs: Vec<(&str, &str)> = self
            .files
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        pairs.sort_unstable();
        pairs
    }
}

impl SourceProvider for MapProvider {
    fn m_file(&self, name: &str) -> Option<String> {
        self.files.get(name).cloned()
    }
}

/// Provider reading `<dir>/<name>.m` from the filesystem, like the
/// MATLAB path.
#[derive(Debug, Clone)]
pub struct DirProvider {
    dir: PathBuf,
}

impl DirProvider {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DirProvider { dir: dir.into() }
    }
}

impl SourceProvider for DirProvider {
    fn m_file(&self, name: &str) -> Option<String> {
        // Reject path-traversal attempts; M-file names are identifiers.
        if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return None;
        }
        std::fs::read_to_string(self.dir.join(format!("{name}.m"))).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_provider_has_nothing() {
        assert!(EmptyProvider.m_file("foo").is_none());
    }

    #[test]
    fn map_provider_round_trip() {
        let p = MapProvider::new().with("sq", "function y = sq(x)\ny = x * x;\n");
        assert!(p.m_file("sq").unwrap().contains("x * x"));
        assert!(p.m_file("cube").is_none());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn dir_provider_reads_files() {
        let dir = std::env::temp_dir().join(format!("otter_src_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("tri.m"), "function y = tri(x)\ny = x;\n").unwrap();
        let p = DirProvider::new(&dir);
        assert!(p.m_file("tri").is_some());
        assert!(p.m_file("missing").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_provider_rejects_traversal() {
        let p = DirProvider::new("/tmp");
        assert!(p.m_file("../etc/passwd").is_none());
        assert!(p.m_file("a/b").is_none());
    }
}
