//! Wall-clock benches: real host time of the workloads behind every
//! figure (plain timing harness; no external bench framework).
//!
//! * `fig2/*` — the three engines on each benchmark app (single CPU).
//! * `fig3..fig6/*` — the compiled app at increasing rank counts
//!   (real threads; wall time, not modeled time).
//!
//! Caveat for reading the numbers: at test scale the SPMD engine's
//! wall time is dominated by thread/channel orchestration, so the
//! interpreter (a single tight Rust loop) can win outright and rank
//! sweeps can grow with p. That is the *host's* overhead profile, not
//! the modeled 1998 machines' — the modeled figures in the harness are
//! the reproduction artifact. The `fig6_tc` group uses a larger
//! problem (n = 128, ~29 Mflop) where real compute dominates and
//! wall-clock scaling with ranks is visible on multi-core hosts.

use otter_core::{
    compile, run, run_engine, CompiledArtifact, EngineOptions, InterpreterEngine, MatcomEngine,
    RunRequest,
};
use otter_machine::{meiko_cs2, workstation, Machine};
use std::time::Instant;

const SAMPLES: usize = 10;

/// Run `f` SAMPLES times; report the best wall time (least-noise
/// estimator for short deterministic workloads).
fn bench(label: &str, mut f: impl FnMut()) {
    // One warm-up iteration.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("{label:<40} {:>12.3} ms (best of {SAMPLES})", best * 1e3);
}

fn run_compiled(artifact: &CompiledArtifact, machine: &Machine, p: usize) {
    run(artifact, &RunRequest::on(machine.clone(), p)).unwrap();
}

fn bench_fig2() {
    let ws = workstation();
    println!("== fig2_single_cpu ==");
    for app in otter_apps::test_apps() {
        let compiled = compile(&app.script, &EngineOptions::default()).expect("app compiles");
        bench(&format!("interpreter/{}", app.id), || {
            run_engine(
                &mut InterpreterEngine::new(EngineOptions::default()),
                &app.script,
                &ws,
                1,
            )
            .unwrap();
        });
        bench(&format!("matcom/{}", app.id), || {
            run_engine(
                &mut MatcomEngine::new(EngineOptions::default()),
                &app.script,
                &ws,
                1,
            )
            .unwrap();
        });
        bench(&format!("otter/{}", app.id), || {
            run_compiled(&compiled, &ws, 1)
        });
    }
}

fn bench_speedup(figure: &str, app_id: &str) {
    let machine = meiko_cs2();
    let app = if app_id == "tc" {
        // Big enough for real compute to dominate thread overhead.
        otter_apps::transitive::transitive_closure(otter_apps::transitive::Params { n: 128 })
    } else {
        otter_apps::test_apps()
            .into_iter()
            .find(|a| a.id == app_id)
            .unwrap()
    };
    let compiled = compile(&app.script, &EngineOptions::default()).expect("app compiles");
    println!("== {figure} ==");
    for p in [1usize, 2, 4, 8] {
        bench(&format!("{app_id}/p={p}"), || {
            run_compiled(&compiled, &machine, p)
        });
    }
}

fn main() {
    bench_fig2();
    bench_speedup("fig3_cg", "cg");
    bench_speedup("fig4_ocean", "ocean");
    bench_speedup("fig5_nbody", "nbody");
    bench_speedup("fig6_tc", "tc");
}
