//! Integration tests for the `otterc` command-line compiler.

use std::process::Command;

fn otterc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_otterc"))
}

fn workdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("otterc_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn compiles_a_script_to_c() {
    let dir = workdir("c");
    let m = dir.join("demo.m");
    std::fs::write(
        &m,
        "n = 8;\na = eye(n);\nv = ones(n, 1);\nw = a * v;\ns = sum(w);\n",
    )
    .unwrap();
    let out = otterc().arg(&m).output().expect("otterc runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let c = std::fs::read_to_string(dir.join("demo.c")).expect("demo.c written");
    assert!(c.contains("ML_matrix_vector_multiply"), "{c}");
    assert!(c.contains("int main(int argc, char **argv)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn runs_a_script_and_prints_output() {
    let dir = workdir("run");
    let m = dir.join("hello.m");
    std::fs::write(&m, "x = 6 * 7\n").unwrap();
    let out = otterc()
        .arg(&m)
        .args(["--run", "-p", "4", "--machine", "meiko"])
        .output()
        .expect("otterc runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("x ="), "{stdout}");
    assert!(stdout.contains("42"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("modeled"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resolves_m_files_from_script_directory() {
    let dir = workdir("mfiles");
    std::fs::write(dir.join("triple.m"), "function y = triple(x)\ny = x * 3;\n").unwrap();
    let m = dir.join("main.m");
    std::fs::write(&m, "z = triple(14)\n").unwrap();
    let out = otterc().arg(&m).args(["--run"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("42"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn emit_ir_prints_program() {
    let dir = workdir("ir");
    let m = dir.join("p.m");
    std::fs::write(&m, "a = ones(4, 4);\nb = a * a;\n").unwrap();
    let out = otterc().arg(&m).args(["--emit", "ir"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("matmul(a, a)"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compile_errors_exit_nonzero_with_message() {
    let dir = workdir("err");
    let m = dir.join("bad.m");
    std::fs::write(&m, "x = mystery_fn(3);\n").unwrap();
    let out = otterc().arg(&m).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mystery_fn"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_2() {
    let out = otterc().arg("--bogus-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn timing_prints_one_line_per_pass() {
    let dir = workdir("timing");
    let m = dir.join("t.m");
    std::fs::write(
        &m,
        "n = 8;\na = ones(n, n);\nb = a * a;\ns = sum(sum(b));\n",
    )
    .unwrap();
    let out = otterc().arg(&m).arg("--timing").output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    for pass in [
        "parse",
        "resolve",
        "ssa-infer",
        "rewrite",
        "guards",
        "peephole",
        "frees",
        "emit-c",
    ] {
        assert!(
            stderr.lines().any(|l| l.starts_with(pass)),
            "missing `{pass}` timing line:\n{stderr}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timing_skips_disabled_passes() {
    let dir = workdir("timing_nopeep");
    let m = dir.join("t.m");
    std::fs::write(&m, "v = 1:16;\ns = sum(v);\n").unwrap();
    let out = otterc()
        .arg(&m)
        .args(["--timing", "--no-peephole"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.lines().any(|l| l.starts_with("peephole")),
        "{stderr}"
    );
    assert!(stderr.lines().any(|l| l.starts_with("emit-c")), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dump_after_prints_artifact() {
    let dir = workdir("dump");
    let m = dir.join("d.m");
    std::fs::write(&m, "a = ones(4, 4);\nb = a * a;\n").unwrap();
    let out = otterc()
        .arg(&m)
        .arg("--dump-after=rewrite")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("=== after pass `rewrite` ==="), "{stdout}");
    assert!(stdout.contains("matmul"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dump_after_unknown_pass_is_an_error() {
    let dir = workdir("dump_bad");
    let m = dir.join("d.m");
    std::fs::write(&m, "x = 1;\n").unwrap();
    let out = otterc()
        .arg(&m)
        .arg("--dump-after=frobnicate")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
    std::fs::remove_dir_all(&dir).ok();
}
