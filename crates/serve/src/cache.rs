//! The compiled-artifact cache.
//!
//! Keyed by [`CompiledArtifact::cache_key`] — `(source content hash,
//! option fingerprint)` — so a repeat job with byte-identical source
//! and compile-relevant options skips passes 1–6 entirely and reuses
//! the artifact (one `Arc` bump). Eviction is least-recently-used over
//! a fixed entry capacity: artifacts are a few kilobytes of IR and C
//! text, so a small count bound is plenty, and LRU keeps the hot
//! scripts of a repeat-traffic workload resident.

use otter_core::{compile, CompiledArtifact, EngineOptions, OtterError};
use std::collections::HashMap;
use std::time::Instant;

/// What a [`ArtifactCache::get_or_compile`] did.
#[derive(Debug, Clone, Copy)]
pub struct CacheOutcome {
    /// True when the artifact came from the cache (no passes ran).
    pub cache_hit: bool,
    /// Wall seconds spent compiling; ~0 on a hit (one hash + lookup).
    pub compile_seconds: f64,
}

/// LRU cache of compiled artifacts.
#[derive(Debug)]
pub struct ArtifactCache {
    capacity: usize,
    entries: HashMap<(u64, u64), Entry>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    artifact: CompiledArtifact,
    last_used: u64,
}

impl ArtifactCache {
    /// A cache holding at most `capacity` artifacts (min 1).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Compile `src` under `opts`, unless an artifact with the same
    /// cache key is already resident. This is the serve path's *only*
    /// compile entry, so hit/miss counters are exact.
    pub fn get_or_compile(
        &mut self,
        src: &str,
        opts: &EngineOptions,
    ) -> Result<(CompiledArtifact, CacheOutcome), OtterError> {
        let started = Instant::now();
        let key = (otter_core::source_hash(src), opts.fingerprint());
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.tick;
            self.hits += 1;
            return Ok((
                entry.artifact.clone(),
                CacheOutcome {
                    cache_hit: true,
                    compile_seconds: started.elapsed().as_secs_f64(),
                },
            ));
        }
        self.misses += 1;
        let artifact = compile(src, opts)?;
        debug_assert_eq!(artifact.cache_key(), key);
        if self.entries.len() >= self.capacity {
            if let Some(&oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                artifact: artifact.clone(),
                last_used: self.tick,
            },
        );
        Ok((
            artifact,
            CacheOutcome {
                cache_hit: false,
                compile_seconds: started.elapsed().as_secs_f64(),
            },
        ))
    }

    /// Resident artifact count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Artifacts dropped to stay under capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_A: &str = "a = 1 + 1;\n";
    const SRC_B: &str = "b = 2 + 2;\n";
    const SRC_C: &str = "c = 3 + 3;\n";

    #[test]
    fn second_lookup_hits() {
        let mut cache = ArtifactCache::new(8);
        let opts = EngineOptions::default();
        let (first, o1) = cache.get_or_compile(SRC_A, &opts).unwrap();
        assert!(!o1.cache_hit);
        let (second, o2) = cache.get_or_compile(SRC_A, &opts).unwrap();
        assert!(o2.cache_hit);
        assert_eq!(first.cache_key(), second.cache_key());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_options_are_distinct_entries() {
        let mut cache = ArtifactCache::new(8);
        cache
            .get_or_compile(SRC_A, &EngineOptions::default())
            .unwrap();
        let (_, o) = cache
            .get_or_compile(
                SRC_A,
                &EngineOptions::builder().disable_pass("peephole").build(),
            )
            .unwrap();
        assert!(!o.cache_hit, "different options must not share an entry");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = ArtifactCache::new(2);
        let opts = EngineOptions::default();
        cache.get_or_compile(SRC_A, &opts).unwrap();
        cache.get_or_compile(SRC_B, &opts).unwrap();
        // Touch A so B is the LRU victim.
        cache.get_or_compile(SRC_A, &opts).unwrap();
        cache.get_or_compile(SRC_C, &opts).unwrap();
        assert_eq!(cache.evictions(), 1);
        let (_, a) = cache.get_or_compile(SRC_A, &opts).unwrap();
        assert!(a.cache_hit, "A was recently used and must survive");
        let (_, b) = cache.get_or_compile(SRC_B, &opts).unwrap();
        assert!(!b.cache_hit, "B was the LRU entry and must be gone");
    }
}
