//! The experiment harness: regenerates every table and figure of the
//! paper.
//!
//! ```text
//! harness table1                 # Table 1 (survey)
//! harness fig2   [--paper]      # single-CPU relative performance
//! harness fig3   [--paper]      # CG speedup on 3 machines
//! harness fig4   [--paper]      # ocean engineering
//! harness fig5   [--paper]      # n-body
//! harness fig6   [--paper]      # transitive closure
//! harness excerpts              # the §3 generated-C excerpts
//! harness ablation               # peephole + typing + grain studies
//! harness memory [--paper]      # §7's larger-problems memory claim
//! harness passes [--paper]      # per-pass compile instrumentation
//! harness trace <app> [--ranks N] [--machine M] [--chrome out.json]
//!                                # per-rank timeline + critical path
//! harness lint <app|all> [--deny]
//!                                # SPMD lint report (deny: exit 1 on warnings)
//! harness faults [--scenario crash|drop|delay|seeded|none] [--seed S]
//!                [--ranks N] [--app A]
//!                                # fault-injection smoke: run one app under a
//!                                # deterministic fault plan, print the typed
//!                                # per-rank failure report (key=value lines),
//!                                # exit 1 when the job failed
//! harness bench <app|all> [--ranks N[,N...]] [--workers W] [--repeat K]
//!               [--warmup W] [--json out.json] [--check baseline.json]
//!               [--tolerance PCT]
//!                                # statistical bench + regression gate
//! harness scale <app> [--ranks N[,N...]] [--workers W] [--json out.json]
//!                                # virtual-rank sweep far past the paper's
//!                                # 16 CPUs (default 64,256,1024,4096) on a
//!                                # fixed worker pool
//! harness all    [--paper]      # everything above
//! ```
//!
//! `--paper` runs paper-scale problems (n = 2048 CG, 5 000-particle
//! n-body, 512² transitive closure) — use a release build. The default
//! test scale finishes in seconds. `--csv` prints figures as CSV for
//! external plotting.

use otter_bench::figures::{all_speedup_figures, fig2, Scale};
use otter_bench::render::*;
use otter_bench::{
    collectives_ablation, grain_sweep, peephole_ablation, typeinfer_ablation, TABLE1,
};
use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Test
    };
    let csv = args.iter().any(|a| a == "--csv");
    let scale_note = match scale {
        Scale::Paper => "paper-scale problems",
        Scale::Test => "test-scale problems (pass --paper for full size)",
    };

    match cmd {
        "table1" => print!("{}", render_table1(TABLE1)),
        "fig2" => {
            eprintln!("[fig2: {scale_note}]");
            let rows = fig2(scale);
            if csv {
                print!("{}", render_fig2_csv(&rows));
            } else {
                print!("{}", render_fig2(&rows));
            }
        }
        "fig3" | "fig4" | "fig5" | "fig6" => {
            eprintln!("[{cmd}: {scale_note}]");
            let idx = cmd[3..].parse::<usize>().unwrap() - 3;
            let figs = all_speedup_figures(scale);
            if csv {
                print!("{}", render_figure_csv(&figs[idx]));
            } else {
                print!("{}", render_figure(&figs[idx]));
            }
        }
        "excerpts" => print_excerpts(),
        "trace" => run_trace(&args[1..], scale),
        "lint" => run_lint(&args[1..], scale),
        "faults" => run_faults(&args[1..], scale),
        "bench" => run_bench_cmd(&args[1..], scale),
        "scale" => run_scale_cmd(&args[1..], scale),
        "ablation" => run_ablations(scale),
        "memory" => run_memory(scale),
        "passes" => run_passes(scale),
        "all" => {
            print!("{}", render_table1(TABLE1));
            println!();
            eprintln!("[fig2: {scale_note}]");
            print!("{}", render_fig2(&fig2(scale)));
            println!();
            for fig in all_speedup_figures(scale) {
                print!("{}", render_figure(&fig));
                println!();
            }
            print_excerpts();
            println!();
            run_ablations(scale);
            println!();
            run_memory(scale);
            println!();
            run_passes(scale);
        }
        other => {
            eprintln!(
                "unknown command `{other}`; expected table1|fig2|fig3|fig4|fig5|fig6|excerpts|trace|lint|faults|bench|scale|ablation|memory|passes|all"
            );
            std::process::exit(2);
        }
    }
}

/// `harness trace <app> [--ranks N] [--machine M] [--chrome out.json]`:
/// run one benchmark app with a retaining trace sink and report the
/// per-rank timeline plus the critical path; optionally dump the raw
/// events as Chrome `trace_event` JSON for chrome://tracing / Perfetto.
fn run_trace(args: &[String], scale: Scale) {
    use otter_core::{run_engine, EngineOptions, OtterEngine};
    use otter_trace::{chrome_trace, MemorySink, TraceSink};
    use std::sync::Arc;

    let mut app_id = None;
    let mut ranks = 4usize;
    let mut machine = meiko_cs2();
    let mut chrome = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ranks" | "-p" => {
                ranks = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| trace_usage());
            }
            "--machine" => {
                machine = match it.next().map(String::as_str) {
                    Some("meiko") => meiko_cs2(),
                    Some("cluster") => sparc20_cluster(),
                    Some("smp") => enterprise_smp(),
                    _ => trace_usage(),
                }
            }
            "--chrome" => chrome = Some(it.next().unwrap_or_else(|| trace_usage()).clone()),
            // `--paper` selects the problem scale globally, so it is
            // accepted silently; `--csv` means nothing here.
            "--paper" => {}
            "--csv" => eprintln!("harness trace: `--csv` is not supported here, ignoring"),
            other if app_id.is_none() && !other.starts_with('-') => {
                app_id = Some(other.to_string())
            }
            _ => trace_usage(),
        }
    }
    let app_id = app_id.unwrap_or_else(|| trace_usage());
    let app = scale
        .apps()
        .into_iter()
        .find(|a| a.id == app_id)
        .unwrap_or_else(|| {
            eprintln!("unknown app `{app_id}`; expected cg|ocean|nbody|tc");
            std::process::exit(2);
        });

    let sink = Arc::new(MemorySink::new());
    let opts = EngineOptions::builder().trace(Arc::clone(&sink)).build();
    let report = run_engine(&mut OtterEngine::new(opts), &app.script, &machine, ranks)
        .unwrap_or_else(|e| {
            eprintln!("trace run failed: {e}");
            std::process::exit(1);
        });

    println!(
        "{} on {} x{}: modeled {:.6} s, {} messages, {} bytes",
        app.name, machine.name, ranks, report.modeled_seconds, report.messages, report.bytes
    );
    println!();
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>14}",
        "rank", "compute (s)", "comm (s)", "idle (s)", "clock (s)"
    );
    for c in &report.per_rank {
        println!(
            "{:>4} {:>14.6} {:>14.6} {:>14.6} {:>14.6}",
            c.rank, c.compute_seconds, c.comm_seconds, c.idle_seconds, c.clock
        );
    }
    if let Some(cp) = &report.critical_path {
        println!();
        println!(
            "critical path: {:.6} s = {:.6} s compute + {:.6} s comm \
             ({} cross-rank hops, {:.1}% comm)",
            cp.total,
            cp.compute,
            cp.comm,
            cp.hops,
            cp.comm_share() * 100.0,
        );
    }
    if let Some(path) = chrome {
        let events = sink.snapshot().unwrap_or_default();
        let json = chrome_trace(&events);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!();
        println!(
            "wrote {} trace events to {path} (load in chrome://tracing or Perfetto)",
            events.len()
        );
    }
}

/// `harness lint <app|all> [--deny]`: compile one (or every)
/// benchmark app and print the SPMD lint report — warnings, the
/// communication-site census, and the divergence verdict. With
/// `--deny` any warning exits non-zero, which is the CI smoke mode.
fn run_lint(args: &[String], scale: Scale) {
    use otter_core::compile_str;

    let mut app_id = None;
    let mut deny = false;
    for a in args {
        match a.as_str() {
            "--deny" => deny = true,
            "--paper" => {}
            "--csv" => eprintln!("harness lint: `--csv` is not supported here, ignoring"),
            other if app_id.is_none() && !other.starts_with('-') => {
                app_id = Some(other.to_string())
            }
            _ => lint_usage(),
        }
    }
    let app_id = app_id.unwrap_or_else(|| "all".to_string());
    let apps: Vec<_> = scale
        .apps()
        .into_iter()
        .filter(|a| app_id == "all" || a.id == app_id)
        .collect();
    if apps.is_empty() {
        eprintln!("unknown app `{app_id}`; expected cg|ocean|nbody|tc|all");
        std::process::exit(2);
    }

    let mut total_warnings = 0usize;
    for app in apps {
        let compiled = compile_str(&app.script).unwrap_or_else(|e| {
            eprintln!("{}: {e}", app.id);
            std::process::exit(1);
        });
        let r = &compiled.lint;
        println!(
            "{}: {} warning(s), {} collective site(s), {} point-to-point site(s), {}",
            app.id,
            r.warnings.len(),
            r.collective_sites,
            r.p2p_sites,
            if r.divergence_free && r.sendrecv_matched {
                "divergence-free, send/recv matched"
            } else {
                "NOT divergence-free"
            },
        );
        for w in &r.warnings {
            println!("  {w}");
        }
        total_warnings += r.warnings.len();
    }
    if deny && total_warnings > 0 {
        eprintln!("harness lint: {total_warnings} warning(s) with --deny");
        std::process::exit(1);
    }
}

/// `harness faults [--scenario crash|drop|delay|seeded|none] [--seed S]
/// [--ranks N] [--app A]`: the fault-injection smoke mode. Compile one
/// benchmark app, run it under a deterministic fault plan, and print
/// the typed failure report as stable `key=value` lines a CI step can
/// parse. Exits 1 when the job failed (the expected outcome for
/// `crash`/`drop`), 0 when it completed (`delay` perturbs timing but
/// not delivery; `none` runs the clean path).
fn run_faults(args: &[String], scale: Scale) {
    use otter_core::{compile_str, EngineOptions, OtterEngine};
    use otter_mpi::FaultPlan;

    let mut scenario = "crash".to_string();
    let mut seed = 1u64;
    let mut ranks = 8usize;
    let mut app_id = "cg".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" => {
                scenario = it.next().unwrap_or_else(|| faults_usage()).clone();
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| faults_usage());
            }
            "--ranks" | "-p" => {
                ranks = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| faults_usage());
            }
            "--app" => app_id = it.next().unwrap_or_else(|| faults_usage()).clone(),
            "--paper" => {}
            "--csv" => eprintln!("harness faults: `--csv` is not supported here, ignoring"),
            _ => faults_usage(),
        }
    }
    let app = scale
        .apps()
        .into_iter()
        .find(|a| a.id == app_id)
        .unwrap_or_else(|| {
            eprintln!("unknown app `{app_id}`; expected cg|ocean|nbody|tc");
            std::process::exit(2);
        });

    // Deterministic plans: the named scenarios pin the fault site so
    // the printed report is reproducible verbatim; `seeded` derives
    // the site from --seed exactly like a randomized CI run would.
    // `crash` picks its victim from the seed; `drop`/`delay` hit the
    // first message on the 1 → 0 edge, which every tree reduction
    // crosses (child to parent), so the fault always lands.
    let victim = (seed as usize) % ranks;
    let plan = match scenario.as_str() {
        "crash" => Some(FaultPlan::new().crash(victim, 1 + seed % 4)),
        "drop" => Some(FaultPlan::new().drop_message(1 % ranks, 0, 0)),
        "delay" => Some(FaultPlan::new().delay_message(1 % ranks, 0, 0, 0.5)),
        "seeded" => Some(FaultPlan::seeded(seed, ranks)),
        "none" => None,
        _ => faults_usage(),
    };

    let compiled = compile_str(&app.script).unwrap_or_else(|e| {
        eprintln!("harness faults: {e}");
        std::process::exit(1);
    });
    let mut opts = EngineOptions::builder().build();
    opts.faults = plan.clone();
    let mut engine = OtterEngine::from_compiled_with(compiled, opts);
    let outcome = engine.try_run(&meiko_cs2(), ranks).unwrap_or_else(|e| {
        eprintln!("harness faults: {e}");
        std::process::exit(1);
    });

    println!(
        "fault-smoke app={} ranks={} scenario={} seed={} actions={}",
        app.id,
        ranks,
        scenario,
        seed,
        plan.as_ref().map_or(0, |pl| pl.actions.len()),
    );
    match outcome {
        Ok(report) => {
            println!(
                "result=ok modeled_seconds={:.6} messages={} bytes={}",
                report.modeled_seconds, report.messages, report.bytes
            );
        }
        Err(failure) => {
            let root = failure.report.root_cause();
            println!(
                "result=failed failed_ranks={} survivors={} root_cause_rank={} root_cause_code={}",
                failure.report.failures.len(),
                failure.survivors.len(),
                root.rank,
                root.error.code(),
            );
            for f in &failure.report.failures {
                let blocked: Vec<String> = f.blocked_peers.iter().map(usize::to_string).collect();
                println!(
                    "failure rank={} code={} clock={:.6} blocked_peers={} error=\"{}\"",
                    f.rank,
                    f.error.code(),
                    f.clock,
                    if blocked.is_empty() {
                        "-".to_string()
                    } else {
                        blocked.join(",")
                    },
                    f.error,
                );
            }
            for s in &failure.survivors {
                println!(
                    "survivor rank={} clock={:.6} messages={} bytes={}",
                    s.rank, s.clock, s.messages, s.bytes
                );
            }
            std::process::exit(1);
        }
    }
}

fn faults_usage() -> ! {
    eprintln!(
        "usage: harness faults [--scenario crash|drop|delay|seeded|none] \
         [--seed S] [--ranks N] [--app cg|ocean|nbody|tc]"
    );
    std::process::exit(2);
}

/// `harness bench <app|all> [--ranks N] [--repeat K] [--warmup W]
/// [--json out.json] [--check baseline.json] [--tolerance PCT]`:
/// run the statistical bench (all three engines per app, K measured
/// repetitions after W warmups), print the summary table, optionally
/// export `otter-bench/v1` JSON, and optionally gate the deterministic
/// outputs against a baseline report — exiting 1 on any regression.
fn run_bench_cmd(args: &[String], scale: Scale) {
    use otter_bench::bench::{check, run_bench, BenchReport, BenchSpec};
    use otter_metrics::Json;

    let mut spec = BenchSpec {
        scale,
        ..BenchSpec::default()
    };
    let mut app_id = None;
    let mut json_path = None;
    let mut check_path = None;
    let mut tolerance = 10.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| bench_usage(name))
        };
        match a.as_str() {
            "--ranks" | "-p" => {
                spec.ranks = it
                    .next()
                    .and_then(|s| parse_ranks_list(s))
                    .unwrap_or_else(|| bench_usage("--ranks"))
            }
            "--workers" => spec.workers = Some(num("--workers")),
            "--repeat" => spec.repeat = num("--repeat"),
            "--warmup" => spec.warmup = num("--warmup"),
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| bench_usage("--json")).clone())
            }
            "--check" => {
                check_path = Some(it.next().unwrap_or_else(|| bench_usage("--check")).clone())
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bench_usage("--tolerance"))
            }
            "--paper" => {}
            "--csv" => eprintln!("harness bench: `--csv` is not supported here, ignoring"),
            other if app_id.is_none() && !other.starts_with('-') => {
                app_id = Some(other.to_string())
            }
            other => bench_usage(other),
        }
    }
    if let Some(id) = app_id {
        spec.app_id = id;
    }

    let report = run_bench(&spec).unwrap_or_else(|e| {
        eprintln!("harness bench: {e}");
        std::process::exit(1);
    });
    print!("{}", report.render());

    if let Some(path) = &json_path {
        let mut text = report.to_json().to_string();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!();
        println!("wrote bench report ({BENCH_SCHEMA_NOTE}) to {path}");
    }

    if let Some(path) = &check_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let baseline = Json::parse(&text)
            .and_then(|j| BenchReport::from_json(&j))
            .unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {path}: {e}");
                std::process::exit(1);
            });
        if baseline.scale != report.scale {
            eprintln!(
                "harness bench: baseline is {} scale but this run is {} scale",
                baseline.scale, report.scale
            );
            std::process::exit(1);
        }
        let regressions = check(&baseline, &report, tolerance);
        println!();
        if regressions.is_empty() {
            println!(
                "regression check against {path}: OK ({} combination(s), tolerance {tolerance}%)",
                baseline.results.len()
            );
        } else {
            eprintln!("regression check against {path} FAILED (tolerance {tolerance}%):");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}

const BENCH_SCHEMA_NOTE: &str = otter_bench::BENCH_SCHEMA;

/// `harness scale <app> [--ranks N[,N...]] [--workers W] [--json out.json]`:
/// sweep one app's SPMD run across rank counts far beyond the
/// machine's physical CPUs — the virtual-rank scheduler multiplexes
/// them over a fixed worker pool. Prints the sweep table; optionally
/// exports `otter-scale/v1` JSON.
fn run_scale_cmd(args: &[String], scale: Scale) {
    use otter_bench::scale::{run_scale, ScaleSpec, SCALE_SCHEMA};

    let mut spec = ScaleSpec {
        scale,
        ..ScaleSpec::default()
    };
    let mut app_id = None;
    let mut json_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ranks" | "-p" => {
                spec.ranks = it
                    .next()
                    .and_then(|s| parse_ranks_list(s))
                    .unwrap_or_else(|| scale_usage())
            }
            "--workers" => {
                spec.workers = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&w: &usize| w >= 1)
                        .unwrap_or_else(|| scale_usage()),
                )
            }
            "--json" => json_path = Some(it.next().unwrap_or_else(|| scale_usage()).clone()),
            "--paper" => {}
            "--csv" => eprintln!("harness scale: `--csv` is not supported here, ignoring"),
            other if app_id.is_none() && !other.starts_with('-') => {
                app_id = Some(other.to_string())
            }
            _ => scale_usage(),
        }
    }
    if let Some(id) = app_id {
        spec.app_id = id;
    }

    let report = run_scale(&spec).unwrap_or_else(|e| {
        eprintln!("harness scale: {e}");
        std::process::exit(1);
    });
    print!("{}", report.render());

    if let Some(path) = &json_path {
        let mut text = report.to_json().to_string();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!();
        println!("wrote scale report ({SCALE_SCHEMA}) to {path}");
    }
}

/// Parse `--ranks` values: a non-empty comma-separated list of
/// positive integers (`4` or `64,256,1024,4096`).
fn parse_ranks_list(s: &str) -> Option<Vec<usize>> {
    let ranks: Vec<usize> = s
        .split(',')
        .map(|part| part.trim().parse::<usize>().ok().filter(|&p| p >= 1))
        .collect::<Option<_>>()?;
    if ranks.is_empty() {
        None
    } else {
        Some(ranks)
    }
}

fn scale_usage() -> ! {
    eprintln!(
        "usage: harness scale <cg|ocean|nbody|tc> [--ranks N[,N...]] [--workers W] \
         [--json out.json] [--paper]"
    );
    std::process::exit(2);
}

fn bench_usage(flag: &str) -> ! {
    eprintln!("harness bench: bad or incomplete argument near `{flag}`");
    eprintln!(
        "usage: harness bench <cg|ocean|nbody|tc|all> [--ranks N[,N...]] [--workers W] \
         [--repeat K] [--warmup W] [--json out.json] [--check baseline.json] \
         [--tolerance PCT] [--paper]"
    );
    std::process::exit(2);
}

fn lint_usage() -> ! {
    eprintln!("usage: harness lint <cg|ocean|nbody|tc|all> [--deny] [--paper]");
    std::process::exit(2);
}

fn trace_usage() -> ! {
    eprintln!(
        "usage: harness trace <cg|ocean|nbody|tc> [--ranks N] \
         [--machine meiko|cluster|smp] [--chrome out.json] [--paper]"
    );
    std::process::exit(2);
}

/// Compile the paper's two §3 example statements and show the C.
fn print_excerpts() {
    println!("Paper §3 code excerpts, regenerated:");
    println!();
    let src1 = "n = 8;\nb = ones(n, n);\nc = ones(n, n);\nd = eye(n);\ni = 2;\nj = 3;\na = b * c + d(i, j);";
    let compiled = otter_core::compile_str(src1).expect("excerpt 1 compiles");
    println!("--- a = b * c + d(i,j); ---");
    for line in compiled.c_source.lines() {
        let t = line.trim();
        if t.contains("ML_matrix_multiply")
            || t.contains("ML_broadcast")
            || t.contains("realbase")
            || t.contains("for (ML_tmp")
        {
            println!("{line}");
        }
    }
    println!();
    let src2 =
        "n = 8;\na = ones(n, n);\nb = ones(n, n);\ni = 2;\nj = 3;\na(i, j) = a(i, j) / b(j, i);";
    let compiled = otter_core::compile_str(src2).expect("excerpt 2 compiles");
    println!("--- a(i,j) = a(i,j) / b(j,i); ---");
    for line in compiled.c_source.lines() {
        let t = line.trim();
        if t.contains("ML_broadcast") || t.contains("ML_owner") || t.contains("ML_realaddr2") {
            println!("{line}");
        }
    }
}

/// Paper §7: "larger problems can be solved ... a parallel computer
/// may have far more primary memory than an individual workstation."
/// Show the per-CPU memory high-water mark of the conjugate-gradient
/// problem across machine sizes.
fn run_memory(scale: Scale) {
    use otter_core::{
        compile_str, run_engine, Engine, EngineOptions, InterpreterEngine, OtterEngine,
    };
    use otter_machine::workstation;
    let n = match scale {
        Scale::Paper => 2048,
        Scale::Test => 256,
    };
    let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params {
        n,
        iters: 2,
        tol: 0.0,
    });
    let interp = run_engine(
        &mut InterpreterEngine::new(EngineOptions::default()),
        &app.script,
        &workstation(),
        1,
    )
    .unwrap();
    let compiled = compile_str(&app.script).unwrap();
    println!("Paper §7 memory claim: per-CPU peak memory, conjugate gradient n = {n}.");
    println!("{:<34} {:>16}", "configuration", "peak MB per CPU");
    println!("{}", "-".repeat(52));
    println!(
        "{:<34} {:>16.2}",
        "MATLAB interpreter (1 CPU)",
        interp.peak_rank_bytes as f64 / 1e6
    );
    let m = meiko_cs2();
    let mut p = 1;
    while p <= m.max_cpus {
        let run = OtterEngine::from_compiled(compiled.clone())
            .run(&m, p)
            .unwrap();
        println!(
            "{:<34} {:>16.2}",
            format!("Otter on {} CPU(s)", p),
            run.peak_rank_bytes as f64 / 1e6
        );
        p *= 2;
    }
    println!();
    println!("(The interpreter row counts named workspace variables; the Otter");
    println!("rows also include live compiler temporaries, so they are the");
    println!("more conservative measure.)");
    println!();
    println!("Each CPU holds only its row blocks: the same script that needs");
    println!("the whole matrix on a workstation needs ~1/p of it per node —");
    println!("\"a parallel computer may have far more primary memory than an");
    println!("individual workstation\" (paper §7).");
}

/// Per-pass compile-time instrumentation for the four benchmark apps:
/// what each of the paper's passes costs and what it does to the
/// program (statement / IR-instruction / runtime-call counts).
fn run_passes(scale: Scale) {
    use otter_core::{CompileOptions, PassManager};
    println!("Per-pass instrumentation (PassManager), four benchmark applications.");
    for app in scale.apps() {
        let report = PassManager::standard()
            .compile(
                &app.script,
                &otter_frontend::EmptyProvider,
                &CompileOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", app.id));
        println!();
        println!("{}:", app.name);
        println!(
            "  {:<10} {:>12} {:>8} {:>9} {:>8}",
            "pass", "wall (µs)", "stmts", "IR", "rtcalls"
        );
        for s in &report.passes {
            println!(
                "  {:<10} {:>12.1} {:>8} {:>9} {:>8}",
                s.name,
                s.wall.as_secs_f64() * 1e6,
                s.stmts_after,
                s.ir_instrs_after,
                s.runtime_calls_after
            );
        }
    }
}

fn run_ablations(scale: Scale) {
    let apps = scale.apps();
    let rows: Vec<_> = apps.iter().map(|a| peephole_ablation(a, 8)).collect();
    print!("{}", render_peephole(&rows));
    println!();
    let ti: Vec<_> = apps.iter().map(|a| typeinfer_ablation(a, 8)).collect();
    print!("{}", render_typeinfer(&ti));
    println!();
    let mut coll = Vec::new();
    for m in [meiko_cs2(), sparc20_cluster(), enterprise_smp()] {
        coll.extend(collectives_ablation(&m, &[2, 4, 8, 16]));
    }
    print!("{}", render_collectives(&coll));
    println!();
    let sizes: &[usize] = match scale {
        Scale::Paper => &[128, 256, 512, 1024, 2048],
        Scale::Test => &[32, 64, 128, 256],
    };
    let pts = grain_sweep(&meiko_cs2(), 8, sizes);
    print!("{}", render_grain("Meiko CS-2", 8, &pts));
}
