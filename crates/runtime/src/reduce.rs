//! Distributed reductions: dot products, sums, means, extrema, norms,
//! and trapezoidal integration — the `O(n)` building blocks of the
//! paper's conjugate-gradient, ocean-engineering, and n-body scripts.
//!
//! Each is a local fold plus an `allreduce`, so every rank ends with
//! the replicated scalar the compiler's "scalar variables are
//! replicated" assumption requires.

use crate::dense::Dense;
use crate::matrix::DistMatrix;
use otter_mpi::{Comm, CommError, ReduceOp};

impl DistMatrix {
    /// Dot product of two aligned distributed objects viewed as flat
    /// vectors.
    pub fn dot(&self, comm: &mut Comm, other: &DistMatrix) -> Result<f64, CommError> {
        assert!(
            self.aligned_with(other)
                || (self.is_vector() && other.is_vector() && self.len() == other.len()),
            "dot on unaligned operands"
        );
        let local: f64 = self
            .local()
            .iter()
            .zip(other.local())
            .map(|(&a, &b)| a * b)
            .sum();
        comm.compute(2.0 * self.local_els() as f64);
        comm.allreduce_scalar(local, ReduceOp::Sum)
    }

    /// Sum of all elements, replicated everywhere.
    pub fn sum_all(&self, comm: &mut Comm) -> Result<f64, CommError> {
        let local: f64 = self.local().iter().sum();
        comm.compute(self.local_els() as f64);
        comm.allreduce_scalar(local, ReduceOp::Sum)
    }

    /// Mean of all elements of a vector (MATLAB `mean` on vectors; the
    /// n-body script's usage).
    pub fn mean_all(&self, comm: &mut Comm) -> Result<f64, CommError> {
        assert!(!self.is_empty(), "mean of empty");
        Ok(self.sum_all(comm)? / self.len() as f64)
    }

    /// MATLAB `sum` convention: scalar total for vectors; column sums
    /// (as a replicated-then-distributed row vector) for matrices.
    pub fn sum(&self, comm: &mut Comm) -> Result<DistMatrix, CommError> {
        self.col_reduce(comm, ReduceOp::Sum, |acc, x| acc + x, 0.0)
    }

    /// MATLAB `prod` with the `sum` conventions.
    pub fn prod(&self, comm: &mut Comm) -> Result<DistMatrix, CommError> {
        self.col_reduce(comm, ReduceOp::Prod, |acc, x| acc * x, 1.0)
    }

    /// MATLAB `max` convention: scalar for vectors, column maxima for
    /// matrices.
    pub fn max(&self, comm: &mut Comm) -> Result<DistMatrix, CommError> {
        self.col_reduce(comm, ReduceOp::Max, f64::max, f64::NEG_INFINITY)
    }

    /// MATLAB `min` (see [`DistMatrix::max`]).
    pub fn min(&self, comm: &mut Comm) -> Result<DistMatrix, CommError> {
        self.col_reduce(comm, ReduceOp::Min, f64::min, f64::INFINITY)
    }

    /// MATLAB `any` with the `sum` conventions (0/1 results).
    pub fn any(&self, comm: &mut Comm) -> Result<DistMatrix, CommError> {
        self.col_reduce(
            comm,
            ReduceOp::Max,
            |acc, x| f64::from(acc != 0.0 || x != 0.0),
            0.0,
        )
    }

    /// MATLAB `all` with the `sum` conventions (0/1 results).
    pub fn all(&self, comm: &mut Comm) -> Result<DistMatrix, CommError> {
        self.col_reduce(
            comm,
            ReduceOp::Min,
            |acc, x| f64::from(acc != 0.0 && x != 0.0),
            1.0,
        )
    }

    /// Product of every element, replicated.
    pub fn prod_all(&self, comm: &mut Comm) -> Result<f64, CommError> {
        let local: f64 = self.local().iter().product();
        comm.compute(self.local_els() as f64);
        comm.allreduce_scalar(local, ReduceOp::Prod)
    }

    /// 1.0 if any element is nonzero.
    pub fn any_all(&self, comm: &mut Comm) -> Result<f64, CommError> {
        let local = f64::from(self.local().iter().any(|&x| x != 0.0));
        comm.compute(self.local_els() as f64);
        comm.allreduce_scalar(local, ReduceOp::Max)
    }

    /// 1.0 if every element is nonzero.
    pub fn all_all(&self, comm: &mut Comm) -> Result<f64, CommError> {
        let local = f64::from(self.local().iter().all(|&x| x != 0.0));
        comm.compute(self.local_els() as f64);
        comm.allreduce_scalar(local, ReduceOp::Min)
    }

    /// Shared kernel for per-column reductions: fold local rows, then
    /// combine across ranks with `comm_op`. Vectors reduce to a
    /// replicated 1×1.
    fn col_reduce(
        &self,
        comm: &mut Comm,
        comm_op: ReduceOp,
        fold: impl Fn(f64, f64) -> f64,
        identity: f64,
    ) -> Result<DistMatrix, CommError> {
        if self.is_vector() {
            let local = self.local().iter().copied().fold(identity, &fold);
            comm.compute(self.local_els() as f64);
            let s = comm.allreduce_scalar(local, comm_op)?;
            return Ok(DistMatrix::from_replicated(
                comm,
                &Dense::from_vec(1, 1, vec![s]),
            ));
        }
        let w = self.cols();
        let mut partial = vec![identity; w];
        for row in self.local().chunks_exact(w) {
            for (acc, &x) in partial.iter_mut().zip(row) {
                *acc = fold(*acc, x);
            }
        }
        comm.compute(self.local_els() as f64);
        let full = comm.allreduce(&partial, comm_op)?;
        Ok(DistMatrix::from_replicated(comm, &Dense::row_vector(&full)))
    }

    /// MATLAB `mean` with the `sum` conventions.
    pub fn mean(&self, comm: &mut Comm) -> Result<DistMatrix, CommError> {
        let n = if self.is_vector() {
            self.len()
        } else {
            self.rows()
        };
        assert!(n > 0, "mean of empty");
        let s = self.sum(comm)?;
        Ok(s.map_scalar(comm, n as f64, otter_machine::OpClass::Div, |x, d| x / d))
    }

    /// Largest element, replicated.
    pub fn max_all(&self, comm: &mut Comm) -> Result<f64, CommError> {
        let local = self
            .local()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        comm.compute(self.local_els() as f64);
        comm.allreduce_scalar(local, ReduceOp::Max)
    }

    /// Smallest element, replicated.
    pub fn min_all(&self, comm: &mut Comm) -> Result<f64, CommError> {
        let local = self.local().iter().copied().fold(f64::INFINITY, f64::min);
        comm.compute(self.local_els() as f64);
        comm.allreduce_scalar(local, ReduceOp::Min)
    }

    /// Euclidean norm of the object viewed as a flat vector.
    pub fn norm2(&self, comm: &mut Comm) -> Result<f64, CommError> {
        let local: f64 = self.local().iter().map(|&x| x * x).sum();
        comm.compute(2.0 * self.local_els() as f64 + 8.0);
        Ok(comm.allreduce_scalar(local, ReduceOp::Sum)?.sqrt())
    }

    /// Unit-spacing trapezoidal integration of a distributed vector
    /// (MATLAB `trapz(y)`). Interior block boundaries need one
    /// boundary element from the right neighbour.
    pub fn trapz(&self, comm: &mut Comm) -> Result<f64, CommError> {
        assert!(self.is_vector(), "trapz expects a vector");
        let n = self.len();
        if n < 2 {
            return Ok(0.0);
        }
        let halo = self.halo_right(comm)?;
        let local = self.local();
        let mut s = 0.0;
        for w in local.windows(2) {
            s += 0.5 * (w[0] + w[1]);
        }
        if let (Some(next), Some(&last)) = (halo, local.last()) {
            s += 0.5 * (last + next);
        }
        comm.compute(2.0 * self.local_els() as f64);
        comm.allreduce_scalar(s, ReduceOp::Sum)
    }

    /// Trapezoidal integration of `y` against abscissae `x`
    /// (MATLAB `trapz(x, y)`; the ocean script's `trapz2`).
    pub fn trapz_xy(comm: &mut Comm, x: &DistMatrix, y: &DistMatrix) -> Result<f64, CommError> {
        assert!(x.is_vector() && y.is_vector(), "trapz2 expects vectors");
        assert_eq!(x.len(), y.len(), "trapz2 length mismatch");
        let n = x.len();
        if n < 2 {
            return Ok(0.0);
        }
        let hx = x.halo_right(comm)?;
        let hy = y.halo_right(comm)?;
        let (xl, yl) = (x.local(), y.local());
        let mut s = 0.0;
        for i in 1..xl.len() {
            s += 0.5 * (xl[i] - xl[i - 1]) * (yl[i] + yl[i - 1]);
        }
        if let (Some(xn), Some(yn)) = (hx, hy) {
            if let (Some(&xe), Some(&ye)) = (xl.last(), yl.last()) {
                s += 0.5 * (xn - xe) * (yn + ye);
            }
        }
        comm.compute(4.0 * xl.len() as f64);
        comm.allreduce_scalar(s, ReduceOp::Sum)
    }

    /// Fetch the first element of the right neighbour's block (the
    /// halo element stencils and integrals need). Returns `None` on
    /// the rank owning the global last element and on empty blocks.
    ///
    /// Deterministic schedule: every non-empty rank except the first
    /// sends its head element left; every non-empty rank except the
    /// last receives from the right-ward non-empty rank.
    fn halo_right(&self, comm: &mut Comm) -> Result<Option<f64>, CommError> {
        let b = self.block();
        let rank = comm.rank();

        // Ranks with empty blocks neither send nor receive.
        let my = b.range(rank);
        // Send my head to the owner of my.start - 1 (if any and not me).
        if !my.is_empty() && my.start > 0 {
            let left_owner = b.owner(my.start - 1);
            if left_owner != rank {
                let head = self.local()[0];
                comm.send_scalar(left_owner, head)?;
            }
        }
        // Receive from the owner of my.end (if any and not me).
        if !my.is_empty() && my.end < b.n {
            let right_owner = b.owner(my.end);
            if right_owner != rank {
                return Ok(Some(comm.recv_scalar(right_owner)?));
            }
            // Owner of my.end is me — cannot happen with contiguous
            // blocks, but keep the arm total.
            return Ok(Some(self.local()[my.end - my.start]));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_det::DetRng;
    use otter_machine::meiko_cs2;
    use otter_mpi::run_spmd;

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    #[test]
    fn dot_matches_dense() {
        for p in [1usize, 2, 3, 7] {
            let a = rand_vec(23, 1);
            let b = rand_vec(23, 2);
            let oracle: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let (da, db) = (a, b);
            let res = run_spmd(&meiko_cs2(), p, move |c| {
                let x = DistMatrix::from_replicated(c, &Dense::col_vector(&da));
                let y = DistMatrix::from_replicated(c, &Dense::col_vector(&db));
                x.dot(c, &y)
            });
            for r in &res {
                assert!((r.value - oracle).abs() < 1e-12, "p={p}");
            }
        }
    }

    #[test]
    fn sums_and_means_replicated_everywhere() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let v = DistMatrix::range(c, 1.0, 1.0, 100.0);
            Ok((v.sum_all(c)?, v.mean_all(c)?))
        });
        for r in &res {
            assert_eq!(r.value.0, 5050.0);
            assert_eq!(r.value.1, 50.5);
        }
    }

    #[test]
    fn matrix_sum_gives_column_sums() {
        let res = run_spmd(&meiko_cs2(), 3, |c| {
            let d = Dense::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
            let m = DistMatrix::from_replicated(c, &d);
            m.sum(c)?.gather_all(c)
        });
        assert_eq!(res[0].value.data(), &[16.0, 20.0]);
    }

    #[test]
    fn matrix_mean_divides_by_rows() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            let d = Dense::from_vec(2, 2, vec![1.0, 10.0, 3.0, 30.0]);
            let m = DistMatrix::from_replicated(c, &d);
            m.mean(c)?.gather_all(c)
        });
        assert_eq!(res[0].value.data(), &[2.0, 20.0]);
    }

    #[test]
    fn extremes() {
        let res = run_spmd(&meiko_cs2(), 5, |c| {
            let v = DistMatrix::from_replicated(
                c,
                &Dense::row_vector(&[3.0, -7.0, 2.0, 9.0, 0.0, -1.0]),
            );
            Ok((v.max_all(c)?, v.min_all(c)?))
        });
        for r in &res {
            assert_eq!(r.value, (9.0, -7.0));
        }
    }

    #[test]
    fn norm_matches_dense() {
        let v = rand_vec(50, 3);
        let oracle = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let res = run_spmd(&meiko_cs2(), 4, move |c| {
            let x = DistMatrix::from_replicated(c, &Dense::row_vector(&v));
            x.norm2(c)
        });
        for r in &res {
            assert!((r.value - oracle).abs() < 1e-12);
        }
    }

    #[test]
    fn trapz_matches_dense_for_all_p() {
        let y = rand_vec(31, 4);
        let oracle = Dense::row_vector(&y).trapz();
        for p in [1usize, 2, 3, 8, 16] {
            let yy = y.clone();
            let res = run_spmd(&meiko_cs2(), p, move |c| {
                let v = DistMatrix::from_replicated(c, &Dense::row_vector(&yy));
                v.trapz(c)
            });
            for r in &res {
                assert!((r.value - oracle).abs() < 1e-12, "p={p}");
            }
        }
    }

    #[test]
    fn trapz_xy_matches_dense() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64).powf(1.1)).collect();
        let y = rand_vec(20, 5);
        let oracle = Dense::trapz_xy(&Dense::row_vector(&x), &Dense::row_vector(&y));
        for p in [1usize, 3, 6] {
            let (xx, yy) = (x.clone(), y.clone());
            let res = run_spmd(&meiko_cs2(), p, move |c| {
                let dx = DistMatrix::from_replicated(c, &Dense::row_vector(&xx));
                let dy = DistMatrix::from_replicated(c, &Dense::row_vector(&yy));
                DistMatrix::trapz_xy(c, &dx, &dy)
            });
            for r in &res {
                assert!((r.value - oracle).abs() < 1e-12, "p={p}");
            }
        }
    }

    #[test]
    fn trapz_short_vectors() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let one = DistMatrix::from_replicated(c, &Dense::row_vector(&[5.0]));
            let two = DistMatrix::from_replicated(c, &Dense::row_vector(&[1.0, 3.0]));
            Ok((one.trapz(c)?, two.trapz(c)?))
        });
        for r in &res {
            assert_eq!(r.value, (0.0, 2.0));
        }
    }

    #[test]
    fn reductions_agree_across_ranks_bitwise() {
        // Paper assumption 1: replicated scalars must be identical on
        // every rank. Allreduce guarantees it structurally; verify.
        let v = rand_vec(97, 6);
        let res = run_spmd(&meiko_cs2(), 8, move |c| {
            let x = DistMatrix::from_replicated(c, &Dense::row_vector(&v));
            Ok(x.sum_all(c)?.to_bits())
        });
        let first = res[0].value;
        assert!(res.iter().all(|r| r.value == first));
    }
}
