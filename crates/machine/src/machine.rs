//! Machine descriptions: CPUs, links, topology.

/// Compute-rate model of one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Human-readable name ("UltraSPARC 167 MHz").
    pub name: String,
    /// Sustained floating-point operations per second for *compiled*
    /// element-wise code (not peak; includes load/store traffic).
    pub flops: f64,
}

impl CpuModel {
    pub fn new(name: impl Into<String>, flops: f64) -> Self {
        assert!(flops > 0.0, "flops must be positive");
        CpuModel {
            name: name.into(),
            flops,
        }
    }

    /// Seconds per sustained floating-point operation.
    pub fn flop_time(&self) -> f64 {
        1.0 / self.flops
    }
}

/// Point-to-point link model: `time(bytes) = latency + bytes * byte_time`,
/// the classic α–β (Hockney) model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Per-message start-up latency α, in seconds.
    pub latency: f64,
    /// Per-byte transfer time 1/β, in seconds.
    pub byte_time: f64,
    /// Aggregate ceiling in bytes/second shared by all concurrent
    /// transfers on this fabric (`None` = fully switched, no ceiling).
    /// Models the single Ethernet segment of the SPARC-20 cluster and
    /// the memory bus of the Enterprise SMP.
    pub aggregate_bandwidth: Option<f64>,
}

impl LinkModel {
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency >= 0.0 && bandwidth > 0.0);
        LinkModel {
            latency,
            byte_time: 1.0 / bandwidth,
            aggregate_bandwidth: None,
        }
    }

    /// Builder: set the shared aggregate-bandwidth ceiling.
    pub fn with_aggregate(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        self.aggregate_bandwidth = Some(bytes_per_sec);
        self
    }

    /// Time to move `bytes` over this link with `concurrent` transfers
    /// sharing the fabric.
    pub fn transfer_time(&self, bytes: usize, concurrent: usize) -> f64 {
        let concurrent = concurrent.max(1) as f64;
        let per_byte = match self.aggregate_bandwidth {
            Some(agg) => {
                // Per-transfer effective bandwidth is the per-link rate
                // capped by its share of the fabric.
                let link_bw = 1.0 / self.byte_time;
                let eff = link_bw.min(agg / concurrent);
                1.0 / eff
            }
            None => self.byte_time,
        };
        self.latency + bytes as f64 * per_byte
    }
}

/// How processors are wired together.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// Shared-memory SMP: every pair communicates through memory with
    /// one link model.
    SharedMemory(LinkModel),
    /// Switched distributed-memory machine: one link model per pair,
    /// no shared ceiling (Meiko CS-2 fat tree).
    Distributed(LinkModel),
    /// Cluster of SMP nodes: fast intra-node links, slow inter-node
    /// network (SPARC-20s on Ethernet). Ranks are assigned to nodes in
    /// contiguous blocks of `node_size`.
    ClusterOfSmps {
        node_size: usize,
        intra: LinkModel,
        inter: LinkModel,
    },
}

/// A modeled parallel computer.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Display name used in figures ("Meiko CS-2").
    pub name: String,
    pub cpu: CpuModel,
    pub topology: Topology,
    /// Number of CPUs the real machine had; sweeps stop here.
    pub max_cpus: usize,
}

impl Machine {
    /// Node index a rank lives on (identity except for clusters).
    pub fn node_of(&self, rank: usize) -> usize {
        match &self.topology {
            Topology::ClusterOfSmps { node_size, .. } => rank / node_size,
            _ => 0,
        }
    }

    /// The link model governing a `from → to` message.
    pub fn link(&self, from: usize, to: usize) -> &LinkModel {
        match &self.topology {
            Topology::SharedMemory(l) | Topology::Distributed(l) => l,
            Topology::ClusterOfSmps {
                node_size,
                intra,
                inter,
            } => {
                if from / node_size == to / node_size {
                    intra
                } else {
                    inter
                }
            }
        }
    }

    /// Modeled time for one `from → to` message of `bytes`, with
    /// `concurrent` transfers in flight on the same fabric.
    pub fn message_time(&self, from: usize, to: usize, bytes: usize, concurrent: usize) -> f64 {
        if from == to {
            // Self-messages model a local memcpy: no latency charge,
            // memory-bandwidth-ish cost folded into compute instead.
            return 0.0;
        }
        self.link(from, to).transfer_time(bytes, concurrent)
    }

    /// True if a `from → to` message crosses the slow inter-node
    /// network of a cluster.
    pub fn crosses_nodes(&self, from: usize, to: usize) -> bool {
        self.node_of(from) != self.node_of(to)
    }

    /// The machine as experienced by a compiler that *cannot* prove
    /// values are real (the ablation of the paper's §3 claim that
    /// "recognizing that a variable is of type real rather than type
    /// complex saves half the memory and significantly reduces the
    /// amount of time"): every element is a complex pair, so every
    /// message carries twice the bytes and every arithmetic operation
    /// is complex arithmetic (~3× the flops of the real case — a
    /// complex multiply is 4 multiplies + 2 adds).
    pub fn assuming_complex(&self) -> Machine {
        let degrade = |l: &LinkModel| LinkModel {
            latency: l.latency,
            byte_time: l.byte_time * 2.0,
            aggregate_bandwidth: l.aggregate_bandwidth.map(|b| b / 2.0),
        };
        let topology = match &self.topology {
            Topology::SharedMemory(l) => Topology::SharedMemory(degrade(l)),
            Topology::Distributed(l) => Topology::Distributed(degrade(l)),
            Topology::ClusterOfSmps {
                node_size,
                intra,
                inter,
            } => Topology::ClusterOfSmps {
                node_size: *node_size,
                intra: degrade(intra),
                inter: degrade(inter),
            },
        };
        Machine {
            name: format!("{} (complex-assumed)", self.name),
            cpu: CpuModel::new(format!("{} [complex]", self.cpu.name), self.cpu.flops / 3.0),
            topology,
            max_cpus: self.max_cpus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Machine {
        Machine {
            name: "test-cluster".into(),
            cpu: CpuModel::new("cpu", 1e8),
            topology: Topology::ClusterOfSmps {
                node_size: 4,
                intra: LinkModel::new(1e-5, 100e6),
                inter: LinkModel::new(1e-3, 1e6).with_aggregate(1e6),
            },
            max_cpus: 16,
        }
    }

    #[test]
    fn alpha_beta_model() {
        let l = LinkModel::new(1e-5, 50e6);
        let t = l.transfer_time(1_000_000, 1);
        assert!((t - (1e-5 + 1_000_000.0 / 50e6)).abs() < 1e-12);
    }

    #[test]
    fn aggregate_ceiling_slows_concurrent_transfers() {
        let l = LinkModel::new(0.0, 10e6).with_aggregate(10e6);
        let alone = l.transfer_time(1_000_000, 1);
        let shared = l.transfer_time(1_000_000, 4);
        assert!(
            (shared / alone - 4.0).abs() < 1e-9,
            "shared={shared} alone={alone}"
        );
    }

    #[test]
    fn no_ceiling_means_full_speed() {
        let l = LinkModel::new(0.0, 10e6);
        assert_eq!(l.transfer_time(1000, 1), l.transfer_time(1000, 8));
    }

    #[test]
    fn cluster_rank_to_node() {
        let m = cluster();
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(3), 0);
        assert_eq!(m.node_of(4), 1);
        assert_eq!(m.node_of(15), 3);
    }

    #[test]
    fn cluster_intra_vs_inter_link() {
        let m = cluster();
        // Ranks 0 and 3 share a node: fast link.
        let fast = m.message_time(0, 3, 8000, 1);
        // Ranks 0 and 4 are on different nodes: Ethernet.
        let slow = m.message_time(0, 4, 8000, 1);
        assert!(slow > 10.0 * fast, "fast={fast} slow={slow}");
        assert!(m.crosses_nodes(0, 4));
        assert!(!m.crosses_nodes(0, 3));
    }

    #[test]
    fn self_message_is_free() {
        let m = cluster();
        assert_eq!(m.message_time(2, 2, 1 << 20, 1), 0.0);
    }

    #[test]
    fn flop_time_inverts_flops() {
        let c = CpuModel::new("x", 2e8);
        assert!((c.flop_time() - 5e-9).abs() < 1e-18);
    }
}
