//! Golden tests: the generated C for the paper's two §3 example
//! statements, produced by the *full* pipeline from MATLAB source
//! (the unit tests in `otter-codegen` check the emitter from
//! hand-built IR; these check everything upstream too).

use otter_core::compile_str;

#[test]
fn excerpt_one_from_source() {
    // Paper §3: a = b * c + d(i,j);
    // "ML_matrix_multiply(b, c, ML_tmp1);
    //  ML_broadcast(&ML_tmp2, d, i-1, j-1);
    //  for (ML_tmp3 = ML_local_els(a)-1; ML_tmp3 >= 0; ML_tmp3--) {
    //      a->realbase[ML_tmp3] = ML_tmp1->realbase[ML_tmp3] + ML_tmp2;
    //  }"
    let src = "\
n = 8;
b = ones(n, n);
c = ones(n, n);
d = eye(n);
i = 2;
j = 3;
a = b * c + d(i, j);
";
    let compiled = compile_str(src).expect("compiles");
    let c = &compiled.c_source;

    // The three-statement structure survives the pipeline.
    let mm_line = c
        .lines()
        .find(|l| l.contains("ML_matrix_multiply"))
        .unwrap_or_else(|| panic!("no matmul call in:\n{c}"));
    assert!(mm_line.contains("(b, c, "), "{mm_line}");

    let bc_line = c.lines().find(|l| l.contains("ML_broadcast(")).unwrap();
    assert!(bc_line.contains(", d, i - 1, j - 1);"), "{bc_line}");

    let loop_line = c.lines().find(|l| l.contains("ML_local_els(a)")).unwrap();
    assert!(loop_line.contains(">= 0;"), "{loop_line}");

    let body_line = c.lines().find(|l| l.contains("a->realbase[")).unwrap();
    assert!(body_line.contains("->realbase["), "{body_line}");
    assert!(body_line.contains(" + "), "{body_line}");
}

#[test]
fn excerpt_two_from_source() {
    // Paper §3: a(i,j) = a(i,j) / b(j,i);
    // "ML_broadcast(&ML_tmp1, b, j-1, i-1);
    //  if (ML_owner(a, i-1, j-1)) {
    //      *ML_realaddr2(a, i-1, j-1) = *ML_realaddr2(a, i-1, j-1) / ML_tmp1;
    //  }"
    let src = "\
n = 8;
a = ones(n, n);
b = ones(n, n);
i = 2;
j = 3;
a(i, j) = a(i, j) / b(j, i);
";
    let compiled = compile_str(src).expect("compiles");
    let c = &compiled.c_source;

    // Exactly one broadcast: the read of a(i,j) itself must become
    // the in-guard ML_realaddr2 read, not a second broadcast.
    let bcasts: Vec<&str> = c.lines().filter(|l| l.contains("ML_broadcast(")).collect();
    assert_eq!(
        bcasts.len(),
        1,
        "one broadcast only (b's element): {bcasts:?}"
    );
    assert!(bcasts[0].contains(", b, j - 1, i - 1);"), "{}", bcasts[0]);

    let guard = c.lines().find(|l| l.contains("ML_owner(")).unwrap();
    assert!(guard.contains("ML_owner(a, i - 1, j - 1)"), "{guard}");

    let store = c
        .lines()
        .find(|l| l.trim().starts_with("*ML_realaddr2"))
        .unwrap();
    assert!(
        store.contains("*ML_realaddr2(a, i - 1, j - 1) = *ML_realaddr2(a, i - 1, j - 1) /"),
        "{store}"
    );
}

#[test]
fn generated_c_has_spmd_scaffolding() {
    let compiled = compile_str("x = 1;\ny = x * 2;").unwrap();
    let c = &compiled.c_source;
    for needle in [
        "#include <mpi.h>",
        "#include \"ml_runtime.h\"",
        "int main(int argc, char **argv)",
        "ML_init_env(&argc, &argv);",
        "ML_finalize_env();",
        "double x;",
        "double y;",
    ] {
        assert!(c.contains(needle), "missing `{needle}` in:\n{c}");
    }
}

#[test]
fn declarations_match_inferred_ranks() {
    let compiled = compile_str("n = 4;\nm = ones(n, n);\nv = m(:, 1);\ns = sum(v);").unwrap();
    let c = &compiled.c_source;
    assert!(c.contains("double n;"), "{c}");
    assert!(c.contains("MATRIX *m;"), "{c}");
    assert!(c.contains("MATRIX *v;"), "{c}");
    assert!(c.contains("double s;"), "{c}");
}

#[test]
fn functions_become_c_functions() {
    let provider = otter_frontend::MapProvider::new()
        .with("axpy", "function y = axpy(a, x, b)\ny = a * x + b;\n");
    let compiled = otter_core::compile_program(
        "x = ones(4, 1);\nb = ones(4, 1);\ny = axpy(2, x, b);",
        &provider,
        &otter_core::CompileOptions::default(),
    )
    .unwrap();
    let c = &compiled.c_source;
    assert!(
        c.contains("void ML_fn_axpy(double a, MATRIX *x, MATRIX *b, MATRIX **ML_out_y)"),
        "{c}"
    );
    assert!(c.contains("ML_fn_axpy(2, x, b, &"), "{c}");
}

#[test]
fn benchmark_scripts_pretty_print_roundtrip() {
    // Parse every benchmark script, pretty-print it, re-parse, and
    // require the print to be a fixed point — the front end and the
    // printer agree on the whole application subset.
    use otter_frontend::pretty::program_to_string;
    use otter_frontend::{parse, Program};
    for app in otter_apps::test_apps() {
        let f1 = parse(&app.script).unwrap_or_else(|e| panic!("{}: {e}", app.id));
        let p1 = Program {
            script: f1.script,
            functions: f1.functions,
        };
        let printed = program_to_string(&p1);
        let f2 = parse(&printed)
            .unwrap_or_else(|e| panic!("{}: reprint unparseable: {e}\n{printed}", app.id));
        let p2 = Program {
            script: f2.script,
            functions: f2.functions,
        };
        assert_eq!(printed, program_to_string(&p2), "{}", app.id);
    }
}

#[test]
fn benchmark_scripts_emit_c_without_temps_leaking() {
    // Every app's generated C declares all its variables and contains
    // balanced braces.
    for app in otter_apps::test_apps() {
        let compiled = otter_core::compile_str(&app.script).unwrap();
        let c = &compiled.c_source;
        let opens = c.matches('{').count();
        let closes = c.matches('}').count();
        assert_eq!(opens, closes, "{}: unbalanced braces", app.id);
        for v in &app.result_vars {
            assert!(
                c.contains(&format!("double {v};")) || c.contains(&format!("MATRIX *{v};")),
                "{}: result variable `{v}` undeclared",
                app.id
            );
        }
    }
}
