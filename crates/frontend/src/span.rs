//! Source locations.
//!
//! Every token and AST node carries a [`Span`] so that later passes
//! (resolution, inference, code generation) can report errors in terms
//! of the original MATLAB source, mirroring the line/column tracking the
//! paper's lex/yacc front end gets for free.

use std::fmt;

/// A half-open byte range into a single source file, plus the 1-based
/// line/column of its start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes.
    pub const DUMMY: Span = Span {
        start: 0,
        end: 0,
        line: 0,
        col: 0,
    };

    /// Create a span from raw parts.
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The smallest span containing both `self` and `other`.
    ///
    /// Line/column information is taken from whichever span starts
    /// first, so diagnostics point at the beginning of the merged
    /// construct.
    pub fn to(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }

    /// True if this is the dummy span of a synthesized node.
    pub fn is_dummy(&self) -> bool {
        *self == Span::DUMMY
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True if the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_earliest_position() {
        let a = Span::new(10, 14, 2, 3);
        let b = Span::new(20, 25, 3, 1);
        let m = a.to(b);
        assert_eq!(m.start, 10);
        assert_eq!(m.end, 25);
        assert_eq!(m.line, 2);
        assert_eq!(m.col, 3);
        // Merging is symmetric.
        let m2 = b.to(a);
        assert_eq!(m, m2);
    }

    #[test]
    fn dummy_is_detectable() {
        assert!(Span::DUMMY.is_dummy());
        assert!(!Span::new(0, 1, 1, 1).is_dummy());
    }

    #[test]
    fn display_shows_line_col() {
        let s = Span::new(0, 4, 7, 9);
        assert_eq!(s.to_string(), "7:9");
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(3, 8, 1, 4).len(), 5);
        assert!(Span::new(3, 3, 1, 4).is_empty());
        assert!(!Span::new(3, 4, 1, 4).is_empty());
    }
}
