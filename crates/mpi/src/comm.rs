//! Per-rank communication endpoints with virtual-time accounting.

use crate::collectives::CollectiveAlgo;
use crate::error::CommError;
use crate::fault::{FaultState, SendDisposition};
use crate::state::{JobState, RankState};
use otter_machine::Machine;
use otter_metrics::MetricsRegistry;
use otter_trace::{EventKind, TraceEvent, TraceSink};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a blocked receive wakes up to consult the wait-for
/// registry. Short enough that a deadlock diagnosis lands in tens of
/// milliseconds; a receive whose message is already buffered never
/// waits at all.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// How long a wait-for snapshot must hold before a cycle counts as a
/// confirmed deadlock. Longer than one poll interval, so a peer that
/// really did send to us (and whose packet is racing in) invalidates
/// the snapshot by consuming-side epoch bumps before we conclude.
const CONFIRM_WINDOW: Duration = Duration::from_millis(60);

/// Hard fallback for a receive whose peer is still running but never
/// sends (e.g. spinning in modeled compute). No cycle to diagnose, so
/// this is the only case that still needs a timeout — far rarer and
/// still half the old blanket 60s.
const HARD_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// One message: a vector of doubles stamped with the sender's virtual
/// clock at completion of the send.
#[derive(Debug, Clone)]
pub(crate) struct Packet {
    pub data: Vec<f64>,
    pub send_clock: f64,
}

/// Communication/computation counters a rank accumulates; used by the
/// benchmark harness to report message counts and volumes per
/// experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    pub messages_sent: u64,
    pub bytes_sent: u64,
    /// Virtual seconds spent in modeled computation.
    pub compute_time: f64,
    /// Virtual seconds spent driving sends (the sender-side transfer
    /// charge).
    pub send_time: f64,
    /// Virtual seconds spent blocked in `recv` waiting for a message
    /// that had not yet arrived in virtual time.
    pub wait_time: f64,
}

impl CommStats {
    /// Total virtual seconds attributed to communication.
    pub fn comm_time(&self) -> f64 {
        self.send_time + self.wait_time
    }
}

/// A rank's endpoint: its identity, its channels to every peer, and
/// its virtual clock.
///
/// `Comm` is deliberately `!Sync`: exactly one thread owns each rank,
/// mirroring MPI's process model.
pub struct Comm {
    rank: usize,
    size: usize,
    machine: Arc<Machine>,
    /// `senders[d]` transmits on the (self → d) edge.
    senders: Vec<Sender<Packet>>,
    /// `receivers[s]` receives on the (s → self) edge.
    receivers: Vec<Receiver<Packet>>,
    clock: f64,
    stats: CommStats,
    /// Schedule used by the un-suffixed collective methods.
    algo: CollectiveAlgo,
    sink: Arc<dyn TraceSink>,
    /// Cached `sink.enabled()` so the disabled path is one branch.
    tracing: bool,
    /// Per-edge FIFO sequence numbers (only maintained while tracing):
    /// the k-th send on edge (self → d) pairs with the k-th recv on it.
    send_seq: Vec<u64>,
    recv_seq: Vec<u64>,
    /// Per-rank metric registry; `None` when metrics are off (the
    /// zero-cost default — every record site is behind this branch).
    metrics: Option<Box<MetricsRegistry>>,
    /// Wait-for registry shared by every rank of the job; blocked
    /// receives publish their state here so peers can diagnose
    /// deadlocks from a snapshot instead of a blanket timeout.
    job: Arc<JobState>,
    /// Fault-injection bookkeeping; `None` unless the job's
    /// `FaultPlan` targets this rank, so the healthy path is one
    /// branch per op.
    faults: Option<Box<FaultState>>,
}

impl Comm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        machine: Arc<Machine>,
        senders: Vec<Sender<Packet>>,
        receivers: Vec<Receiver<Packet>>,
        opts: &crate::runner::SpmdOptions,
        sink: Arc<dyn TraceSink>,
        job: Arc<JobState>,
    ) -> Self {
        debug_assert_eq!(senders.len(), size);
        debug_assert_eq!(receivers.len(), size);
        let tracing = sink.enabled();
        Comm {
            rank,
            size,
            machine,
            senders,
            receivers,
            clock: 0.0,
            stats: CommStats::default(),
            algo: opts.algo,
            sink,
            tracing,
            send_seq: vec![0; if tracing { size } else { 0 }],
            recv_seq: vec![0; if tracing { size } else { 0 }],
            metrics: opts.metrics.then(|| Box::new(MetricsRegistry::new())),
            job,
            faults: opts
                .faults
                .as_ref()
                .and_then(|plan| FaultState::for_rank(plan, rank, size)),
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine model virtual time is charged against.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Current virtual clock in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Schedule the un-suffixed collectives (`broadcast`, `reduce`,
    /// `allreduce`) use on this endpoint.
    pub fn collective_algo(&self) -> CollectiveAlgo {
        self.algo
    }

    /// Change the collective schedule mid-program (ablations flip this
    /// to compare tree vs linear on one endpoint).
    pub fn set_collective_algo(&mut self, algo: CollectiveAlgo) {
        self.algo = algo;
    }

    /// Whether trace events are being recorded. Layers above `Comm`
    /// gate their own span emission on this.
    pub fn trace_enabled(&self) -> bool {
        self.tracing
    }

    /// Whether this endpoint carries a metric registry. Layers above
    /// `Comm` gate their own recording on this so the disabled path
    /// never constructs a metric key.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// This rank's metric registry, when metrics are on. The runtime
    /// library and the executor record op latencies, message-size
    /// distributions, and allocator high-water marks through this one
    /// access point.
    pub fn metrics(&mut self) -> Option<&mut MetricsRegistry> {
        self.metrics.as_deref_mut()
    }

    /// Detach the registry. The runner does this when a rank finishes
    /// (snapshotting into the rank's result); engines that do
    /// out-of-band reporting collectives after the benchmarked program
    /// take it earlier, at the same point they suspend tracing, so the
    /// metric totals keep matching the stats snapshot.
    pub fn take_metrics(&mut self) -> Option<Box<MetricsRegistry>> {
        self.metrics.take()
    }

    /// The shared job state (runner-internal).
    pub(crate) fn job(&self) -> &Arc<JobState> {
        &self.job
    }

    /// Record one finished collective: an invocation counter labeled
    /// by collective and schedule, plus a duration histogram.
    pub(crate) fn note_collective(&mut self, name: &'static str, algo: &'static str, t0: f64) {
        let dt = self.clock - t0;
        if let Some(m) = self.metrics.as_deref_mut() {
            m.inc("collectives_total", &[("coll", name), ("algo", algo)], 1);
            m.observe("collective_seconds", &[("coll", name)], dt);
        }
    }

    /// Stop recording trace events on this endpoint for the rest of
    /// the program. Engines call this before their out-of-band
    /// reporting collectives so trace totals keep matching the stats
    /// snapshot taken at the same point.
    pub fn suspend_tracing(&mut self) {
        self.tracing = false;
    }

    /// Record a span from `t_start` to the current clock. No-op (and
    /// no event construction — callers should pre-check
    /// [`Comm::trace_enabled`] for spans with computed names) when
    /// tracing is off.
    pub fn emit_span(&self, kind: EventKind, t_start: f64) {
        if self.tracing {
            self.sink.record(TraceEvent {
                rank: self.rank,
                t_start,
                t_end: self.clock,
                kind,
            });
        }
    }

    /// Charge `flop_units` of modeled computation (in units of one
    /// sustained flop; see `otter_machine::OpClass::weight`).
    pub fn compute(&mut self, flop_units: f64) {
        let dt = flop_units * self.machine.cpu.flop_time();
        self.clock += dt;
        self.stats.compute_time += dt;
        if self.tracing && dt > 0.0 {
            self.emit_span(EventKind::Compute, self.clock - dt);
        }
    }

    /// Advance the clock by raw virtual seconds (used by the runtime
    /// for memory-traffic charges).
    pub fn advance(&mut self, seconds: f64) {
        self.clock += seconds;
        self.stats.compute_time += seconds;
        if self.tracing && seconds > 0.0 {
            self.emit_span(EventKind::Compute, self.clock - seconds);
        }
    }

    /// One message-target validity check, shared by send and recv so
    /// the two report identically-formatted errors.
    fn check_peer(&self, target: usize, op: &'static str) -> Result<(), CommError> {
        if target >= self.size {
            return Err(CommError::RankOutOfRange {
                rank: self.rank,
                op,
                target,
                size: self.size,
            });
        }
        if target == self.rank {
            return Err(CommError::SelfMessage {
                rank: self.rank,
                op,
                target,
            });
        }
        Ok(())
    }

    /// Root validity check for the collectives (a root may be this
    /// rank, so only the range applies).
    pub(crate) fn check_root(&self, root: usize, op: &'static str) -> Result<(), CommError> {
        if root >= self.size {
            return Err(CommError::RankOutOfRange {
                rank: self.rank,
                op,
                target: root,
                size: self.size,
            });
        }
        Ok(())
    }

    /// Count one comm op against the fault plan; `Err` kills the rank
    /// here, before the op touches the wire.
    fn fault_op(&mut self) -> Result<(), CommError> {
        if let Some(f) = self.faults.as_deref_mut() {
            if f.note_op() {
                return Err(CommError::InjectedCrash {
                    rank: self.rank,
                    op_index: f.ops,
                });
            }
        }
        Ok(())
    }

    /// Blocking send of `data` to `to`.
    ///
    /// The sender is occupied for the full modeled transfer
    /// (`α + bytes·β`), matching a rendezvous-style blocking MPI send
    /// on 1998 interconnects. `concurrent` is the number of transfers
    /// the caller knows share the fabric in this phase (collectives
    /// pass their stage width; point-to-point passes 1) — it feeds the
    /// aggregate-bandwidth ceiling of bus/Ethernet fabrics.
    pub fn send_concurrent(
        &mut self,
        to: usize,
        data: &[f64],
        concurrent: usize,
    ) -> Result<(), CommError> {
        self.check_peer(to, "send to")?;
        self.fault_op()?;
        let bytes = data.len() * 8;
        let dt = self.machine.message_time(self.rank, to, bytes, concurrent);
        self.clock += dt;
        self.stats.send_time += dt;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if self.tracing {
            let seq = self.send_seq[to];
            self.send_seq[to] += 1;
            self.emit_span(
                EventKind::Send {
                    to,
                    bytes: bytes as u64,
                    seq,
                },
                self.clock - dt,
            );
        }
        if let Some(m) = self.metrics.as_deref_mut() {
            m.inc("comm_messages_total", &[], 1);
            m.inc("comm_bytes_total", &[], bytes as u64);
            m.observe("message_bytes", &[], bytes as f64);
            m.observe("send_seconds", &[], dt);
        }
        let mut send_clock = self.clock;
        if let Some(f) = self.faults.as_deref_mut() {
            match f.outgoing(to) {
                SendDisposition::Deliver => {}
                // The sender believes the send succeeded: time and
                // stats are charged, the packet just never arrives.
                SendDisposition::Drop => return Ok(()),
                SendDisposition::Delay(s) => send_clock += s,
            }
        }
        self.senders[to]
            .send(Packet {
                data: data.to_vec(),
                send_clock,
            })
            .map_err(|_| CommError::PeerTerminated {
                rank: self.rank,
                peer: to,
            })
    }

    /// Blocking send with no known fabric sharing.
    pub fn send(&mut self, to: usize, data: &[f64]) -> Result<(), CommError> {
        self.send_concurrent(to, data, 1)
    }

    /// Block until the next packet from `from` is available,
    /// publishing the blocked state to the wait-for registry and
    /// consulting it on every poll so deadlocks and dead peers are
    /// diagnosed in tens of milliseconds.
    fn recv_packet(&mut self, from: usize) -> Result<Packet, CommError> {
        // Fast path: already buffered — never touches the registry.
        if let Ok(p) = self.receivers[from].try_recv() {
            return Ok(p);
        }
        self.job.set_waiting(self.rank, from);
        let blocked_at = Instant::now();
        let result = loop {
            match self.receivers[from].recv_timeout(POLL_INTERVAL) {
                Ok(p) => break Ok(p),
                Err(RecvTimeoutError::Disconnected) => {
                    // The peer's endpoint is gone: it finished, failed,
                    // or panicked without serving us. A deadlock
                    // verdict posted while we slept takes precedence.
                    break Err(self.job.take_verdict(self.rank).unwrap_or(
                        CommError::PeerTerminated {
                            rank: self.rank,
                            peer: from,
                        },
                    ));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(v) = self.job.take_verdict(self.rank) {
                        match self.receivers[from].try_recv() {
                            Ok(p) => break Ok(p), // verdict lost the race
                            Err(_) => break Err(v),
                        }
                    }
                    match self.job.state_of(from) {
                        RankState::Finished | RankState::Failed => {
                            // Final drain: the peer may have sent just
                            // before ending.
                            match self.receivers[from].try_recv() {
                                Ok(p) => break Ok(p),
                                Err(_) => {
                                    break Err(CommError::PeerTerminated {
                                        rank: self.rank,
                                        peer: from,
                                    })
                                }
                            }
                        }
                        RankState::WaitingOn(_) => {
                            if let Some(err) =
                                self.job.diagnose_deadlock(self.rank, from, CONFIRM_WINDOW)
                            {
                                match self.receivers[from].try_recv() {
                                    Ok(p) => break Ok(p),
                                    Err(_) => break Err(err),
                                }
                            }
                        }
                        RankState::Running => {}
                    }
                    if blocked_at.elapsed() >= HARD_STALL_TIMEOUT {
                        break Err(CommError::Stalled {
                            rank: self.rank,
                            waiting_on: from,
                            seconds: HARD_STALL_TIMEOUT.as_secs(),
                        });
                    }
                }
            }
        };
        self.job.set_running(self.rank);
        result
    }

    /// Blocking receive of the next message from `from`.
    ///
    /// Virtual time: the message is available at the sender's
    /// post-transfer clock; the receiver waits if it got here early
    /// and proceeds immediately if the message was already buffered.
    pub fn recv(&mut self, from: usize) -> Result<Vec<f64>, CommError> {
        self.check_peer(from, "recv from")?;
        self.fault_op()?;
        let pkt = self.recv_packet(from)?;
        let entered_at = self.clock;
        if pkt.send_clock > self.clock {
            self.stats.wait_time += pkt.send_clock - self.clock;
            self.clock = pkt.send_clock;
            if let Some(m) = self.metrics.as_deref_mut() {
                m.observe("recv_wait_seconds", &[], self.clock - entered_at);
            }
        }
        if self.tracing {
            let seq = self.recv_seq[from];
            self.recv_seq[from] += 1;
            self.emit_span(
                EventKind::Recv {
                    from,
                    bytes: (pkt.data.len() * 8) as u64,
                    seq,
                },
                entered_at,
            );
        }
        Ok(pkt.data)
    }

    /// Send a single scalar.
    pub fn send_scalar(&mut self, to: usize, v: f64) -> Result<(), CommError> {
        self.send(to, &[v])
    }

    /// Receive a single scalar.
    pub fn recv_scalar(&mut self, from: usize) -> Result<f64, CommError> {
        let d = self.recv(from)?;
        if d.len() != 1 {
            return Err(CommError::PayloadMismatch {
                rank: self.rank,
                from,
                expected: 1,
                got: d.len(),
            });
        }
        Ok(d[0])
    }
}

#[cfg(test)]
mod tests {
    use crate::runner::{run_spmd, run_spmd_with, SpmdOptions};
    use otter_machine::{meiko_cs2, sparc20_cluster};
    use otter_trace::{timelines, EventKind, MemorySink, TraceSink};
    use std::sync::Arc;

    #[test]
    fn ping_pong_delivers_data() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0, 2.0, 3.0])?;
                c.recv(1)
            } else {
                let v = c.recv(0)?;
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                c.send(0, &doubled)?;
                Ok(doubled)
            }
        });
        assert_eq!(res[0].value, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn virtual_clock_advances_on_messages() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.send(1, &vec![0.0; 1000])?;
            } else {
                c.recv(0)?;
            }
            Ok(c.clock())
        });
        let m = meiko_cs2();
        let expect = m.message_time(0, 1, 8000, 1);
        assert!((res[0].value - expect).abs() < 1e-12);
        // Receiver clock is at least the full transfer time too.
        assert!(res[1].value >= expect);
    }

    #[test]
    fn receiver_waits_for_late_sender() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.compute(1e6); // sender is busy first
                c.send(1, &[42.0])?;
            } else {
                c.recv(0)?;
            }
            Ok(c.clock())
        });
        // Receiver's clock must include the sender's compute phase.
        assert!(res[1].value >= res[0].value * 0.99);
    }

    #[test]
    fn early_receiver_does_not_double_charge() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0])?;
                Ok(0.0)
            } else {
                c.compute(1e7); // receiver is the late one
                let before = c.clock();
                c.recv(0)?;
                Ok(c.clock() - before)
            }
        });
        // Message was already there: no extra virtual wait.
        assert_eq!(res[1].value, 0.0);
    }

    #[test]
    fn compute_charges_flop_time() {
        let res = run_spmd(&meiko_cs2(), 1, |c| {
            c.compute(25e6);
            Ok(c.clock())
        });
        assert!(
            (res[0].value - 1.0).abs() < 1e-9,
            "25 Mflop at 25 Mflop/s = 1 s"
        );
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0, 2.0])?;
                c.send(1, &[3.0])?;
            } else {
                c.recv(0)?;
                c.recv(0)?;
            }
            Ok(c.stats())
        });
        assert_eq!(res[0].value.messages_sent, 2);
        assert_eq!(res[0].value.bytes_sent, 24);
        assert_eq!(res[1].value.messages_sent, 0);
    }

    #[test]
    fn stats_split_send_and_wait_time() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.compute(1e6);
                c.send(1, &vec![0.0; 1000])?;
            } else {
                c.recv(0)?; // arrives early, waits for the busy sender
            }
            Ok(c.stats())
        });
        let s0 = res[0].value;
        let s1 = res[1].value;
        assert!(s0.send_time > 0.0);
        assert_eq!(s0.wait_time, 0.0);
        assert_eq!(s1.send_time, 0.0);
        assert!(s1.wait_time > 0.0);
        // Every second of each rank's clock is accounted for.
        for (s, r) in [(s0, &res[0]), (s1, &res[1])] {
            let total = s.compute_time + s.comm_time();
            assert!((total - r.clock).abs() < 1e-12);
        }
    }

    #[test]
    fn messages_from_same_source_keep_order() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                for i in 0..100 {
                    c.send_scalar(1, i as f64)?;
                }
                Ok(vec![])
            } else {
                (0..100).map(|_| c.recv_scalar(0)).collect()
            }
        });
        let got = &res[1].value;
        assert!(got.iter().enumerate().all(|(i, &v)| v == i as f64));
    }

    #[test]
    fn cluster_inter_node_messages_cost_more() {
        let m = sparc20_cluster();
        let res = run_spmd(&m, 8, |c| {
            match c.rank() {
                0 => c.send(1, &vec![0.0; 4096])?, // intra-node
                1 => {
                    c.recv(0)?;
                }
                2 => c.send(6, &vec![0.0; 4096])?, // inter-node
                6 => {
                    c.recv(2)?;
                }
                _ => {}
            }
            Ok(c.clock())
        });
        assert!(
            res[2].value > 20.0 * res[0].value,
            "inter={} intra={}",
            res[2].value,
            res[0].value
        );
    }

    #[test]
    fn traced_run_records_matching_events() {
        let sink = Arc::new(MemorySink::new());
        let opts = SpmdOptions {
            trace: Some(sink.clone() as Arc<dyn otter_trace::TraceSink>),
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), 2, opts, |c| {
            if c.rank() == 0 {
                c.compute(1e6);
                c.send(1, &[1.0, 2.0])?;
            } else {
                c.recv(0)?;
            }
            Ok(c.stats())
        })
        .unwrap();
        let events = sink.snapshot().unwrap();
        let sends: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .collect();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].rank, 0);
        assert!(matches!(
            sends[0].kind,
            EventKind::Send {
                to: 1,
                bytes: 16,
                seq: 0
            }
        ));
        // Timeline totals equal the always-on stats, per rank.
        for t in timelines(&events) {
            let s = res[t.rank].value;
            assert!(
                (t.compute - s.compute_time).abs() < 1e-12,
                "rank {}",
                t.rank
            );
            assert!((t.comm - s.send_time).abs() < 1e-12);
            assert!((t.idle - s.wait_time).abs() < 1e-12);
        }
    }

    #[test]
    fn untraced_run_is_untouched() {
        let sink = Arc::new(MemorySink::new());
        // No trace in the options: Comm must not see the sink at all.
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            assert!(!c.trace_enabled());
            if c.rank() == 0 {
                c.send(1, &[1.0])?;
            } else {
                c.recv(0)?;
            }
            Ok(c.clock())
        });
        assert!(res[0].value > 0.0);
        assert!(sink.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        run_spmd(&meiko_cs2(), 1, |c| c.send(5, &[1.0]));
    }

    #[test]
    fn self_message_is_a_typed_error() {
        let res = run_spmd_with(&meiko_cs2(), 1, SpmdOptions::default(), |c| c.recv(0));
        let failure = res.unwrap_err();
        let e = &failure.report.failures[0].error;
        assert_eq!(e.code(), "self_message");
        assert!(e.to_string().contains("self-message"), "{e}");
    }

    #[test]
    fn scalar_payload_mismatch_is_typed() {
        let res = run_spmd_with(&meiko_cs2(), 2, SpmdOptions::default(), |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0, 2.0])?;
                Ok(0.0)
            } else {
                c.recv_scalar(0)
            }
        });
        let failure = res.unwrap_err();
        let f = failure
            .report
            .failures
            .iter()
            .find(|f| f.rank == 1)
            .unwrap();
        assert_eq!(f.error.code(), "payload_mismatch");
        assert!(f.error.to_string().contains("expected 1"), "{}", f.error);
    }
}
