//! # otter-interp
//!
//! A tree-walking MATLAB interpreter: the reproduction's stand-in for
//! The MathWorks interpreter, the baseline every figure of the paper
//! normalizes against ("speedup over MATLAB").
//!
//! Two things distinguish it from a toy evaluator:
//!
//! 1. **It meters its own overheads.** Per-statement dispatch, per-op
//!    dynamic dispatch, and the per-element interpreter penalty are
//!    charged to a [`CostMeter`] using the calibrated coefficients in
//!    `otter-machine`, so the modeled baseline time can be evaluated
//!    on any of the paper's machines.
//! 2. **It is the correctness oracle.** The compiled SPMD pipeline
//!    must produce the same workspace, which the integration tests
//!    verify for every benchmark script and processor count.
//!
//! ```
//! use otter_interp::run_script;
//!
//! let out = run_script("x = [1, 2; 3, 4];\ns = sum(x(:, 1));", None).unwrap();
//! assert_eq!(out.scalar("s"), Some(4.0));
//! ```

pub mod builtins;
pub mod error;
pub mod interp;
pub mod meter;
pub mod value;

pub use error::InterpError;
pub use interp::{Flow, Interp};
pub use meter::CostMeter;
pub use value::Value;

use otter_frontend::{parse, MapProvider, Program, SourceProvider};

/// Result of running a script: final workspace and metering.
#[derive(Debug)]
pub struct RunOutcome {
    /// Final values of script-level variables.
    pub workspace: std::collections::HashMap<String, Value>,
    /// Everything the script displayed.
    pub output: String,
    /// Modeled cost of the run.
    pub meter: CostMeter,
}

impl RunOutcome {
    /// Fetch a workspace variable.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.workspace.get(name)
    }

    /// Fetch a scalar workspace variable.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.workspace.get(name).and_then(|v| v.as_scalar())
    }

    /// Fetch a matrix workspace variable.
    pub fn matrix(&self, name: &str) -> Option<otter_rt::Dense> {
        self.workspace.get(name).and_then(|v| v.to_matrix())
    }
}

/// Assemble a [`Program`] from a script plus reachable M-files —
/// a lightweight version of the resolution pass, used when running
/// scripts directly through the interpreter. (The compiler pipeline
/// uses `otter-analysis`'s full resolution instead.)
pub fn assemble_program(
    src: &str,
    provider: &dyn SourceProvider,
) -> Result<Program, otter_frontend::FrontendError> {
    let file = parse(src)?;
    let mut program = Program {
        script: file.script,
        functions: file.functions,
    };
    // Chase referenced names breadth-first.
    let mut queued: Vec<String> = Vec::new();
    let collect = |block: &otter_frontend::Block, queued: &mut Vec<String>| {
        for stmt in block {
            collect_names(stmt, queued);
        }
    };
    collect(&program.script, &mut queued);
    for f in &program.functions {
        collect(&f.body, &mut queued);
    }
    let mut i = 0;
    while i < queued.len() {
        let name = queued[i].clone();
        i += 1;
        if program.function(&name).is_some() {
            continue;
        }
        if let Some(src) = provider.m_file(&name) {
            let file = parse(&src).map_err(|e| e.in_file(format!("{name}.m")))?;
            for f in file.functions {
                collect(&f.body, &mut queued);
                program.functions.push(f);
            }
        }
    }
    Ok(program)
}

fn collect_names(stmt: &otter_frontend::Stmt, out: &mut Vec<String>) {
    use otter_frontend::StmtKind;
    let from_expr = |e: &otter_frontend::Expr, out: &mut Vec<String>| {
        for n in e.idents() {
            out.push(n);
        }
    };
    match &stmt.kind {
        StmtKind::Expr(e) => from_expr(e, out),
        StmtKind::Assign { rhs, lhs } => {
            from_expr(rhs, out);
            if let Some(idx) = &lhs.indices {
                for e in idx {
                    from_expr(e, out);
                }
            }
        }
        StmtKind::MultiAssign { rhs, .. } => from_expr(rhs, out),
        StmtKind::If { arms, else_body } => {
            for (c, b) in arms {
                from_expr(c, out);
                for s in b {
                    collect_names(s, out);
                }
            }
            if let Some(b) = else_body {
                for s in b {
                    collect_names(s, out);
                }
            }
        }
        StmtKind::While { cond, body } => {
            from_expr(cond, out);
            for s in body {
                collect_names(s, out);
            }
        }
        StmtKind::For { iter, body, .. } => {
            from_expr(iter, out);
            for s in body {
                collect_names(s, out);
            }
        }
        _ => {}
    }
}

/// Parse and run a script with optional M-file sources; returns the
/// final workspace.
pub fn run_script(
    src: &str,
    m_files: Option<&MapProvider>,
) -> Result<RunOutcome, Box<dyn std::error::Error>> {
    let empty = MapProvider::new();
    let provider = m_files.unwrap_or(&empty);
    let program = assemble_program(src, provider)?;
    let mut interp = Interp::new(program);
    interp.run()?;
    Ok(RunOutcome {
        workspace: interp_workspace(&interp),
        output: interp.output.clone(),
        meter: interp.meter.clone(),
    })
}

fn interp_workspace(interp: &Interp) -> std::collections::HashMap<String, Value> {
    // The script scope is scope 0 and the only one left after run().
    interp.workspace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> RunOutcome {
        run_script(src, None).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn scalar_arithmetic() {
        let o = run("x = 2 + 3 * 4;");
        assert_eq!(o.scalar("x"), Some(14.0));
    }

    #[test]
    fn operator_precedence_matches_matlab() {
        assert_eq!(run("x = -2^2;").scalar("x"), Some(-4.0));
        assert_eq!(run("x = 2^-1;").scalar("x"), Some(0.5));
        assert_eq!(run("x = 8 / 4 / 2;").scalar("x"), Some(1.0));
        assert_eq!(run("x = 2 + 3 < 4;").scalar("x"), Some(0.0));
    }

    #[test]
    fn vector_ops_and_ranges() {
        let o = run("v = 1:5;\ns = sum(v .* v);");
        assert_eq!(o.scalar("s"), Some(55.0));
    }

    #[test]
    fn matrix_literal_and_matmul() {
        let o = run("a = [1, 2; 3, 4];\nb = a * a;\nt = b(2, 1);");
        assert_eq!(o.scalar("t"), Some(15.0));
    }

    #[test]
    fn transpose_and_dot() {
        let o = run("v = [1, 2, 3];\nd = v * v';");
        assert_eq!(o.scalar("d"), Some(14.0));
    }

    #[test]
    fn indexing_forms() {
        let o =
            run("a = [1, 2, 3; 4, 5, 6];\nr = a(2, :);\nc = a(:, 3);\ne = a(end, end);\nl = a(3);");
        assert_eq!(o.matrix("r").unwrap().data(), &[4.0, 5.0, 6.0]);
        assert_eq!(o.matrix("c").unwrap().data(), &[3.0, 6.0]);
        assert_eq!(o.scalar("e"), Some(6.0));
        // Linear indexing is column-major: a(3) == 2.
        assert_eq!(o.scalar("l"), Some(2.0));
    }

    #[test]
    fn range_indexing_with_end() {
        let o = run("v = 10:10:100;\nw = v(2:end-1);\ns = sum(w);");
        assert_eq!(
            o.scalar("s"),
            Some(20.0 + 30.0 + 40.0 + 50.0 + 60.0 + 70.0 + 80.0 + 90.0)
        );
    }

    #[test]
    fn indexed_assignment_and_growth() {
        let o = run("a = zeros(2, 2);\na(1, 2) = 5;\na(3, 3) = 7;\ns = sum(sum(a));");
        assert_eq!(o.scalar("s"), Some(12.0));
        let a = o.matrix("a").unwrap();
        assert_eq!((a.rows(), a.cols()), (3, 3));
    }

    #[test]
    fn vector_growth_by_linear_index() {
        let o = run("v(3) = 9;\nn = length(v);");
        assert_eq!(o.scalar("n"), Some(3.0));
        assert_eq!(o.matrix("v").unwrap().data(), &[0.0, 0.0, 9.0]);
    }

    #[test]
    fn while_loop_with_break() {
        let o = run("i = 0;\nwhile 1\ni = i + 1;\nif i >= 5\nbreak;\nend\nend");
        assert_eq!(o.scalar("i"), Some(5.0));
    }

    #[test]
    fn for_loop_accumulates() {
        let o = run("s = 0;\nfor i = 1:100\ns = s + i;\nend");
        assert_eq!(o.scalar("s"), Some(5050.0));
    }

    #[test]
    fn for_loop_continue() {
        let o = run("s = 0;\nfor i = 1:10\nif mod(i, 2) == 0\ncontinue;\nend\ns = s + i;\nend");
        assert_eq!(o.scalar("s"), Some(25.0));
    }

    #[test]
    fn if_elseif_else_chain() {
        let src = |x: i32| {
            format!("x = {x};\nif x < 0\ny = -1;\nelseif x == 0\ny = 0;\nelse\ny = 1;\nend")
        };
        assert_eq!(run(&src(-5)).scalar("y"), Some(-1.0));
        assert_eq!(run(&src(0)).scalar("y"), Some(0.0));
        assert_eq!(run(&src(3)).scalar("y"), Some(1.0));
    }

    #[test]
    fn user_functions_via_provider() {
        let m = MapProvider::new().with("sq", "function y = sq(x)\ny = x .* x;\n");
        let o = run_script("z = sq(4) + sq(3);", Some(&m)).unwrap();
        assert_eq!(o.scalar("z"), Some(25.0));
    }

    #[test]
    fn multi_return_function() {
        let m = MapProvider::new().with(
            "stats",
            "function [s, m] = stats(v)\ns = sum(v);\nm = mean(v);\n",
        );
        let o = run_script("[a, b] = stats([2, 4, 6]);", Some(&m)).unwrap();
        assert_eq!(o.scalar("a"), Some(12.0));
        assert_eq!(o.scalar("b"), Some(4.0));
    }

    #[test]
    fn recursion_works() {
        let m = MapProvider::new().with(
            "factorial_m",
            "function y = factorial_m(n)\nif n <= 1\ny = 1;\nelse\ny = n * factorial_m(n - 1);\nend\n",
        );
        let o = run_script("f = factorial_m(10);", Some(&m)).unwrap();
        assert_eq!(o.scalar("f"), Some(3628800.0));
    }

    #[test]
    fn functions_have_their_own_scope() {
        let m = MapProvider::new().with("clobber", "function y = clobber(x)\nt = 99;\ny = x;\n");
        let o = run_script("t = 1;\nz = clobber(2);", Some(&m)).unwrap();
        assert_eq!(o.scalar("t"), Some(1.0), "function locals must not leak");
    }

    #[test]
    fn globals_are_shared() {
        let m = MapProvider::new().with(
            "bump",
            "function y = bump(x)\nglobal counter\ncounter = counter + 1;\ny = x;\n",
        );
        let o = run_script(
            "global counter\ncounter = 0;\na = bump(0);\nb = bump(0);\nc = counter;",
            Some(&m),
        )
        .unwrap();
        assert_eq!(o.scalar("c"), Some(2.0));
    }

    #[test]
    fn builtin_reductions() {
        let o = run("v = [3, 1, 4, 1, 5];\nmx = max(v);\nmn = min(v);\nnm = norm([3, 4]);");
        assert_eq!(o.scalar("mx"), Some(5.0));
        assert_eq!(o.scalar("mn"), Some(1.0));
        assert_eq!(o.scalar("nm"), Some(5.0));
    }

    #[test]
    fn builtin_max_two_arg_broadcast() {
        let o = run("v = max([1, 5, 3], 2);");
        assert_eq!(o.matrix("v").unwrap().data(), &[2.0, 5.0, 3.0]);
    }

    #[test]
    fn trapz_builtins() {
        let o = run("y = 0:4;\na = trapz(y);\nx = [0, 2, 4];\nb = trapz2(x, [0, 2, 4]);");
        assert_eq!(o.scalar("a"), Some(8.0));
        assert_eq!(o.scalar("b"), Some(8.0));
    }

    #[test]
    fn solve_via_left_division() {
        let o = run("a = [2, 0; 0, 4];\nb = [2; 8];\nx = a \\ b;");
        assert_eq!(o.matrix("x").unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn solve_with_pivoting() {
        let o = run("a = [0, 1; 1, 0];\nb = [3; 7];\nx = a \\ b;");
        assert_eq!(o.matrix("x").unwrap().data(), &[7.0, 3.0]);
    }

    #[test]
    fn display_output_captured() {
        let o = run("x = 3\ny = 4;");
        assert!(o.output.contains("x ="));
        assert!(!o.output.contains("y ="));
    }

    #[test]
    fn disp_builtin() {
        let o = run("disp(42);");
        assert!(o.output.contains("42"));
    }

    #[test]
    fn ans_variable() {
        let o = run("3 + 4;\nx = ans * 2;");
        assert_eq!(o.scalar("x"), Some(14.0));
    }

    #[test]
    fn rand_is_seeded_and_in_range() {
        let a = run("x = rand(4, 4);\ns = sum(sum(x));");
        let b = run("x = rand(4, 4);\ns = sum(sum(x));");
        assert_eq!(a.scalar("s"), b.scalar("s"), "same seed, same stream");
        let m = a.matrix("x").unwrap();
        assert!(m.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn meter_accumulates() {
        let o = run("v = 1:1000;\ns = sum(v);");
        assert!(o.meter.units() > 1000.0);
        assert!(o.meter.statements() >= 2);
    }

    #[test]
    fn interpreter_costs_exceed_matcom_costs() {
        use otter_machine::ExecutionStyle;
        let program = assemble_program(
            "v = 1:100;\ns = 0;\nfor i = 1:100\ns = s + v(i);\nend",
            &MapProvider::new(),
        )
        .unwrap();
        let mut i1 = Interp::new(program.clone());
        i1.run().unwrap();
        let mut i2 = Interp::with_style(program, ExecutionStyle::Matcom);
        i2.run().unwrap();
        assert!(i1.meter.units() > 5.0 * i2.meter.units());
    }

    #[test]
    fn undefined_variable_reports_span() {
        let err = run_script("x = nosuchthing + 1;", None).unwrap_err();
        assert!(err.to_string().contains("nosuchthing"), "{err}");
    }

    #[test]
    fn shape_mismatch_reported() {
        let err = run_script("a = [1, 2] + [1, 2, 3];", None).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn string_values() {
        let o = run("s = 'hello';\nn = length(s);");
        assert_eq!(o.scalar("n"), Some(5.0));
    }

    #[test]
    fn colon_full_slice_returns_column() {
        // a(:) flattens column-major in MATLAB; our subset returns the
        // linear selection.
        let o = run("a = [1, 3; 2, 4];\nv = a(:);\ns = v(2);");
        assert_eq!(o.scalar("s"), Some(2.0));
    }

    #[test]
    fn elementwise_power() {
        let o = run("v = [1, 2, 3] .^ 2;\ns = sum(v);");
        assert_eq!(o.scalar("s"), Some(14.0));
    }

    #[test]
    fn logical_reductions_via_comparison() {
        let o = run("v = [1, 5, 2, 8];\nbig = sum(v > 3);");
        assert_eq!(o.scalar("big"), Some(2.0));
    }

    #[test]
    fn linspace_builtin() {
        let o = run("v = linspace(0, 1, 5);");
        assert_eq!(o.matrix("v").unwrap().data(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn size_two_outputs() {
        let o = run("a = zeros(3, 7);\n[r, c] = size(a);");
        assert_eq!(o.scalar("r"), Some(3.0));
        assert_eq!(o.scalar("c"), Some(7.0));
    }
}

#[cfg(test)]
mod builtin_tests {
    use super::*;

    fn run(src: &str) -> RunOutcome {
        run_script(src, None).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn prod_conventions() {
        assert_eq!(run("p = prod([1, 2, 3, 4]);").scalar("p"), Some(24.0));
        let o = run("p = prod([1, 2; 3, 4]);");
        assert_eq!(o.matrix("p").unwrap().data(), &[3.0, 8.0]);
    }

    #[test]
    fn any_all_conventions() {
        assert_eq!(run("a = any([0, 0, 1]);").scalar("a"), Some(1.0));
        assert_eq!(run("a = any([0, 0, 0]);").scalar("a"), Some(0.0));
        assert_eq!(run("a = all([1, 2, 3]);").scalar("a"), Some(1.0));
        assert_eq!(run("a = all([1, 0, 3]);").scalar("a"), Some(0.0));
        let o = run("a = any([0, 1; 0, 0]);");
        assert_eq!(o.matrix("a").unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn max_min_column_conventions() {
        let o = run("m = max([1, 5; 3, 2]);\nn = min([1, 5; 3, 2]);");
        assert_eq!(o.matrix("m").unwrap().data(), &[3.0, 5.0]);
        assert_eq!(o.matrix("n").unwrap().data(), &[1.0, 2.0]);
        // Vectors still give scalars.
        assert_eq!(run("m = max([4, 9, 2]);").scalar("m"), Some(9.0));
    }

    #[test]
    fn strided_indexing_interpreted() {
        let o = run("v = 1:20;\nw = v(1:2:end);\ns = sum(w);");
        assert_eq!(o.scalar("s"), Some(100.0));
        let o = run("v = 1:10;\nw = v(10:-3:1);");
        assert_eq!(o.matrix("w").unwrap().data(), &[10.0, 7.0, 4.0, 1.0]);
    }

    #[test]
    fn scalar_slice_fill_interpreted() {
        let o = run("a = ones(3, 3);\na(2, :) = 0;\ns = sum(sum(a));");
        assert_eq!(o.scalar("s"), Some(6.0));
        let o = run("v = 1:6;\nv(2:4) = 9;\ns = sum(v);");
        assert_eq!(o.scalar("s"), Some(1.0 + 27.0 + 5.0 + 6.0));
    }
}
