//! Error-path tests: every documented compiler restriction fails with
//! a clear, actionable diagnostic (and, where the construct is legal
//! MATLAB, the interpreter still accepts it).

use otter_core::compile_str;
use otter_interp::run_script;

fn compile_err(src: &str) -> String {
    compile_str(src)
        .expect_err(&format!("should not compile:\n{src}"))
        .to_string()
}

#[test]
fn unknown_function_names_the_culprit() {
    let e = compile_err("z = frobnicate(3);");
    assert!(e.contains("frobnicate"), "{e}");
}

#[test]
fn use_before_assignment_names_the_variable() {
    let e = compile_err("y = x + 1;\nx = 2;");
    assert!(e.contains("`x`"), "{e}");
    assert!(e.contains("before"), "{e}");
}

#[test]
fn matrix_solve_points_to_cg() {
    let e = compile_err("a = ones(3, 3);\nb = ones(3, 1);\nx = a \\ b;");
    assert!(e.contains("left-division"), "{e}");
    // The interpreter supports it.
    let out = run_script("a = eye(3);\nb = ones(3, 1);\nx = a \\ b;", None).unwrap();
    assert_eq!(out.matrix("x").unwrap().data(), &[1.0, 1.0, 1.0]);
}

#[test]
fn recursion_rejected_with_interpreter_fallback() {
    let m = otter_frontend::MapProvider::new().with(
        "fact",
        "function y = fact(n)\nif n <= 1\ny = 1;\nelse\ny = n * fact(n - 1);\nend\n",
    );
    let err =
        otter_core::compile_program("f = fact(5);", &m, &otter_core::CompileOptions::default())
            .unwrap_err()
            .to_string();
    assert!(err.contains("recursive"), "{err}");
    let out = run_script("f = fact(5);", Some(&m)).unwrap();
    assert_eq!(out.scalar("f"), Some(120.0));
}

#[test]
fn global_rejected_by_compiler_only() {
    let e = compile_err("global g\ng = 1;\nx = g + 1;");
    assert!(e.contains("global"), "{e}");
}

#[test]
fn growth_by_indexed_assignment_requires_preallocation() {
    let e = compile_err("a(5) = 1;");
    assert!(e.contains("preallocate"), "{e}");
    // MATLAB (the interpreter) grows happily.
    let out = run_script("a(5) = 1;\nn = length(a);", None).unwrap();
    assert_eq!(out.scalar("n"), Some(5.0));
}

#[test]
fn rank_conflict_across_control_flow_explains_itself() {
    let e = compile_err("c = 1;\nif c > 0\nx = 1;\nelse\nx = [1, 2];\nend\ny = x;");
    assert!(e.contains("rank"), "{e}");
}

#[test]
fn shape_mismatch_reports_shapes() {
    let e = compile_err("a = ones(2, 3);\nb = ones(3, 2);\nc = a + b;");
    assert!(e.contains("2x3") && e.contains("3x2"), "{e}");
}

#[test]
fn inner_dimension_mismatch_reported() {
    let e = compile_err("a = ones(2, 3);\nb = ones(2, 3);\nc = a * b;");
    assert!(e.contains("inner dimensions"), "{e}");
}

#[test]
fn matrix_condition_rejected() {
    let e = compile_err("a = ones(2, 2);\nif a\nx = 1;\nend");
    assert!(e.contains("scalar"), "{e}");
}

#[test]
fn load_needs_sample_data_file() {
    let e = compile_err("d = load('nonexistent_file.dat');");
    assert!(e.contains("sample data file"), "{e}");
}

#[test]
fn whitespace_matrix_literals_cite_the_restriction() {
    // The paper's own documented restriction.
    let e = compile_err("a = [1 2];");
    assert!(e.to_lowercase().contains("comma"), "{e}");
}

#[test]
fn parse_errors_carry_positions() {
    let e = compile_err("x = ;\n");
    assert!(e.contains("1:5"), "position in: {e}");
}

#[test]
fn unsupported_indexing_form_is_explicit() {
    let e = compile_err("a = ones(4, 4);\nb = a(1:2, 1:2);");
    assert!(e.contains("not supported"), "{e}");
}

#[test]
fn conflicting_function_signatures_explained() {
    let m = otter_frontend::MapProvider::new().with("idy", "function y = idy(x)\ny = x;\n");
    let err = otter_core::compile_program(
        "a = idy(1);\nb = idy(ones(2, 2));",
        &m,
        &otter_core::CompileOptions::default(),
    )
    .unwrap_err()
    .to_string();
    assert!(err.contains("conflicting"), "{err}");
}

#[test]
fn large_generated_program_compiles_quickly() {
    // Compiler-scalability smoke test: a 600-statement script must
    // compile in well under a second even in debug builds.
    let mut src = String::from("x0 = 1;\nv0 = ones(16, 1);\n");
    for i in 1..300 {
        src.push_str(&format!("x{i} = x{} + {i};\n", i - 1));
        src.push_str(&format!("v{i} = v{} * 2 + x{i};\n", i - 1));
    }
    src.push_str("total = x299 + sum(v299);\n");
    let t0 = std::time::Instant::now();
    let compiled = compile_str(&src).expect("large program compiles");
    let elapsed = t0.elapsed();
    assert!(compiled.ir.instr_count() >= 600);
    assert!(elapsed.as_secs() < 20, "compile took {elapsed:?}");
}
