//! Cost model for the three execution styles the paper compares
//! (§5): the MathWorks interpreter, the MATCOM sequential compiler,
//! and Otter-compiled code.
//!
//! Costs are charged per *scalar operation class* by the interpreter
//! and by the SPMD executor's virtual clock. The constants are
//! calibrated so the single-CPU comparison reproduces the Figure-2
//! relationships (compiled code always beats the interpreter; Otter
//! and MATCOM trade wins), not the paper's absolute numbers — the
//! paper's own absolute numbers depend on 1998 silicon.

/// Classes of scalar work with distinct costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Add/subtract/compare/logical/copy.
    Add,
    /// Multiply.
    Mul,
    /// Divide / square root.
    Div,
    /// Transcendental (sin, cos, exp, ...).
    Transcendental,
}

impl OpClass {
    /// Relative cost in "flop units" (an `Add` is 1.0).
    pub fn weight(self) -> f64 {
        match self {
            OpClass::Add => 1.0,
            OpClass::Mul => 1.0,
            OpClass::Div => 4.0,
            OpClass::Transcendental => 16.0,
        }
    }
}

/// Which of the paper's three systems is "executing" the script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionStyle {
    /// The MathWorks interpreter: per-statement dispatch, per-operation
    /// dynamic dispatch, per-element boxing overheads.
    Interpreter,
    /// MATCOM-style sequential compiled C++: no dispatch, but full
    /// temporaries for every vector operation and run-time shape checks.
    Matcom,
    /// Otter-compiled SPMD code: element-wise loops emitted inline,
    /// run-time library for communication-bearing operations.
    Otter,
}

/// Overhead coefficients of an execution style, in units of one
/// sustained flop-time of the host CPU.
///
/// Modeled statement time is
/// `dispatch + Σ_ops (op_overhead + elements * element_factor * weight)`,
/// with dense linear algebra charged through the two `*_factor`
/// multipliers on its raw flop count instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StyleCosts {
    /// Fixed cost per executed statement (interpreter statement fetch,
    /// parse-tree walk), in flop units.
    pub statement_dispatch: f64,
    /// Fixed cost per vector/matrix operation (dynamic dispatch, shape
    /// check, temporary allocation), in flop units.
    pub op_overhead: f64,
    /// Multiplier on per-element work relative to ideal compiled code.
    pub element_factor: f64,
    /// Multiplier on O(n²) dense kernels (matrix-vector products):
    /// these stream memory once, so even the interpreter's built-in C
    /// kernel is comparatively close to compiled code.
    pub matvec_factor: f64,
    /// Multiplier on O(n³) dense kernels (matrix multiply): MATLAB 5's
    /// pre-BLAS triple loop had poor cache behaviour on large
    /// matrices, so the gap to compiled code is widest here.
    pub matmul_factor: f64,
}

impl ExecutionStyle {
    /// Calibrated coefficients; see module docs.
    ///
    /// Rationale for the values (calibrated against the paper's two
    /// hard anchors — CG ≈ 50× and transitive closure ≈ 78× over the
    /// interpreter on 16 Meiko CPUs — and Figure 2's property that the
    /// MATCOM/Otter comparison splits 2-2):
    /// * Interpreter: ~2000 flop-equivalents of per-statement dispatch
    ///   and ~400 per vector op (dynamic dispatch + temporary);
    ///   element work ×3 (type-checked copy-heavy loops); matvec ×2.8
    ///   (its built-in C kernel streams memory once, close to
    ///   compiled); matmul ×5.2 (MATLAB 5 predates its BLAS
    ///   integration — naive triple loop, poor cache use at n ≥ 512).
    /// * MATCOM: op-at-a-time C++ with full temporaries (element
    ///   ×1.6) but well-tuned sequential kernels (linalg ×0.8) — which
    ///   is exactly why it wins the linalg-bound apps in Figure 2 and
    ///   loses the fusion-friendly ones.
    /// * Otter: fused element-wise loops (×1.0) and straightforward
    ///   distributed kernels (×1.0), plus a small run-time-library
    ///   call overhead.
    pub fn costs(self) -> StyleCosts {
        match self {
            ExecutionStyle::Interpreter => StyleCosts {
                statement_dispatch: 2000.0,
                op_overhead: 400.0,
                element_factor: 3.0,
                matvec_factor: 2.8,
                matmul_factor: 5.2,
            },
            ExecutionStyle::Matcom => StyleCosts {
                statement_dispatch: 8.0,
                op_overhead: 40.0,
                element_factor: 1.6,
                matvec_factor: 0.6,
                matmul_factor: 0.8,
            },
            ExecutionStyle::Otter => StyleCosts {
                statement_dispatch: 4.0,
                op_overhead: 24.0,
                element_factor: 1.0,
                matvec_factor: 1.0,
                matmul_factor: 1.0,
            },
        }
    }

    /// Display name used in tables.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionStyle::Interpreter => "MathWorks interpreter",
            ExecutionStyle::Matcom => "MATCOM compiler",
            ExecutionStyle::Otter => "Otter compiler",
        }
    }
}

impl StyleCosts {
    /// Modeled flop-units for one vector operation of `elements`
    /// elements in class `class`.
    pub fn op_units(&self, class: OpClass, elements: usize) -> f64 {
        self.op_overhead + elements as f64 * self.element_factor * class.weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_dominated_by_dispatch_on_scalar_code() {
        let i = ExecutionStyle::Interpreter.costs();
        let o = ExecutionStyle::Otter.costs();
        // One scalar add: interpreter pays dispatch; compiled barely anything.
        let interp = i.statement_dispatch + i.op_units(OpClass::Add, 1);
        let otter = o.statement_dispatch + o.op_units(OpClass::Add, 1);
        assert!(interp / otter > 20.0, "interp={interp} otter={otter}");
    }

    #[test]
    fn interpreter_gap_narrows_on_large_vectors() {
        let i = ExecutionStyle::Interpreter.costs();
        let o = ExecutionStyle::Otter.costs();
        let n = 1_000_000;
        let interp = i.statement_dispatch + i.op_units(OpClass::Add, n);
        let otter = o.statement_dispatch + o.op_units(OpClass::Add, n);
        let ratio = interp / otter;
        // Ratio approaches the element factor (3), far from the
        // scalar-code ratio.
        assert!(ratio < 3.5 && ratio > 2.5, "ratio={ratio}");
    }

    #[test]
    fn linalg_factors_reflect_1998_matlab() {
        let i = ExecutionStyle::Interpreter.costs();
        assert!(i.matmul_factor > i.matvec_factor, "matmul gap is widest");
        let m = ExecutionStyle::Matcom.costs();
        assert!(
            m.matvec_factor < 1.0,
            "MATCOM's tuned kernels beat naive compiled code"
        );
    }

    #[test]
    fn matcom_sits_between() {
        let i = ExecutionStyle::Interpreter.costs();
        let m = ExecutionStyle::Matcom.costs();
        let o = ExecutionStyle::Otter.costs();
        assert!(i.element_factor > m.element_factor);
        assert!(m.element_factor > o.element_factor);
        assert!(i.statement_dispatch > m.statement_dispatch);
    }

    #[test]
    fn op_class_weights_ordered() {
        assert!(OpClass::Transcendental.weight() > OpClass::Div.weight());
        assert!(OpClass::Div.weight() > OpClass::Mul.weight());
        assert_eq!(OpClass::Add.weight(), 1.0);
    }

    #[test]
    fn labels_are_paper_names() {
        assert_eq!(ExecutionStyle::Interpreter.label(), "MathWorks interpreter");
        assert_eq!(ExecutionStyle::Otter.label(), "Otter compiler");
    }
}
