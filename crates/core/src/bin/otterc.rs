//! `otterc` — the Otter compiler as a command-line tool, mirroring how
//! the paper's users would have driven it:
//!
//! ```text
//! otterc script.m                      # emit SPMD C to script.c
//! otterc script.m -o out.c            # choose the output path
//! otterc script.m --emit ir           # dump the SPMD IR instead
//! otterc script.m --emit ast          # dump the resolved/SSA'd AST
//! otterc script.m --run               # compile AND execute (1 CPU)
//! otterc script.m --run -p 16 --machine meiko
//! otterc script.m --run -p 4096 --workers 8
//!                                      # thousands of virtual ranks on a
//!                                      # fixed worker pool
//! otterc script.m --run --trace       # per-rank timeline + critical path
//! otterc script.m --no-peephole ...   # disable pass 6
//! otterc script.m --no-fusion ...     # disable the loop-fusion pass
//! otterc script.m --timing            # per-pass wall time + sizes
//! otterc script.m --dump-after=rewrite  # print the IR after pass 4
//! otterc script.m --lint              # print SPMD lint warnings
//! otterc script.m --lint=deny         # ...and fail the build on any
//! otterc script.m --analyze           # static comm-volume oracle table
//! otterc script.m --analyze -p 8      # ...evaluated at 8 ranks
//! ```
//!
//! M-file functions are resolved from the script's directory, like the
//! MATLAB path; `load` reads sample data files from the same place.

use otter_core::{
    run, CompileOptions, CompileReport, CompiledArtifact, DumpRequest, EngineOptions, EngineReport,
    LintMode, PassManager, RunRequest,
};
use otter_frontend::DirProvider;
use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster, workstation, Machine};
use otter_trace::MemorySink;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;

struct Args {
    input: PathBuf,
    output: Option<PathBuf>,
    emit: Emit,
    run: bool,
    p: usize,
    workers: Option<usize>,
    machine: Machine,
    no_peephole: bool,
    no_fusion: bool,
    timing: bool,
    trace: bool,
    dump_after: Option<String>,
    lint: bool,
    lint_deny: bool,
    analyze: bool,
}

#[derive(PartialEq)]
enum Emit {
    C,
    Ir,
    Ast,
}

fn usage() -> ! {
    eprintln!(
        "usage: otterc <script.m> [-o out.c] [--emit c|ir|ast] [--run] \
         [-p N] [--workers W] [--machine meiko|cluster|smp|workstation] \
         [--no-peephole] [--no-fusion] [--timing] [--trace] [--dump-after=<pass>|all] \
         [--lint[=deny]] [--analyze]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut input = None;
    let mut output = None;
    let mut emit = Emit::C;
    let mut run = false;
    let mut p = 1usize;
    let mut workers = None;
    let mut machine = meiko_cs2();
    let mut no_peephole = false;
    let mut no_fusion = false;
    let mut timing = false;
    let mut trace = false;
    let mut dump_after = None;
    let mut lint = false;
    let mut lint_deny = false;
    let mut analyze = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--emit" => {
                emit = match it.next().as_deref() {
                    Some("c") => Emit::C,
                    Some("ir") => Emit::Ir,
                    Some("ast") => Emit::Ast,
                    _ => usage(),
                }
            }
            "--run" => run = true,
            "-p" => {
                p = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                workers = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--machine" => {
                machine = match it.next().as_deref() {
                    Some("meiko") => meiko_cs2(),
                    Some("cluster") => sparc20_cluster(),
                    Some("smp") => enterprise_smp(),
                    Some("workstation") => workstation(),
                    _ => usage(),
                }
            }
            "--no-peephole" => no_peephole = true,
            "--no-fusion" => no_fusion = true,
            "--timing" => timing = true,
            "--trace" => trace = true,
            "--lint" => lint = true,
            "--analyze" => analyze = true,
            "--lint=deny" => {
                lint = true;
                lint_deny = true;
            }
            "--dump-after" => dump_after = Some(it.next().unwrap_or_else(|| usage())),
            other if other.starts_with("--dump-after=") => {
                dump_after = Some(other["--dump-after=".len()..].to_string());
            }
            "-h" | "--help" => usage(),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other));
            }
            _ => usage(),
        }
    }
    Args {
        input: input.unwrap_or_else(|| usage()),
        output,
        emit,
        run,
        p,
        workers,
        machine,
        no_peephole,
        no_fusion,
        timing,
        trace,
        dump_after,
        lint,
        lint_deny,
        analyze,
    }
}

/// Per-rank timeline + critical-path summary behind `--trace`.
fn print_trace_summary(r: &EngineReport) {
    eprintln!(
        "{:>4} {:>12} {:>12} {:>12} {:>12}",
        "rank", "compute (s)", "comm (s)", "idle (s)", "clock (s)"
    );
    for c in &r.per_rank {
        eprintln!(
            "{:>4} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            c.rank, c.compute_seconds, c.comm_seconds, c.idle_seconds, c.clock
        );
    }
    if let Some(cp) = &r.critical_path {
        eprintln!(
            "critical path: {:.6} s ({:.6} s compute + {:.6} s comm, \
             {} cross-rank hops, {:.1}% comm)",
            cp.total,
            cp.compute,
            cp.comm,
            cp.hops,
            cp.comm_share() * 100.0,
        );
    }
}

fn print_timing(report: &CompileReport) {
    eprintln!(
        "{:<10} {:>12} {:>8} {:>8} {:>9} {:>9} {:>7} {:>7}",
        "pass", "wall (µs)", "stmts", "Δstmts", "IR", "ΔIR", "rtcall", "Δrt"
    );
    for s in &report.passes {
        eprintln!(
            "{:<10} {:>12.1} {:>8} {:>+8} {:>9} {:>+9} {:>7} {:>+7}",
            s.name,
            s.wall.as_secs_f64() * 1e6,
            s.stmts_after,
            s.stmts_after as i64 - s.stmts_before as i64,
            s.ir_instrs_after,
            s.ir_instrs_after as i64 - s.ir_instrs_before as i64,
            s.runtime_calls_after,
            s.runtime_calls_after as i64 - s.runtime_calls_before as i64,
        );
    }
}

/// The `--analyze` report: one line per leaf site — static trip
/// count, symbolic messages/bytes formulas, and the model evaluated at
/// the requested rank count — then the in-place legality sets.
fn print_analysis(compiled: &otter_core::Compiled, p: usize) {
    eprintln!(
        "{:>4} {:<8} {:<15} {:>5} {:>6} {:>24} {:>10} {:>24} {:>12}",
        "site", "scope", "opcode", "depth", "execs", "messages(p)", "@p", "bytes(p)", "@p"
    );
    for pred in &compiled.analysis {
        let cost = pred.model.per_exec(p);
        let execs = match pred.execs {
            otter_core::analysis::Execs::Static(n) => n.to_string(),
            otter_core::analysis::Execs::Dynamic => "dyn".to_string(),
        };
        eprintln!(
            "{:>4} {:<8} {:<15} {:>5} {:>6} {:>24} {:>10} {:>24} {:>12}",
            pred.site,
            pred.func.as_deref().unwrap_or("main"),
            pred.opcode,
            pred.loop_depth,
            execs,
            pred.model.messages_formula(),
            cost.map_or("?".to_string(), |c| c.messages.to_string()),
            pred.model.bytes_formula(),
            cost.map_or("?".to_string(), |c| c.bytes.to_string()),
        );
    }
    let free = compiled
        .analysis
        .iter()
        .filter(|s| s.model.is_free())
        .count();
    eprintln!(
        "otterc: analyze: {} site(s), {} communication-free, evaluated at p={p}",
        compiled.analysis.len(),
        free,
    );
    if !compiled.ir.in_place.is_empty() {
        eprintln!(
            "otterc: analyze: in-place updatable (main): {}",
            compiled
                .ir
                .in_place
                .iter()
                .cloned()
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    for (name, f) in &compiled.ir.functions {
        if !f.in_place.is_empty() {
            eprintln!(
                "otterc: analyze: in-place updatable ({name}): {}",
                f.in_place.iter().cloned().collect::<Vec<_>>().join(", ")
            );
        }
    }
}

fn main() {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("otterc: cannot read {}: {e}", args.input.display());
            exit(1);
        }
    };
    let dir = args
        .input
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .unwrap_or(Path::new("."))
        .to_path_buf();
    let provider = DirProvider::new(&dir);
    let mut opts = CompileOptions {
        data_dir: Some(dir),
        disabled_passes: Vec::new(),
        lint: if args.lint_deny {
            LintMode::Deny
        } else {
            LintMode::Warn
        },
    };
    let mut pm = PassManager::standard();
    if args.no_peephole {
        opts = opts.without_pass("peephole");
    }
    if args.no_fusion {
        opts = opts.without_pass("fusion");
    }
    if let Some(name) = &args.dump_after {
        let req = if name == "all" {
            DumpRequest::All
        } else {
            DumpRequest::After(name.clone())
        };
        if let Err(e) = pm.dump_after(req) {
            eprintln!("otterc: {e}");
            exit(2);
        }
    }
    let report = match pm.compile(&src, &provider, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("otterc: {}: {e}", args.input.display());
            exit(1);
        }
    };
    if args.timing {
        print_timing(&report);
    }
    for dump in &report.dumps {
        println!("=== after pass `{}` ===", dump.pass);
        print!("{}", dump.text);
        if !dump.text.ends_with('\n') {
            println!();
        }
    }
    let passes = report.passes;
    let compiled = report.compiled;
    if args.lint {
        for w in &compiled.lint.warnings {
            eprintln!("{}", w.clone().in_file(args.input.display().to_string()));
        }
        eprintln!(
            "otterc: lint: {} warning(s), {} collective site(s), {} point-to-point site(s){}",
            compiled.lint.warnings.len(),
            compiled.lint.collective_sites,
            compiled.lint.p2p_sites,
            if compiled.lint.divergence_free {
                ", divergence-free"
            } else {
                ""
            },
        );
    }

    if args.analyze {
        print_analysis(&compiled, args.p);
    }

    match args.emit {
        Emit::Ir => print!("{}", compiled.ir_text()),
        Emit::Ast => {
            // Show the program after resolution + SSA (re-run the front
            // half; cheap and keeps Compiled lean).
            match otter_analysis::resolve(&src, &provider) {
                Ok(resolved) => {
                    let mut program = resolved.program;
                    let info = otter_analysis::ssa_rename(&program.script, &[]);
                    program.script = info.block;
                    print!("{}", otter_frontend::pretty::program_to_string(&program));
                }
                Err(e) => {
                    eprintln!("otterc: {e}");
                    exit(1);
                }
            }
        }
        Emit::C => {
            let out_path = args
                .output
                .clone()
                .unwrap_or_else(|| args.input.with_extension("c"));
            if let Err(e) = std::fs::write(&out_path, &compiled.c_source) {
                eprintln!("otterc: cannot write {}: {e}", out_path.display());
                exit(1);
            }
            eprintln!(
                "otterc: wrote {} ({} IR instructions, peephole {:?})",
                out_path.display(),
                compiled.ir.instr_count(),
                compiled.peephole_stats
            );
        }
    }

    if args.run {
        // Reconstruct the engine-level options this compile ran under
        // so the artifact's fingerprint (and run-time knobs like the
        // trace sink) match what the pipeline actually saw.
        let mut eopts = if args.trace {
            EngineOptions::builder()
                .trace(Arc::new(MemorySink::new()))
                .build()
        } else {
            EngineOptions::default()
        };
        eopts.data_dir = compiled.data_dir.clone();
        if args.no_peephole {
            eopts.disabled_passes.push("peephole".to_string());
        }
        if args.no_fusion {
            eopts.fusion = false;
        }
        if args.lint_deny {
            eopts.lint = LintMode::Deny;
        }
        let artifact = CompiledArtifact::from_parts(compiled, passes, &src, &eopts);
        let mut req = RunRequest::on(args.machine.clone(), args.p);
        if let Some(w) = args.workers {
            req = req.with_workers(w);
        }
        match run(&artifact, &req) {
            Ok(r) => {
                print!("{}", r.output);
                eprintln!(
                    "otterc: ran on {} x{}: modeled {:.6} s, {} messages, {} bytes, \
                     {} ops, peak {} B/rank",
                    args.machine.name,
                    args.p,
                    r.modeled_seconds,
                    r.messages,
                    r.bytes,
                    r.total_ops(),
                    r.peak_temp_bytes,
                );
                if args.trace {
                    print_trace_summary(&r);
                }
            }
            Err(e) => {
                eprintln!("otterc: execution failed: {e}");
                exit(1);
            }
        }
    }
}
