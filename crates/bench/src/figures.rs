//! Figures 2–6: the performance experiments.
//!
//! All figures normalize against the MathWorks-interpreter stand-in
//! running on a single CPU of the *same* machine, matching the paper's
//! "speedup over MATLAB" axes.

use otter_apps::App;
use otter_core::{compile, run_compiled, run_interpreter, BaselineOptions, CompileOptions};
use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster, workstation, Machine};

/// Which problem sizes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale problems (n = 2048 CG, 5 000 particles, 512² TC).
    Paper,
    /// Scaled-down problems for CI and debug builds.
    Test,
}

impl Scale {
    pub fn apps(self) -> Vec<App> {
        match self {
            Scale::Paper => otter_apps::paper_apps(),
            Scale::Test => otter_apps::test_apps(),
        }
    }
}

/// One row of Figure 2: relative single-CPU performance
/// (interpreter ≡ 1.0; higher is faster).
#[derive(Debug, Clone)]
pub struct Fig2Row {
    pub app: String,
    pub interpreter: f64,
    pub matcom: f64,
    pub otter: f64,
}

/// Figure 2 — relative performance of the three systems on one
/// UltraSPARC CPU.
pub fn fig2(scale: Scale) -> Vec<Fig2Row> {
    let ws = workstation();
    let opts = BaselineOptions::default();
    scale
        .apps()
        .iter()
        .map(|app| {
            let interp = run_interpreter(&app.script, &ws, &opts)
                .unwrap_or_else(|e| panic!("{}: interp: {e}", app.id));
            let matcom = otter_core::run_matcom(&app.script, &ws, &opts)
                .unwrap_or_else(|e| panic!("{}: matcom: {e}", app.id));
            let compiled = compile(
                &app.script,
                &otter_frontend::EmptyProvider,
                &CompileOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: compile: {e}", app.id));
            let otter = run_compiled(&compiled, &ws, 1)
                .unwrap_or_else(|e| panic!("{}: otter: {e}", app.id));
            let t0 = interp.modeled_seconds;
            Fig2Row {
                app: app.name.to_string(),
                interpreter: 1.0,
                matcom: t0 / matcom.modeled_seconds,
                otter: t0 / otter.modeled_seconds,
            }
        })
        .collect()
}

/// One machine's speedup curve.
#[derive(Debug, Clone)]
pub struct SpeedupSeries {
    pub machine: String,
    /// (CPU count, speedup over the interpreter on one CPU of this
    /// machine).
    pub points: Vec<(usize, f64)>,
}

/// One figure: an application's speedup on all three architectures.
#[derive(Debug, Clone)]
pub struct FigureData {
    pub figure: &'static str,
    pub app: String,
    pub series: Vec<SpeedupSeries>,
    /// Total messages at the largest CPU count on the first machine
    /// (reported in EXPERIMENTS.md).
    pub messages_at_max: u64,
}

/// CPU counts swept on a machine (powers of two up to its size).
pub fn cpu_sweep(machine: &Machine) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 1;
    while p <= machine.max_cpus {
        out.push(p);
        p *= 2;
    }
    out
}

/// Figures 3–6 — one application's speedup over the interpreter on the
/// three modeled parallel machines.
pub fn speedup_figure(figure: &'static str, app: &App) -> FigureData {
    let machines = [meiko_cs2(), sparc20_cluster(), enterprise_smp()];
    let compiled = compile(
        &app.script,
        &otter_frontend::EmptyProvider,
        &CompileOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{}: compile: {e}", app.id));
    let opts = BaselineOptions::default();
    let mut series = Vec::new();
    let mut messages_at_max = 0;
    for m in &machines {
        let interp = run_interpreter(&app.script, m, &opts)
            .unwrap_or_else(|e| panic!("{}: interp: {e}", app.id));
        let t0 = interp.modeled_seconds;
        let mut points = Vec::new();
        for p in cpu_sweep(m) {
            let run = run_compiled(&compiled, m, p)
                .unwrap_or_else(|e| panic!("{}: p={p}: {e}", app.id));
            points.push((p, t0 / run.modeled_seconds));
            if m.name.contains("Meiko") && p == m.max_cpus {
                messages_at_max = run.messages;
            }
        }
        series.push(SpeedupSeries { machine: m.name.clone(), points });
    }
    FigureData { figure, app: app.name.to_string(), series, messages_at_max }
}

/// The four speedup figures in paper order.
pub fn all_speedup_figures(scale: Scale) -> Vec<FigureData> {
    let apps = scale.apps();
    let find = |id: &str| apps.iter().find(|a| a.id == id).unwrap();
    vec![
        speedup_figure("Figure 3", find("cg")),
        speedup_figure("Figure 4", find("ocean")),
        speedup_figure("Figure 5", find("nbody")),
        speedup_figure("Figure 6", find("tc")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_otter_beats_interpreter_everywhere() {
        for row in fig2(Scale::Test) {
            assert!(
                row.otter > 1.0,
                "{}: Otter must outperform the interpreter (got {})",
                row.app,
                row.otter
            );
            assert!(row.matcom > 1.0, "{}: MATCOM must too ({})", row.app, row.matcom);
            assert_eq!(row.interpreter, 1.0);
        }
    }

    #[test]
    fn cpu_sweeps_match_machines() {
        assert_eq!(cpu_sweep(&meiko_cs2()), vec![1, 2, 4, 8, 16]);
        assert_eq!(cpu_sweep(&enterprise_smp()), vec![1, 2, 4, 8]);
    }

    #[test]
    fn transitive_closure_scales_best() {
        // Figure 6 vs Figures 4/5: at max Meiko CPUs, the O(n³) app
        // must show more speedup than the O(n) apps.
        let apps = Scale::Test.apps();
        let tc = speedup_figure("f6", apps.iter().find(|a| a.id == "tc").unwrap());
        let ocean = speedup_figure("f4", apps.iter().find(|a| a.id == "ocean").unwrap());
        let tc_max = tc.series[0].points.last().unwrap().1;
        let ocean_max = ocean.series[0].points.last().unwrap().1;
        assert!(
            tc_max > ocean_max,
            "TC speedup {tc_max} should beat ocean {ocean_max} on the Meiko"
        );
    }
}
