//! # otter-apps
//!
//! The four benchmark MATLAB applications of the paper's evaluation
//! (§5-6), parameterized so the test suite can run scaled-down
//! instances and the benchmark harness the paper-scale ones:
//!
//! 1. **Conjugate gradient** — solves a positive-definite system of
//!    2048 equations; "extensive use of matrix-vector multiplication
//!    and vector dot product".
//! 2. **Ocean engineering** — "evaluates the nonlinear wave excitation
//!    force on a submerged sphere using the Morrison equation";
//!    vector shifts, outer products, and `trapz2`.
//! 3. **N-body** — 5 000-particle simulation using `mean` and the
//!    run-time library's broadcast.
//! 4. **Transitive closure** — "computes the transitive closure of a
//!    matrix through repeated matrix multiplications".
//!
//! Each module produces a plain MATLAB script (compiler-subset only,
//! deterministic synthetic data — the paper's production inputs are
//! not available) plus the names of its result variables so the tests
//! can compare engines.

pub mod cg;
pub mod nbody;
pub mod ocean;
pub mod transitive;

/// A benchmark application instance: name, script text, and the
/// workspace variables that constitute its result.
#[derive(Debug, Clone)]
pub struct App {
    /// Display name as the paper's figures label it.
    pub name: &'static str,
    /// Short identifier for file names / bench IDs.
    pub id: &'static str,
    /// The MATLAB source.
    pub script: String,
    /// Variables to check/report at the end of the run.
    pub result_vars: Vec<&'static str>,
}

/// All four applications at paper scale (Figures 2–6).
pub fn paper_apps() -> Vec<App> {
    vec![
        cg::conjugate_gradient(cg::Params::paper()),
        ocean::ocean_engineering(ocean::Params::paper()),
        nbody::n_body(nbody::Params::paper()),
        transitive::transitive_closure(transitive::Params::paper()),
    ]
}

/// All four applications at test scale (seconds, not minutes).
pub fn test_apps() -> Vec<App> {
    vec![
        cg::conjugate_gradient(cg::Params::test()),
        ocean::ocean_engineering(ocean::Params::test()),
        nbody::n_body(nbody::Params::test()),
        transitive::transitive_closure(transitive::Params::test()),
    ]
}

/// All four applications at large scale — between test and paper:
/// big enough that kernel wall time dominates per-instruction
/// dispatch, small enough for a CI wall-time gate.
pub fn large_apps() -> Vec<App> {
    vec![
        cg::conjugate_gradient(cg::Params::large()),
        ocean::ocean_engineering(ocean::Params::large()),
        nbody::n_body(nbody::Params::large()),
        transitive::transitive_closure(transitive::Params::large()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_paper_apps_exist() {
        let apps = paper_apps();
        assert_eq!(apps.len(), 4);
        let names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        assert!(names.contains(&"Conjugate Gradient"));
        assert!(names.contains(&"Ocean Engineering"));
        assert!(names.contains(&"N-body Problem"));
        assert!(names.contains(&"Transitive Closure"));
    }

    #[test]
    fn scripts_are_semicolon_terminated() {
        // Display echo would flood benchmark output.
        for app in test_apps() {
            for line in app.script.lines() {
                let t = line.trim();
                if t.is_empty()
                    || t.starts_with('%')
                    || t == "end"
                    || t.starts_with("for ")
                    || t.starts_with("while ")
                    || t.starts_with("if ")
                    || t.starts_with("elseif ")
                    || t == "else"
                    || t == "break;"
                    || t == "continue;"
                {
                    continue;
                }
                assert!(t.ends_with(';'), "{}: unterminated line: {line}", app.id);
            }
        }
    }

    #[test]
    fn paper_scale_parameters() {
        let apps = paper_apps();
        let cg = apps.iter().find(|a| a.id == "cg").unwrap();
        assert!(
            cg.script.contains("n = 2048;"),
            "paper solves 2048 equations"
        );
        let nb = apps.iter().find(|a| a.id == "nbody").unwrap();
        assert!(
            nb.script.contains("n = 5000;"),
            "paper simulates 5000 particles"
        );
    }
}
