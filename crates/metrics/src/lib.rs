//! # otter-metrics
//!
//! Always-available, dependency-free performance metrics for the Otter
//! execution stack: labeled counters, high-water-mark gauges, and
//! log₂-bucketed histograms in a per-rank [`MetricsRegistry`] that
//! freezes into a [`MetricsSnapshot`] and merges deterministically
//! (counters add, gauges max, histograms add bucket-wise) into a
//! job-level view. Where `otter-trace` answers *what happened, when,
//! on one run*, this crate answers *how much, how often, how bad at
//! the tail* across ranks and repetitions.
//!
//! The workspace has no registry access, so the exposition layers are
//! hand-rolled too: [`Json`] is a minimal JSON tree + parser + writer
//! (snapshot serialization, bench baselines), and [`expo`] renders the
//! classic Prometheus text format.
//!
//! ```
//! use otter_metrics::{MetricsRegistry, MetricsSnapshot};
//!
//! // One registry per rank; no locks on the record path.
//! let mut rank0 = MetricsRegistry::new();
//! let mut rank1 = MetricsRegistry::new();
//! rank0.inc("messages_total", &[], 3);
//! rank1.inc("messages_total", &[], 4);
//! rank0.gauge_max("peak_bytes", &[], 1024.0);
//! rank1.gauge_max("peak_bytes", &[], 4096.0);
//! rank0.observe("send_seconds", &[("peer", "1")], 1.5e-4);
//!
//! // Merge is order-independent: counters add, gauges take the max.
//! let job = MetricsSnapshot::merged([&rank0.snapshot(), &rank1.snapshot()]);
//! assert_eq!(job.counter("messages_total", &[]), Some(7));
//! assert_eq!(job.gauge("peak_bytes", &[]), Some(4096.0));
//! ```

mod expo;
mod hist;
mod json;
mod registry;

pub use expo::expo;
pub use hist::{Histogram, BUCKETS};
pub use json::Json;
pub use registry::{MetricId, MetricKey, MetricValue, MetricsRegistry, MetricsSnapshot};
