//! Benchmark 4 — transitive closure (paper §5):
//! "computes the transitive closure of a matrix through repeated
//! matrix multiplications. It was chosen to test the speed of the
//! run-time library's implementation of matrix multiplication."
//!
//! §6: "The script computes the transitive closure of an n × n matrix
//! through log n matrix multiplications. The conventional sequential
//! matrix multiplication algorithm requires O(n³) floating-point
//! operations. Hence this script would seem to be a good candidate for
//! parallel execution" — and indeed it shows the paper's best speedup
//! (78× on 16 Meiko CPUs).
//!
//! The adjacency matrix is a deterministic sparse digraph: a ring plus
//! a few long chords, so the closure is total (every vertex reaches
//! every other) and the result is easy to validate.

use crate::App;

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Vertex count.
    pub n: usize,
}

impl Params {
    /// Paper-era scale (an n² matrix with "several hundred thousand
    /// elements or more").
    pub fn paper() -> Params {
        Params { n: 512 }
    }

    /// Test scale.
    pub fn test() -> Params {
        Params { n: 48 }
    }

    /// Large scale: matmul-bound (log₂ n squarings of an n × n
    /// matrix), sized so kernel time dominates dispatch overhead.
    pub fn large() -> Params {
        Params { n: 192 }
    }
}

/// Build the transitive-closure benchmark script.
pub fn transitive_closure(p: Params) -> App {
    let Params { n } = p;
    let script = format!(
        "\
% Transitive closure by repeated Boolean matrix squaring.
n = {n};
a = zeros(n, n);
for i = 1:n-1
  a(i, i + 1) = 1;
end
a(n, 1) = 1;
% A few chords make shorter paths without changing the closure.
a(1, floor(n / 2)) = 1;
a(floor(n / 3), n) = 1;
c = a + eye(n);
k = ceil(log2(n));
for it = 1:k
  c = c * c;
  c = c > 0;
end
reach = sum(sum(c));
diagstart = c(1, 1);
"
    );
    App {
        name: "Transitive Closure",
        id: "tc",
        script,
        result_vars: vec!["reach", "diagstart"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_closure_is_total() {
        let p = Params::test();
        let app = transitive_closure(p);
        let out = otter_interp::run_script(&app.script, None)
            .unwrap_or_else(|e| panic!("{e}\n{}", app.script));
        // The ring makes the graph strongly connected: n² reachable
        // pairs.
        let reach = out.scalar("reach").unwrap();
        assert_eq!(reach, (p.n * p.n) as f64);
        assert_eq!(out.scalar("diagstart"), Some(1.0));
    }

    #[test]
    fn squaring_count_is_logarithmic() {
        let app = transitive_closure(Params { n: 64 });
        assert!(app.script.contains("ceil(log2(n))"));
    }
}
