//! SPMD job launcher: builds the channel mesh and runs one closure per
//! rank on its own OS thread, collecting either every rank's result or
//! a structured per-rank failure report.

use crate::collectives::CollectiveAlgo;
use crate::comm::{Comm, Packet};
use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::state::JobState;
use otter_machine::Machine;
use otter_metrics::MetricsSnapshot;
use otter_trace::{NoopSink, TraceSink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;

/// What one rank produced: its return value, final virtual clock, and
/// communication counters.
#[derive(Debug, Clone)]
pub struct RankResult<R> {
    pub rank: usize,
    pub value: R,
    pub clock: f64,
    pub stats: crate::comm::CommStats,
    /// Frozen per-rank metric registry; `None` unless the job ran with
    /// [`SpmdOptions::metrics`] on.
    pub metrics: Option<MetricsSnapshot>,
}

/// Launch-time configuration for an SPMD job.
#[derive(Clone, Default)]
pub struct SpmdOptions {
    /// Schedule the un-suffixed collective methods use on every rank.
    pub algo: CollectiveAlgo,
    /// Event sink shared by every rank; `None` means tracing is off
    /// (ranks get a no-op sink and skip event construction entirely).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Give every rank its own metric registry, snapshotted into
    /// [`RankResult::metrics`] when the rank finishes. Off by default:
    /// the disabled path never constructs a registry or a key.
    pub metrics: bool,
    /// Deterministic fault-injection schedule; `None` (the default)
    /// costs one branch per comm op and perturbs nothing.
    pub faults: Option<FaultPlan>,
}

/// How one rank failed, with the partial state it had accumulated.
#[derive(Debug, Clone)]
pub struct RankFailure {
    pub rank: usize,
    pub error: CommError,
    /// Ranks that were blocked waiting on this rank when the job
    /// ended (the inverted wait-for snapshot: "who was stuck on the
    /// dead rank").
    pub blocked_peers: Vec<usize>,
    /// Virtual clock when the rank failed.
    pub clock: f64,
    /// Counters up to the failure point.
    pub stats: crate::comm::CommStats,
    /// Partial metric registry, when metrics were on.
    pub metrics: Option<MetricsSnapshot>,
}

/// The value-erased portion of a job failure: which ranks failed and
/// why. Engines propagate this upward without knowing the rank return
/// type.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Total ranks in the job.
    pub size: usize,
    /// Every failed rank, ordered by rank id.
    pub failures: Vec<RankFailure>,
    /// Ranks that completed the program.
    pub survivor_ranks: Vec<usize>,
}

impl FailureReport {
    /// The failed rank with the lowest id whose failure is primary
    /// (not a reaction to another rank's death), falling back to the
    /// first failure. "Primary" means anything that is not
    /// peer-terminated: a crash, a panic, a typed misuse, a deadlock.
    pub fn root_cause(&self) -> &RankFailure {
        self.failures
            .iter()
            .find(|f| !matches!(f.error, CommError::PeerTerminated { .. }))
            .unwrap_or(&self.failures[0])
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "SPMD job failed: {} of {} rank(s)",
            self.failures.len(),
            self.size
        )?;
        for rf in &self.failures {
            write!(f, "  rank {}: {}", rf.rank, rf.error)?;
            if !rf.blocked_peers.is_empty() {
                write!(f, " [blocked peers:")?;
                for p in &rf.blocked_peers {
                    write!(f, " {p}")?;
                }
                write!(f, "]")?;
            }
            writeln!(f)?;
        }
        write!(f, "  survivors: {:?}", self.survivor_ranks)
    }
}

/// A failed SPMD job: the report plus everything the surviving ranks
/// produced (full results, stats, and metrics — traces live in the
/// caller's sink and are already complete up to the failure).
#[derive(Debug)]
pub struct JobFailure<R> {
    pub report: FailureReport,
    /// Results of the ranks that completed the program, ordered by
    /// rank id.
    pub survivors: Vec<RankResult<R>>,
}

impl<R> std::fmt::Display for JobFailure<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.report.fmt(f)
    }
}

impl<R: std::fmt::Debug> std::error::Error for JobFailure<R> {}

/// What a launched job yields: every rank's result, or the failure
/// report with the survivors' partial output.
pub type JobResult<R> = Result<Vec<RankResult<R>>, JobFailure<R>>;

/// Run `body` on `p` ranks over the given machine model with default
/// options (tree collectives, no tracing, no faults); results ordered
/// by rank.
///
/// The modeled parallel execution time of the job is the maximum final
/// clock over ranks — loosely synchronous SPMD programs end when their
/// slowest rank does.
///
/// Any rank failure (a returned [`CommError`] or a panic in `body`)
/// aborts the whole job with a panic carrying the formatted
/// [`FailureReport`], matching `MPI_Abort` semantics closely enough
/// for test purposes. Callers that want the report as data use
/// [`run_spmd_with`].
pub fn run_spmd<R, F>(machine: &Machine, p: usize, body: F) -> Vec<RankResult<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> Result<R, CommError> + Sync,
{
    match run_spmd_with(machine, p, SpmdOptions::default(), body) {
        Ok(results) => results,
        Err(failure) => panic!("{}", failure.report),
    }
}

/// One rank's raw outcome, before job-level assembly.
enum RankOutcome<R> {
    Ok(RankResult<R>),
    Failed(RankFailure),
}

/// Run one rank to completion: the body's panics are caught at this
/// boundary and converted into [`CommError::Panicked`], and the
/// rank's final state is published to the wait-for registry before
/// its channel endpoints drop.
fn run_rank<R, F>(mut comm: Comm, body: &F) -> RankOutcome<R>
where
    F: Fn(&mut Comm) -> Result<R, CommError>,
{
    let rank = comm.rank();
    let job = Arc::clone(comm.job());
    let result = match catch_unwind(AssertUnwindSafe(|| body(&mut comm))) {
        Ok(r) => r,
        Err(payload) => Err(CommError::Panicked {
            rank,
            message: panic_message(payload),
        }),
    };
    job.set_done(rank, result.is_ok());
    let clock = comm.clock();
    let stats = comm.stats();
    let metrics = comm.take_metrics().map(|r| r.snapshot());
    match result {
        Ok(value) => RankOutcome::Ok(RankResult {
            rank,
            value,
            clock,
            stats,
            metrics,
        }),
        Err(error) => RankOutcome::Failed(RankFailure {
            rank,
            error,
            blocked_peers: Vec::new(), // filled in at job assembly
            clock,
            stats,
            metrics,
        }),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_spmd`] with explicit [`SpmdOptions`], returning failures as
/// data instead of panicking: the [`JobFailure`] names every failed
/// rank, why it failed, and which peers were blocked on it, alongside
/// the surviving ranks' complete results.
pub fn run_spmd_with<R, F>(machine: &Machine, p: usize, opts: SpmdOptions, body: F) -> JobResult<R>
where
    R: Send,
    F: Fn(&mut Comm) -> Result<R, CommError> + Sync,
{
    assert!(p >= 1, "need at least one rank");
    assert!(
        p <= machine.max_cpus,
        "{} has only {} CPUs, requested {p}",
        machine.name,
        machine.max_cpus
    );
    let machine = Arc::new(machine.clone());
    let sink: Arc<dyn TraceSink> = opts.trace.clone().unwrap_or_else(|| Arc::new(NoopSink));
    let job = Arc::new(JobState::new(p));

    // Build the p×p channel mesh: edges[s][d] connects rank s to rank d.
    let mut senders: Vec<Vec<Option<mpsc::Sender<Packet>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<mpsc::Receiver<Packet>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for s in 0..p {
        for d in 0..p {
            let (tx, rx) = mpsc::channel();
            senders[s][d] = Some(tx);
            receivers[d][s] = Some(rx);
        }
    }

    // Hand each rank its endpoints.
    let mut comms: Vec<Comm> = Vec::with_capacity(p);
    for (r, (srow, rrow)) in senders.into_iter().zip(receivers).enumerate() {
        let tx: Vec<_> = srow.into_iter().map(Option::unwrap).collect();
        let rx: Vec<_> = rrow.into_iter().map(Option::unwrap).collect();
        comms.push(Comm::new(
            r,
            p,
            Arc::clone(&machine),
            tx,
            rx,
            &opts,
            Arc::clone(&sink),
            Arc::clone(&job),
        ));
    }

    let body = &body;
    let outcomes: Vec<RankOutcome<R>> = if p == 1 {
        // Single rank: run inline, no thread overhead.
        vec![run_rank(comms.pop().unwrap(), body)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(move || run_rank(comm, body)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panics are caught inside run_rank"))
                .collect()
        })
    };

    let mut results: Vec<RankResult<R>> = Vec::new();
    let mut failures: Vec<RankFailure> = Vec::new();
    for o in outcomes {
        match o {
            RankOutcome::Ok(r) => results.push(r),
            RankOutcome::Failed(f) => failures.push(f),
        }
    }
    results.sort_by_key(|r| r.rank);
    if failures.is_empty() {
        return Ok(results);
    }

    // Invert the wait-for edges: each failed rank learns which peers
    // were blocked on it when the job ended.
    failures.sort_by_key(|f| f.rank);
    let waiting_edges: Vec<(usize, usize)> = failures
        .iter()
        .filter_map(|f| f.error.waiting_on().map(|on| (f.rank, on)))
        .collect();
    for f in &mut failures {
        f.blocked_peers = waiting_edges
            .iter()
            .filter(|&&(_, on)| on == f.rank)
            .map(|&(waiter, _)| waiter)
            .collect();
    }
    Err(JobFailure {
        report: FailureReport {
            size: p,
            failures,
            survivor_ranks: results.iter().map(|r| r.rank).collect(),
        },
        survivors: results,
    })
}

/// The modeled parallel runtime of a finished job: max final clock.
pub fn job_time<R>(results: &[RankResult<R>]) -> f64 {
    results.iter().map(|r| r.clock).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReduceOp;
    use otter_machine::meiko_cs2;
    use otter_trace::{critical_path, timelines, MemorySink};

    #[test]
    fn ranks_are_ordered_and_complete() {
        let res = run_spmd(&meiko_cs2(), 8, |c| Ok(c.rank() * 10));
        assert_eq!(res.len(), 8);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(r.rank, i);
            assert_eq!(r.value, i * 10);
        }
    }

    #[test]
    fn single_rank_runs_inline() {
        let res = run_spmd(&meiko_cs2(), 1, |c| {
            assert_eq!(c.size(), 1);
            Ok("done")
        });
        assert_eq!(res[0].value, "done");
    }

    #[test]
    #[should_panic(expected = "has only")]
    fn too_many_ranks_rejected() {
        run_spmd(&meiko_cs2(), 17, |_| Ok(()));
    }

    #[test]
    fn job_time_is_max_clock() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            c.compute((c.rank() as f64 + 1.0) * 1e6);
            Ok(())
        });
        let t = job_time(&res);
        assert!((t - res[3].clock).abs() < 1e-15);
        assert!(t > res[0].clock);
    }

    #[test]
    fn traced_job_critical_path_matches_job_time() {
        let sink = Arc::new(MemorySink::new());
        let opts = SpmdOptions {
            trace: Some(sink.clone() as Arc<dyn TraceSink>),
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), 4, opts, |c| {
            c.compute((c.rank() as f64 + 1.0) * 1e6);
            c.allreduce_scalar(1.0, crate::ReduceOp::Sum)
        })
        .unwrap();
        let events = sink.snapshot().unwrap();
        let cp = critical_path(&events);
        let t = job_time(&res);
        assert!((cp.total - t).abs() < 1e-12, "cp={} job={t}", cp.total);
        // The chain decomposes into compute + transfer time exactly.
        assert!((cp.compute + cp.comm - cp.total).abs() < 1e-9);
        // Every rank's timeline tiles its clock.
        for tl in timelines(&events) {
            let r = &res[tl.rank];
            assert!(
                (tl.compute + tl.comm + tl.idle - r.clock).abs() < 1e-9,
                "rank {}",
                tl.rank
            );
        }
    }

    #[test]
    fn deadlock_cycle_is_diagnosed_fast_with_both_edges() {
        // Ranks 0 and 1 each wait for the other: a classic 2-cycle.
        let t0 = std::time::Instant::now();
        let res = run_spmd_with(&meiko_cs2(), 2, SpmdOptions::default(), |c| {
            let peer = 1 - c.rank();
            let v = c.recv(peer)?; // nobody ever sends
            c.send(peer, &v)?;
            Ok(())
        });
        let failure = res.unwrap_err();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "diagnosis must come from the wait-for graph, not a 60s timeout"
        );
        assert_eq!(failure.report.failures.len(), 2);
        assert!(failure.report.survivor_ranks.is_empty());
        for f in &failure.report.failures {
            let peer = 1 - f.rank;
            assert_eq!(f.error.code(), "deadlock", "{}", f.error);
            assert_eq!(f.error.waiting_on(), Some(peer));
            // Each rank's report names the peer that was stuck on it.
            assert_eq!(f.blocked_peers, vec![peer]);
            match &f.error {
                CommError::Deadlock { cycle, .. } => {
                    assert_eq!(cycle.len(), 2);
                    assert_eq!(cycle[0].waiter, 0, "cycle is canonicalized");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn crash_at_p8_names_dead_rank_and_blocked_peers() {
        // The acceptance scenario: rank 3 is killed by the fault plan
        // at its first comm op. Ranks 2 and 4 are blocked on it; ranks
        // 5..8 never talk to it and survive with their stats intact.
        let opts = SpmdOptions {
            metrics: true,
            faults: Some(FaultPlan::new().crash(3, 1)),
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), 8, opts, |c| {
            match c.rank() {
                2 => {
                    c.send(3, &[2.0])?;
                    c.recv(3)?;
                }
                4 => {
                    c.recv(3)?;
                }
                3 => {
                    let v = c.recv(2)?;
                    c.send(2, &v)?;
                    c.send(4, &[3.0])?;
                }
                0 | 1 => {
                    // An independent pair that completes normally.
                    let peer = 1 - c.rank();
                    if c.rank() == 0 {
                        c.send(peer, &[0.5])?;
                    } else {
                        c.recv(peer)?;
                    }
                }
                _ => c.compute(1e6),
            }
            Ok(c.rank())
        });
        let failure = res.unwrap_err();
        let report = &failure.report;
        assert_eq!(report.size, 8);
        // Rank 3 died by injection; 2 and 4 report the dead peer.
        let failed: Vec<usize> = report.failures.iter().map(|f| f.rank).collect();
        assert_eq!(failed, vec![2, 3, 4]);
        let f3 = report.failures.iter().find(|f| f.rank == 3).unwrap();
        assert_eq!(f3.error.code(), "injected_crash");
        assert_eq!(f3.blocked_peers, vec![2, 4], "peers blocked on rank 3");
        assert_eq!(report.root_cause().rank, 3);
        for r in [2usize, 4] {
            let f = report.failures.iter().find(|f| f.rank == r).unwrap();
            assert_eq!(f.error.code(), "peer_terminated");
            assert_eq!(f.error.waiting_on(), Some(3));
        }
        // Survivors kept complete results, stats, and metrics.
        assert_eq!(report.survivor_ranks, vec![0, 1, 5, 6, 7]);
        assert_eq!(failure.survivors.len(), 5);
        let s0 = failure.survivors.iter().find(|r| r.rank == 0).unwrap();
        assert_eq!(s0.stats.messages_sent, 1);
        assert!(s0.metrics.is_some(), "partial metrics intact");
        let s5 = failure.survivors.iter().find(|r| r.rank == 5).unwrap();
        assert!(s5.stats.compute_time > 0.0);
        // The formatted report names everything CI greps for.
        let text = report.to_string();
        assert!(text.contains("rank 3 crashed by fault plan"), "{text}");
        assert!(text.contains("[blocked peers: 2 4]"), "{text}");
        assert!(text.contains("survivors: [0, 1, 5, 6, 7]"), "{text}");
    }

    #[test]
    fn dropped_message_becomes_a_diagnosed_deadlock() {
        // Rank 0's first message to rank 1 is dropped; rank 1 then
        // waits for a packet that never comes while rank 0 waits for
        // the reply — a 2-cycle the detector must find.
        let opts = SpmdOptions {
            faults: Some(FaultPlan::new().drop_message(0, 1, 0)),
            ..SpmdOptions::default()
        };
        let t0 = std::time::Instant::now();
        let res = run_spmd_with(&meiko_cs2(), 2, opts, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0])?;
                c.recv(1)?;
            } else {
                let v = c.recv(0)?;
                c.send(0, &v)?;
            }
            Ok(())
        });
        let failure = res.unwrap_err();
        assert!(t0.elapsed() < std::time::Duration::from_secs(10));
        for f in &failure.report.failures {
            assert_eq!(f.error.code(), "deadlock", "{}", f.error);
        }
        // The sender was charged for the dropped message.
        let f0 = &failure.report.failures[0];
        assert_eq!(f0.stats.messages_sent, 1);
    }

    #[test]
    fn delayed_message_shifts_virtual_time_only() {
        let run = |delay: Option<f64>| {
            let opts = SpmdOptions {
                faults: delay.map(|s| FaultPlan::new().delay_message(0, 1, 0, s)),
                ..SpmdOptions::default()
            };
            run_spmd_with(&meiko_cs2(), 2, opts, |c| {
                if c.rank() == 0 {
                    c.send(1, &[1.0])?;
                } else {
                    c.recv(0)?;
                }
                Ok(c.clock())
            })
            .unwrap()
        };
        let base = run(None);
        let delayed = run(Some(2.5));
        assert_eq!(base[0].value, delayed[0].value, "sender unaffected");
        let got = delayed[1].value - base[1].value;
        assert!((got - 2.5).abs() < 1e-12, "receiver delayed by 2.5s: {got}");
    }

    #[test]
    fn no_fault_plan_is_byte_identical() {
        let run = |opts: SpmdOptions| {
            run_spmd_with(&meiko_cs2(), 4, opts, |c| {
                c.compute(1e5);
                let s = c.allreduce_scalar(c.rank() as f64, ReduceOp::Sum)?;
                Ok((s, c.clock().to_bits()))
            })
            .unwrap()
            .iter()
            .map(|r| (r.value.0.to_bits(), r.value.1))
            .collect::<Vec<_>>()
        };
        // An empty plan (present but no actions) must match no plan.
        let without = run(SpmdOptions::default());
        let with_empty = run(SpmdOptions {
            faults: Some(FaultPlan::new()),
            ..SpmdOptions::default()
        });
        assert_eq!(without, with_empty);
    }

    #[test]
    fn body_panic_is_captured_not_propagated() {
        let res = run_spmd_with(&meiko_cs2(), 4, SpmdOptions::default(), |c| {
            if c.rank() == 2 {
                panic!("injected panic on rank 2");
            }
            c.allreduce_scalar(1.0, ReduceOp::Sum)
        });
        let failure = res.unwrap_err();
        let f2 = failure
            .report
            .failures
            .iter()
            .find(|f| f.rank == 2)
            .unwrap();
        assert_eq!(f2.error.code(), "panicked");
        assert!(
            f2.error.to_string().contains("injected panic"),
            "{}",
            f2.error
        );
        // Everyone else was blocked on the collective and reports the
        // dead peer rather than panicking themselves.
        for f in failure.report.failures.iter().filter(|f| f.rank != 2) {
            assert!(
                matches!(f.error.code(), "peer_terminated" | "deadlock"),
                "rank {}: {}",
                f.rank,
                f.error
            );
        }
    }

    #[test]
    fn seeded_fault_plans_reproduce_identical_reports() {
        let run = |seed: u64| {
            let opts = SpmdOptions {
                faults: Some(FaultPlan::seeded(seed, 4)),
                ..SpmdOptions::default()
            };
            run_spmd_with(&meiko_cs2(), 4, opts, |c| {
                let s = c.allreduce_scalar(1.0, ReduceOp::Sum)?;
                c.barrier()?;
                Ok(s)
            })
        };
        for seed in [0u64, 2, 4] {
            let a = run(seed);
            let b = run(seed);
            match (a, b) {
                (Err(fa), Err(fb)) => {
                    assert_eq!(fa.report.to_string(), fb.report.to_string(), "seed {seed}");
                }
                (Ok(_), Ok(_)) => {} // fault site past the program's op count
                _ => panic!("seed {seed}: runs disagreed on success"),
            }
        }
    }
}
