//! Randomised (deterministic, seeded) tests for the SSA/web-renaming
//! pass and inference: invariants over generated
//! straight-line-with-control-flow programs.

use otter_analysis::{infer, resolve, ssa_rename, InferOptions};
use otter_det::DetRng;
use otter_frontend::{parse, EmptyProvider, Program};

const VARS: [&str; 4] = ["w", "x", "y", "z"];

/// One random statement (textual generation keeps the generator
/// simple and guarantees parseability).
#[derive(Debug, Clone)]
struct GenStmt {
    kind: u8,
    a: u8,
    b: u8,
}

fn gen_stmts(rng: &mut DetRng, max_len: usize) -> Vec<GenStmt> {
    let len = rng.gen_index(max_len + 1);
    (0..len)
        .map(|_| GenStmt {
            kind: rng.gen_index(256) as u8,
            a: rng.gen_index(256) as u8,
            b: rng.gen_index(256) as u8,
        })
        .collect()
}

fn var(x: u8) -> &'static str {
    VARS[x as usize % VARS.len()]
}

/// Render a statement list as a script. Every use is preceded by a
/// definition (the prologue assigns all four variables) so inference
/// stays happy.
fn render(stmts: &[GenStmt]) -> String {
    let mut out = String::from("w = 1;\nx = 2;\ny = 3.5;\nz = 4;\n");
    let mut depth: usize = 0;
    for s in stmts {
        match s.kind % 8 {
            0..=2 => {
                // Plain scalar reassignment (creates SSA versions).
                out.push_str(&format!("{} = {} + {};\n", var(s.a), var(s.b), s.kind % 9));
            }
            3 => {
                out.push_str(&format!("{} = {} * 2 - 1;\n", var(s.a), var(s.a)));
            }
            4 if depth < 2 => {
                out.push_str(&format!(
                    "if {} > 0\n{} = {} + 1;\nelse\n{} = 0;\nend\n",
                    var(s.b),
                    var(s.a),
                    var(s.a),
                    var(s.a)
                ));
            }
            5 if depth < 2 => {
                out.push_str(&format!(
                    "for k{} = 1:3\n{} = {} + 1;\nend\n",
                    s.b % 3,
                    var(s.a),
                    var(s.a)
                ));
            }
            6 => {
                // Rank change in straight line: scalar → vector.
                out.push_str(&format!(
                    "{} = [1, 2, {}];\n{} = 0;\n",
                    var(s.a),
                    s.b % 7,
                    var(s.a)
                ));
            }
            _ => {
                out.push_str(&format!("{} = abs({});\n", var(s.a), var(s.b)));
            }
        }
        let _ = &mut depth;
    }
    out
}

/// SSA renaming always yields a parseable program whose webs map back
/// to their base variables, and web count never exceeds version count.
#[test]
fn ssa_invariants() {
    let mut rng = DetRng::seed_from_u64(0x55A0_0001);
    for case in 0..96 {
        let stmts = gen_stmts(&mut rng, 20);
        let src = render(&stmts);
        let resolved =
            resolve(&src, &EmptyProvider).unwrap_or_else(|e| panic!("resolve: {e}\n{src}"));
        let info = ssa_rename(&resolved.program.script, &[]);
        // Webs ≤ versions for every variable.
        for (name, webs) in &info.webs_per_var {
            let versions = info.versions_per_var[name];
            assert!(
                webs.len() <= versions,
                "case {case} {name}: {} webs > {versions} versions",
                webs.len()
            );
            // First web keeps the base name; later webs are suffixed.
            assert_eq!(&webs[0], name);
            for (i, w) in webs.iter().enumerate().skip(1) {
                assert_eq!(w, &format!("{name}__{i}"));
            }
        }
        // base_of is consistent.
        for (web, base) in &info.base_of {
            assert!(info.webs_per_var[base].contains(web));
        }
        // The renamed program re-parses (names are valid identifiers).
        let printed = otter_frontend::pretty::program_to_string(&Program {
            script: info.block.clone(),
            functions: vec![],
        });
        assert!(
            parse(&printed).is_ok(),
            "unparseable rename output:\n{printed}"
        );
    }
}

/// Inference on generated programs either succeeds or fails with a
/// diagnostic — never panics — and on success every used variable has
/// a non-bottom rank.
#[test]
fn inference_total_and_grounded() {
    let mut rng = DetRng::seed_from_u64(0x55A0_0002);
    for _ in 0..96 {
        let stmts = gen_stmts(&mut rng, 20);
        let src = render(&stmts);
        let resolved =
            resolve(&src, &EmptyProvider).unwrap_or_else(|e| panic!("resolve: {e}\n{src}"));
        let mut program = resolved.program;
        let info = ssa_rename(&program.script, &[]);
        program.script = info.block;
        match infer(&program, InferOptions::default()) {
            Ok(inf) => {
                for (name, ty) in &inf.script_vars {
                    assert!(
                        ty.rank != otter_analysis::RankTy::Bottom,
                        "{name} stayed bottom\n{src}"
                    );
                }
            }
            Err(_e) => {
                // Rank conflicts across control flow are legal outcomes
                // for generated programs; the property is "no panic".
            }
        }
    }
}

/// SSA renaming is idempotent: renaming an already-renamed program
/// creates no new webs.
#[test]
fn ssa_idempotent() {
    let mut rng = DetRng::seed_from_u64(0x55A0_0003);
    for _ in 0..96 {
        let stmts = gen_stmts(&mut rng, 16);
        let src = render(&stmts);
        let resolved = resolve(&src, &EmptyProvider).unwrap();
        let once = ssa_rename(&resolved.program.script, &[]);
        let twice = ssa_rename(&once.block, &[]);
        for (name, webs) in &twice.webs_per_var {
            assert_eq!(webs.len(), 1, "renaming twice split `{name}` again:\n{src}");
        }
    }
}
