//! Domain example: the ocean-engineering workload (paper §5's second
//! benchmark) as an engineer would use it — compute the Morrison-
//! equation wave force on a submerged sphere and report the
//! engineering quantities, comparing interpreted and compiled-parallel
//! execution.
//!
//! ```text
//! cargo run --release --example wave_force
//! ```

use otter_apps::ocean;
use otter_core::{compile, run, run_engine, EngineOptions, InterpreterEngine, RunRequest};
use otter_machine::{meiko_cs2, workstation};

fn main() {
    let app = ocean::ocean_engineering(ocean::Params { nt: 4096, nz: 32 });

    // Engineers debug in the interpreter first (the workflow the
    // paper's introduction describes)...
    let interp = run_engine(
        &mut InterpreterEngine::new(EngineOptions::default()),
        &app.script,
        &workstation(),
        1,
    )
    .expect("interpreter run");

    // ...then compile the same script, unchanged, for the parallel
    // machine.
    let artifact = compile(&app.script, &EngineOptions::default()).expect("ocean script compiles");
    let parallel = run(&artifact, &RunRequest::on(meiko_cs2(), 16)).expect("p=16 run");

    println!("Morrison-equation wave force on a submerged sphere");
    println!("(4096 time samples, 32 depth samples)\n");
    println!(
        "{:<28} {:>16} {:>16}",
        "quantity", "interpreter", "Otter, 16 CPUs"
    );
    println!("{}", "-".repeat(62));
    for (label, var) in [
        ("net impulse [N·s]", "impulse"),
        ("peak force [N]", "fpeak"),
        ("RMS force [N]", "frms"),
        ("field energy [J-ish]", "energy"),
    ] {
        println!(
            "{label:<28} {:>16.4} {:>16.4}",
            interp.scalar(var).unwrap(),
            parallel.scalar(var).unwrap()
        );
    }
    println!();
    println!(
        "modeled time: interpreter {:.4} s  vs  compiled on 16 CPUs {:.4} s ({:.1}x)",
        interp.modeled_seconds,
        parallel.modeled_seconds,
        interp.modeled_seconds / parallel.modeled_seconds
    );
    println!();
    println!("The numbers agree to rounding: the compiler preserved the");
    println!("script's semantics while distributing every vector across the");
    println!("machine (paper §4's row-contiguous/block distribution).");
}
