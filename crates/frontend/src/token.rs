//! Token definitions for the MATLAB subset Otter accepts.
//!
//! The paper (§3) builds its scanner with `lex`; we use a hand-written
//! scanner but accept the same surface syntax, with the paper's one
//! documented restriction: matrix-literal elements must be separated by
//! commas, not bare whitespace.

use crate::span::Span;
use std::fmt;

/// A lexical token together with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// The kinds of token the scanner produces.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal. MATLAB has only doubles at the surface level;
    /// whether a literal is *integer-valued* matters to type inference,
    /// so we preserve that flag.
    Number {
        value: f64,
        is_int: bool,
    },
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Identifier or (contextually) a keyword candidate.
    Ident(String),

    // Keywords.
    If,
    ElseIf,
    Else,
    End,
    While,
    For,
    Function,
    Return,
    Break,
    Continue,
    Global,

    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Backslash,
    Caret,
    DotStar,
    DotSlash,
    DotBackslash,
    DotCaret,
    /// `'` — complex-conjugate transpose (context-disambiguated from strings).
    Transpose,
    /// `.'` — plain transpose.
    DotTranspose,
    Eq,
    EqEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Amp,
    Pipe,
    Not,
    Colon,

    // Delimiters.
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    /// Statement-terminating newline (significant in MATLAB).
    Newline,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// True for tokens after which a `'` means *transpose* rather than
    /// the start of a string literal. This is the classic MATLAB lexer
    /// hack: `a'` transposes but `x = 'a'` is a string.
    pub fn allows_postfix_quote(&self) -> bool {
        matches!(
            self,
            TokenKind::Ident(_)
                | TokenKind::Number { .. }
                | TokenKind::RParen
                | TokenKind::RBracket
                | TokenKind::Transpose
                | TokenKind::DotTranspose
                | TokenKind::End
                | TokenKind::Str(_)
        )
    }

    /// Keyword lookup; returns `None` for plain identifiers.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "if" => TokenKind::If,
            "elseif" => TokenKind::ElseIf,
            "else" => TokenKind::Else,
            "end" => TokenKind::End,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "function" => TokenKind::Function,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "global" => TokenKind::Global,
            _ => return None,
        })
    }

    /// Short name used in error messages ("expected X, found Y").
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Number { value, .. } => format!("number `{value}`"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::If => "`if`".into(),
            TokenKind::ElseIf => "`elseif`".into(),
            TokenKind::Else => "`else`".into(),
            TokenKind::End => "`end`".into(),
            TokenKind::While => "`while`".into(),
            TokenKind::For => "`for`".into(),
            TokenKind::Function => "`function`".into(),
            TokenKind::Return => "`return`".into(),
            TokenKind::Break => "`break`".into(),
            TokenKind::Continue => "`continue`".into(),
            TokenKind::Global => "`global`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Backslash => "`\\`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::DotStar => "`.*`".into(),
            TokenKind::DotSlash => "`./`".into(),
            TokenKind::DotBackslash => "`.\\`".into(),
            TokenKind::DotCaret => "`.^`".into(),
            TokenKind::Transpose => "`'`".into(),
            TokenKind::DotTranspose => "`.'`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`~=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::LtEq => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::GtEq => "`>=`".into(),
            TokenKind::Amp => "`&`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::Not => "`~`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Newline => "end of line".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::While));
        assert_eq!(TokenKind::keyword("elseif"), Some(TokenKind::ElseIf));
        assert_eq!(TokenKind::keyword("whileX"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn postfix_quote_context() {
        assert!(TokenKind::Ident("a".into()).allows_postfix_quote());
        assert!(TokenKind::RParen.allows_postfix_quote());
        assert!(TokenKind::Number {
            value: 1.0,
            is_int: true
        }
        .allows_postfix_quote());
        assert!(!TokenKind::Eq.allows_postfix_quote());
        assert!(!TokenKind::LParen.allows_postfix_quote());
        assert!(!TokenKind::Comma.allows_postfix_quote());
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TokenKind::DotStar.describe(), "`.*`");
        assert_eq!(
            TokenKind::Ident("foo".into()).describe(),
            "identifier `foo`"
        );
    }
}
