//! The daemon: a Unix-socket accept loop over the artifact cache, the
//! job gate, and the metrics registry, plus a minimal HTTP listener
//! for Prometheus scrapes.
//!
//! One thread per connection; a connection is a session of
//! newline-delimited `otter-serve/v1` requests. Compiles go through
//! the shared [`ArtifactCache`] (so concurrent sessions warm each
//! other), runs are admitted onto the worker budget through a
//! [`JobGate`] (so ten simultaneous jobs share the host instead of
//! each claiming full parallelism), and every job updates the
//! `serve_*` metric families. The stats endpoint speaks plain HTTP
//! GET → Prometheus text exposition, so `curl` works against it.

use crate::cache::ArtifactCache;
use crate::proto::{err_response, machine_by_name, ok_response, Request, SERVE_SCHEMA};
use otter_core::{try_run, RunRequest};
use otter_metrics::{expo, Json, MetricsRegistry, MetricsSnapshot};
use otter_mpi::JobGate;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the Unix-domain job socket (created at bind, removed at
    /// shutdown).
    pub socket: PathBuf,
    /// Worker budget shared by all concurrent jobs (the [`JobGate`]
    /// total). Defaults to host parallelism.
    pub workers: usize,
    /// Artifact-cache capacity (entries).
    pub cache_capacity: usize,
    /// TCP address for the Prometheus stats endpoint, e.g.
    /// `127.0.0.1:9464`; `None` disables HTTP.
    pub metrics_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: std::env::temp_dir().join(format!("otterd-{}.sock", std::process::id())),
            workers: otter_mpi::default_workers(),
            cache_capacity: 64,
            metrics_addr: None,
        }
    }
}

impl ServeConfig {
    /// Parse `--socket PATH --workers W --cache N --metrics-addr A`
    /// (shared by `otterd` and `harness serve`). Unknown flags are a
    /// typed error, not silently ignored.
    pub fn from_args(args: &[String]) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("`{flag}` needs a value"))
            };
            match a.as_str() {
                "--socket" => cfg.socket = PathBuf::from(value("--socket")?),
                "--workers" => {
                    cfg.workers = value("--workers")?
                        .parse()
                        .ok()
                        .filter(|&w: &usize| w >= 1)
                        .ok_or("`--workers` must be a positive integer")?;
                }
                "--cache" => {
                    cfg.cache_capacity = value("--cache")?
                        .parse()
                        .ok()
                        .filter(|&c: &usize| c >= 1)
                        .ok_or("`--cache` must be a positive integer")?;
                }
                "--metrics-addr" => cfg.metrics_addr = Some(value("--metrics-addr")?),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// Shared daemon state: everything a connection thread touches.
struct ServerState {
    cache: Mutex<ArtifactCache>,
    gate: JobGate,
    /// `serve_*` families (cache traffic, latencies, job counts).
    metrics: Mutex<MetricsRegistry>,
    /// Merged per-job engine metrics (only jobs that asked for them).
    job_metrics: Mutex<MetricsSnapshot>,
    stop: AtomicBool,
}

impl ServerState {
    /// The full exposition: `serve_*` families plus cache gauges plus
    /// any merged job metrics.
    fn exposition(&self) -> String {
        let mut snap = self.metrics.lock().unwrap().snapshot();
        {
            let cache = self.cache.lock().unwrap();
            let mut reg = MetricsRegistry::new();
            reg.inc("serve_cache_hits_total", &[], cache.hits());
            reg.inc("serve_cache_misses_total", &[], cache.misses());
            reg.inc("serve_cache_evictions_total", &[], cache.evictions());
            reg.gauge_max("serve_cache_entries", &[], cache.len() as f64);
            reg.gauge_max("serve_workers_total", &[], self.gate.total() as f64);
            snap.merge_from(&reg.snapshot());
        }
        snap.merge_from(&self.job_metrics.lock().unwrap());
        expo(&snap)
    }
}

/// A handle for stopping a running server (from a signal handler's
/// flag, a test, or the `shutdown` op itself).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Ask the accept loop to wind down; `Server::run` returns soon
    /// after.
    pub fn request_stop(&self) {
        self.state.stop.store(true, Ordering::SeqCst);
    }

    /// True once a stop was requested.
    pub fn stopping(&self) -> bool {
        self.state.stop.load(Ordering::SeqCst)
    }
}

/// A bound (but not yet running) daemon.
pub struct Server {
    cfg: ServeConfig,
    listener: UnixListener,
    http: Option<std::net::TcpListener>,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind the job socket (replacing a stale socket file) and the
    /// optional HTTP stats listener.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        if cfg.socket.exists() {
            std::fs::remove_file(&cfg.socket)?;
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        let http = match &cfg.metrics_addr {
            Some(addr) => {
                let l = std::net::TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let state = Arc::new(ServerState {
            cache: Mutex::new(ArtifactCache::new(cfg.cache_capacity)),
            gate: JobGate::new(cfg.workers),
            metrics: Mutex::new(MetricsRegistry::new()),
            job_metrics: Mutex::new(MetricsSnapshot::default()),
            stop: AtomicBool::new(false),
        });
        Ok(Server {
            cfg,
            listener,
            http,
            state,
        })
    }

    /// The bound HTTP stats address (useful when the config asked for
    /// port 0).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The job socket path.
    pub fn socket(&self) -> &PathBuf {
        &self.cfg.socket
    }

    /// A stop handle (clone freely; see [`ServerHandle`]).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Accept connections until a stop is requested, then remove the
    /// socket file and return. Connection threads run detached; the
    /// protocol is request/response, so in-flight jobs finish their
    /// write before noticing the closed listener.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            if self.state.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut idle = true;
            match self.listener.accept() {
                Ok((stream, _)) => {
                    idle = false;
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || handle_connection(stream, &state));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(e),
            }
            if let Some(http) = &self.http {
                match http.accept() {
                    Ok((stream, _)) => {
                        idle = false;
                        let state = Arc::clone(&self.state);
                        std::thread::spawn(move || handle_http(stream, &state));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
            }
            if idle {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let _ = std::fs::remove_file(&self.cfg.socket);
        Ok(())
    }
}

/// One job-socket session: lines in, lines out.
fn handle_connection(stream: UnixStream, state: &Arc<ServerState>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Json::parse(&line).map_err(|e| format!("bad JSON: {e}")) {
            Err(e) => err_response(e),
            Ok(json) => match Request::from_json(&json) {
                Err(e) => err_response(e),
                Ok(req) => dispatch(&req, state),
            },
        };
        let mut text = response.to_string();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Execute one request against the shared state.
fn dispatch(req: &Request, state: &Arc<ServerState>) -> Json {
    let job_started = Instant::now();
    state
        .metrics
        .lock()
        .unwrap()
        .inc("serve_jobs_total", &[("op", req.op())], 1);
    let response = match req {
        Request::Ping => ok_response(vec![]),
        Request::Shutdown => {
            state.stop.store(true, Ordering::SeqCst);
            ok_response(vec![("stopping".to_string(), Json::Bool(true))])
        }
        Request::Metrics => ok_response(vec![("text".to_string(), Json::Str(state.exposition()))]),
        Request::Stats => {
            let cache = state.cache.lock().unwrap();
            ok_response(vec![
                ("cache_entries".to_string(), Json::Num(cache.len() as f64)),
                ("cache_hits".to_string(), Json::Num(cache.hits() as f64)),
                ("cache_misses".to_string(), Json::Num(cache.misses() as f64)),
                (
                    "cache_evictions".to_string(),
                    Json::Num(cache.evictions() as f64),
                ),
                (
                    "workers_total".to_string(),
                    Json::Num(state.gate.total() as f64),
                ),
                (
                    "workers_available".to_string(),
                    Json::Num(state.gate.available() as f64),
                ),
            ])
        }
        Request::Compile { source, options } => match compile_cached(state, source, options) {
            Err(e) => err_response(e),
            Ok((artifact, fields)) => {
                let mut fields = fields;
                fields.push((
                    "ir_instrs".to_string(),
                    Json::Num(artifact.compiled().ir.instr_count() as f64),
                ));
                ok_response(fields)
            }
        },
        Request::Run {
            source,
            options,
            machine,
            ranks,
            workers,
        } => run_job(state, source, options, machine, *ranks, *workers),
    };
    state.metrics.lock().unwrap().observe(
        "serve_job_seconds",
        &[("op", req.op())],
        job_started.elapsed().as_secs_f64(),
    );
    response
}

/// Compile through the shared cache; returns the artifact plus the
/// response fields every compile-bearing op shares.
#[allow(clippy::type_complexity)]
fn compile_cached(
    state: &Arc<ServerState>,
    source: &str,
    options: &crate::proto::JobOptions,
) -> Result<(otter_core::CompiledArtifact, Vec<(String, Json)>), String> {
    let eopts = options.to_engine_options();
    let (artifact, outcome) = state
        .cache
        .lock()
        .unwrap()
        .get_or_compile(source, &eopts)
        .map_err(|e| e.to_string())?;
    let hit_label = if outcome.cache_hit { "true" } else { "false" };
    state.metrics.lock().unwrap().observe(
        "serve_compile_seconds",
        &[("cache_hit", hit_label)],
        outcome.compile_seconds,
    );
    Ok((
        artifact.clone(),
        vec![
            ("cache_hit".to_string(), Json::Bool(outcome.cache_hit)),
            (
                "compile_seconds".to_string(),
                Json::Num(outcome.compile_seconds),
            ),
            (
                "source_hash".to_string(),
                Json::Str(format!("{:016x}", artifact.source_hash())),
            ),
            (
                "options_fingerprint".to_string(),
                Json::Str(format!("{:016x}", artifact.options_fingerprint())),
            ),
        ],
    ))
}

/// A full compile-and-run job.
fn run_job(
    state: &Arc<ServerState>,
    source: &str,
    options: &crate::proto::JobOptions,
    machine: &str,
    ranks: usize,
    workers: Option<usize>,
) -> Json {
    let machine = match machine_by_name(machine) {
        Ok(m) => m,
        Err(e) => return err_response(e),
    };
    let (artifact, mut fields) = match compile_cached(state, source, options) {
        Ok(pair) => pair,
        Err(e) => return err_response(e),
    };
    // Admission: take workers from the shared budget for the duration
    // of the run (released on drop, even if the job fails).
    let permit = state.gate.admit(workers.unwrap_or(ranks));
    let run_started = Instant::now();
    let req = RunRequest::on(machine, ranks).with_workers(permit.workers());
    let outcome = try_run(&artifact, &req);
    let run_seconds = run_started.elapsed().as_secs_f64();
    drop(permit);
    state
        .metrics
        .lock()
        .unwrap()
        .observe("serve_run_seconds", &[], run_seconds);
    fields.push(("run_seconds".to_string(), Json::Num(run_seconds)));
    match outcome {
        Err(e) => err_response(e.to_string()),
        Ok(Err(failure)) => err_response(format!("SPMD job failed: {}", failure.report)),
        Ok(Ok(report)) => {
            if let Some(m) = &report.metrics {
                state.job_metrics.lock().unwrap().merge_from(m);
            }
            let mut scalars: Vec<(String, Json)> = report
                .workspace
                .keys()
                .filter_map(|name| report.scalar(name).map(|v| (name.clone(), Json::Num(v))))
                .collect();
            scalars.sort_by(|a, b| a.0.cmp(&b.0));
            fields.push((
                "modeled_seconds".to_string(),
                Json::Num(report.modeled_seconds),
            ));
            fields.push(("messages".to_string(), Json::Num(report.messages as f64)));
            fields.push(("bytes".to_string(), Json::Num(report.bytes as f64)));
            fields.push(("output".to_string(), Json::Str(report.output.clone())));
            fields.push(("scalars".to_string(), Json::Obj(scalars)));
            ok_response(fields)
        }
    }
}

/// Minimal HTTP: any well-formed GET gets the Prometheus exposition;
/// everything else gets a 404. Enough for `curl` and a scraper.
fn handle_http(mut stream: std::net::TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 4096];
    let n = match stream.read(&mut buf) {
        Ok(n) => n,
        Err(_) => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let first = request.lines().next().unwrap_or("");
    let response = if first.starts_with("GET /metrics") || first.starts_with("GET / ") {
        let body = state.exposition();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = format!("{SERVE_SCHEMA}: only GET /metrics is served here\n");
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let _ = stream.write_all(response.as_bytes());
}
