//! Property: a program the linter certifies divergence-free actually
//! completes on every rank count — no rank left waiting in a
//! collective — and its traced point-to-point traffic pairs up
//! exactly: every `Send` on the edge `(from → to)` has the one `Recv`
//! with the same sequence number and byte count on the other side.
//! This cross-validates the static send/recv matching against the
//! trace subsystem's dependency edges (the same `seq` numbers the
//! critical-path analysis follows).

use otter_core::{compile_str, run_engine, EngineOptions, OtterEngine};
use otter_machine::meiko_cs2;
use otter_trace::{EventKind, MemorySink, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;

#[test]
fn lint_clean_apps_complete_with_paired_sendrecv_at_all_rank_counts() {
    for app in otter_apps::test_apps() {
        let compiled = compile_str(&app.script).expect(app.id);
        assert!(compiled.lint.divergence_free, "{}", app.id);
        assert!(compiled.lint.sendrecv_matched, "{}", app.id);

        for p in [1usize, 2, 4, 8] {
            let sink = Arc::new(MemorySink::new());
            let opts = EngineOptions::builder().trace(Arc::clone(&sink)).build();
            let report = run_engine(&mut OtterEngine::new(opts), &app.script, &meiko_cs2(), p)
                .unwrap_or_else(|e| panic!("{} x{p}: {e}", app.id));

            // Completion: every rank reports a final clock — nobody is
            // stuck in a collective.
            assert_eq!(report.per_rank.len(), p, "{} x{p}", app.id);

            // Send/recv pairing as multisets keyed by the directed
            // edge, FIFO sequence number, and payload size.
            let events = sink.snapshot().expect("memory sink retains events");
            let mut sends: BTreeMap<(usize, usize, u64, u64), u64> = BTreeMap::new();
            let mut recvs: BTreeMap<(usize, usize, u64, u64), u64> = BTreeMap::new();
            for e in &events {
                match e.kind {
                    EventKind::Send { to, bytes, seq } => {
                        *sends.entry((e.rank, to, seq, bytes)).or_insert(0) += 1;
                    }
                    EventKind::Recv { from, bytes, seq } => {
                        *recvs.entry((from, e.rank, seq, bytes)).or_insert(0) += 1;
                    }
                    _ => {}
                }
            }
            assert_eq!(
                sends, recvs,
                "{} x{p}: unpaired point-to-point traffic",
                app.id
            );
            // Each (edge, seq) is a single message, not a burst.
            assert!(
                sends.values().all(|&n| n == 1),
                "{} x{p}: duplicate sequence numbers",
                app.id
            );

            // Static census vs dynamic reality: a program with zero
            // point-to-point sites must produce zero sends outside
            // collectives is not observable here (collectives expand
            // into sends), but a program with no communication sites
            // at all must stay silent on one rank.
            if compiled.lint.collective_sites == 0 && compiled.lint.p2p_sites == 0 {
                assert!(sends.is_empty(), "{} x{p}", app.id);
            }
        }
    }
}

#[test]
fn fixture_scripts_also_run_to_completion() {
    // The dist-lint fixtures carry warnings but remain divergence-free:
    // warnings are advisory, execution must still complete and match
    // across rank counts.
    for src in [
        include_str!("fixtures/lint_dist.m"),
        include_str!("fixtures/lint_churn.m"),
    ] {
        let compiled = compile_str(src).unwrap();
        assert!(compiled.lint.divergence_free);
        for p in [1usize, 2, 4, 8] {
            run_engine(
                &mut OtterEngine::new(EngineOptions::default()),
                src,
                &meiko_cs2(),
                p,
            )
            .unwrap_or_else(|e| panic!("fixture x{p}: {e}"));
        }
    }
}
