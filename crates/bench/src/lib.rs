//! # otter-bench
//!
//! Reproduction of every table and figure in the paper's evaluation:
//!
//! * **Table 1** — the survey of parallel-MATLAB systems (static).
//! * **Figure 2** — single-CPU relative performance of the MathWorks
//!   interpreter, the MATCOM compiler, and Otter on the four
//!   benchmark applications.
//! * **Figures 3–6** — speedup of compiled scripts over the
//!   interpreter on the three modeled architectures (Meiko CS-2,
//!   SPARC-20 Ethernet cluster, Enterprise SMP) across CPU counts.
//!
//! Plus ablations for the design decisions DESIGN.md calls out
//! (peephole pass, problem-size/grain-size sweeps) and the §3 C-code
//! excerpts. The `harness` binary renders everything as text tables
//! (`harness fig2 --csv` emits the machine-readable rows with the
//! uniform `EngineReport` counters); the plain-timing benches in
//! `benches/` measure real wall-clock time of the same workloads on
//! the host.

pub mod ablation;
pub mod analyze;
pub mod bench;
pub mod figures;
pub mod load;
pub mod render;
pub mod scale;
pub mod table1;

pub use ablation::{
    collectives_ablation, grain_sweep, peephole_ablation, typeinfer_ablation, CollectiveAblation,
    GrainPoint, PeepholeAblation, TypeInferAblation,
};
pub use bench::{
    check, run_bench, BenchReport, BenchResult, BenchSpec, Regression, WallStats, BENCH_SCHEMA,
};
pub use figures::{
    fig2, fig2_with, speedup_figure, Fig2Cell, Fig2Row, FigureData, Scale, SpeedupSeries,
};
pub use load::{run_load, Arrival, LatencyStats, LoadReport, LoadSpec, LOAD_SCHEMA};
pub use scale::{run_scale, ScalePoint, ScaleReport, ScaleSpec, SCALE_SCHEMA};
pub use table1::TABLE1;
