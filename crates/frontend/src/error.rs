//! Front-end diagnostics.

use crate::span::Span;
use std::fmt;

/// An error produced by the scanner or parser.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendError {
    pub kind: FrontendErrorKind,
    pub span: Span,
    /// Name of the M-file being processed, when known.
    pub file: Option<String>,
}

/// Classification of front-end failures.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendErrorKind {
    /// A character the scanner cannot start a token with.
    UnexpectedChar(char),
    /// A string literal that runs past the end of its line.
    UnterminatedString,
    /// A malformed numeric literal (e.g. `1e+`).
    BadNumber(String),
    /// Parser found `found` where `expected` was needed.
    Expected { expected: String, found: String },
    /// A construct we deliberately do not support, with the reason.
    Unsupported(String),
}

impl FrontendError {
    pub fn new(kind: FrontendErrorKind, span: Span) -> Self {
        FrontendError {
            kind,
            span,
            file: None,
        }
    }

    /// Attach the originating file name (used when loading M-files
    /// during identifier resolution).
    pub fn in_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// The description alone, without the location prefix `Display`
    /// adds (what a [`crate::Diagnostic`] carries as its message).
    pub fn message(&self) -> String {
        match &self.kind {
            FrontendErrorKind::UnexpectedChar(c) => format!("unexpected character `{c}`"),
            FrontendErrorKind::UnterminatedString => "unterminated string literal".into(),
            FrontendErrorKind::BadNumber(s) => format!("malformed number `{s}`"),
            FrontendErrorKind::Expected { expected, found } => {
                format!("expected {expected}, found {found}")
            }
            FrontendErrorKind::Unsupported(what) => format!("unsupported construct: {what}"),
        }
    }
}

impl From<FrontendError> for crate::Diagnostic {
    fn from(e: FrontendError) -> Self {
        let mut d = crate::Diagnostic::new("parse", e.message()).with_span(e.span);
        if let Some(file) = e.file {
            d = d.in_file(file);
        }
        d
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{file}:")?;
        }
        write!(f, "{}: {}", self.span, self.message())
    }
}

impl std::error::Error for FrontendError {}

/// Convenient alias for front-end results.
pub type Result<T> = std::result::Result<T, FrontendError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_file() {
        let e = FrontendError::new(
            FrontendErrorKind::Expected {
                expected: "`)`".into(),
                found: "`;`".into(),
            },
            Span::new(5, 6, 2, 7),
        )
        .in_file("cg.m");
        assert_eq!(e.to_string(), "cg.m:2:7: expected `)`, found `;`");
    }

    #[test]
    fn display_without_file() {
        let e = FrontendError::new(
            FrontendErrorKind::UnexpectedChar('@'),
            Span::new(0, 1, 1, 1),
        );
        assert_eq!(e.to_string(), "1:1: unexpected character `@`");
    }
}
