//! The three execution engines the paper's evaluation compares, behind
//! one API: run a MATLAB script, get a workspace, the display output,
//! and a **modeled execution time** on a chosen machine.
//!
//! * [`run_interpreter`] — The MathWorks-interpreter stand-in (the
//!   baseline of every figure).
//! * [`run_matcom`] — MATCOM-style sequential compiled code: same
//!   evaluator, compiled-code cost coefficients.
//! * [`run_otter`] — the real pipeline: compile to SPMD IR, execute on
//!   `p` ranks over the machine model, modeled time = slowest rank's
//!   virtual clock.

use crate::compile::{compile, CompileOptions, Compiled};
use crate::error::{OtterError, Result};
use crate::exec::{ExecOptions, Executor, XVal};
use otter_interp::{assemble_program, Interp, Value};
use otter_machine::{ExecutionStyle, Machine};
use otter_mpi::run_spmd;
use otter_rt::Dense;
use std::collections::HashMap;
use std::path::PathBuf;

/// A machine-independent run result: final workspace (fully gathered),
/// display output, and the modeled wall-clock seconds on the machine
/// the run was configured with.
#[derive(Debug, Clone)]
pub struct EngineRun {
    pub workspace: HashMap<String, Value>,
    pub output: String,
    /// Modeled execution time in seconds.
    pub modeled_seconds: f64,
    /// Total messages sent (0 for sequential engines).
    pub messages: u64,
    /// Total bytes sent (0 for sequential engines).
    pub bytes: u64,
    /// Largest per-rank high-water mark of live matrix memory
    /// (the paper's §7 claim: distributed blocks shrink per-CPU
    /// memory, so bigger problems fit).
    pub peak_rank_bytes: usize,
}

impl EngineRun {
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.workspace.get(name).and_then(|v| v.as_scalar())
    }

    pub fn matrix(&self, name: &str) -> Option<Dense> {
        self.workspace.get(name).and_then(|v| v.to_matrix())
    }
}

/// Common configuration for baseline (sequential) runs.
#[derive(Debug, Clone, Default)]
pub struct BaselineOptions {
    pub data_dir: Option<PathBuf>,
    pub m_files: Option<otter_frontend::MapProvider>,
}

fn run_sequential(
    src: &str,
    style: ExecutionStyle,
    machine: &Machine,
    opts: &BaselineOptions,
) -> Result<EngineRun> {
    let empty = otter_frontend::MapProvider::new();
    let provider = opts.m_files.as_ref().unwrap_or(&empty);
    let program = assemble_program(src, provider)?;
    let mut interp = Interp::with_style(program, style);
    interp.data_dir = opts.data_dir.clone();
    interp.run()?;
    let modeled = interp.meter.seconds_on(&machine.cpu);
    // The interpreter's peak: high-water mark of the named workspace
    // on one CPU (expression temporaries excluded on both sides'
    // "named values" views; the SPMD executor's compiler temporaries
    // ARE named, so its figure is the more conservative one).
    let peak: usize = interp.peak_workspace_bytes;
    Ok(EngineRun {
        workspace: interp.workspace(),
        output: interp.output.clone(),
        modeled_seconds: modeled,
        messages: 0,
        bytes: 0,
        peak_rank_bytes: peak,
    })
}

/// Run the MathWorks-interpreter baseline on one CPU of `machine`.
pub fn run_interpreter(src: &str, machine: &Machine, opts: &BaselineOptions) -> Result<EngineRun> {
    run_sequential(src, ExecutionStyle::Interpreter, machine, opts)
}

/// Run the MATCOM-compiler baseline on one CPU of `machine`.
pub fn run_matcom(src: &str, machine: &Machine, opts: &BaselineOptions) -> Result<EngineRun> {
    run_sequential(src, ExecutionStyle::Matcom, machine, opts)
}

/// Run a compiled program on `p` CPUs of `machine`. The workspace is
/// gathered from the distributed final state (all ranks agree; rank 0
/// reports).
pub fn run_compiled(compiled: &Compiled, machine: &Machine, p: usize) -> Result<EngineRun> {
    let ir = compiled.ir.clone();
    let exec_opts = ExecOptions { data_dir: compiled.data_dir.clone(), ..Default::default() };
    let results = run_spmd(machine, p, move |comm| {
        let opts = exec_opts.clone();
        let executor = Executor::new(&ir, comm, opts);
        let outcome = executor.run();
        match outcome {
            Ok(o) => {
                // The program is done: snapshot the modeled time and
                // traffic counters now, before the reporting gathers
                // below (which are not part of the benchmarked
                // computation).
                let finished_at = comm.clock();
                let finished_stats = comm.stats();
                // Gather every matrix so rank 0 can report a
                // machine-independent workspace. Iterate in sorted
                // order: gathers are collectives, so every rank must
                // visit variables in the same sequence.
                let mut names: Vec<&String> = o.workspace.keys().collect();
                names.sort();
                let mut ws: HashMap<String, Value> = HashMap::new();
                for name in names {
                    let val = &o.workspace[name];
                    match val {
                        XVal::S(v) => {
                            ws.insert(name.clone(), Value::Scalar(*v));
                        }
                        XVal::M(m) => {
                            let full = m.gather_all(comm);
                            ws.insert(name.clone(), Value::Matrix(full).normalized());
                        }
                    }
                }
                Ok((ws, o.output, finished_at, o.peak_local_bytes, finished_stats))
            }
            Err(e) => Err(e.to_string()),
        }
    });
    // All ranks computed the same workspace; use rank 0's.
    let mut iter = results.into_iter();
    let first = iter.next().expect("at least one rank");
    let (workspace, output, mut max_clock, mut peak_rank_bytes, fstats) =
        first.value.map_err(OtterError::Execution)?;
    let mut messages = fstats.messages_sent;
    let mut bytes = fstats.bytes_sent;
    for r in iter {
        let (_, _, clock, peak, stats) = r.value.map_err(OtterError::Execution)?;
        max_clock = max_clock.max(clock);
        peak_rank_bytes = peak_rank_bytes.max(peak);
        messages += stats.messages_sent;
        bytes += stats.bytes_sent;
    }
    Ok(EngineRun {
        workspace,
        output,
        modeled_seconds: max_clock,
        messages,
        bytes,
        peak_rank_bytes,
    })
}

/// Compile and run in one step (the Otter engine).
pub fn run_otter(
    src: &str,
    machine: &Machine,
    p: usize,
    opts: &BaselineOptions,
) -> Result<EngineRun> {
    let empty = otter_frontend::MapProvider::new();
    let provider = opts.m_files.as_ref().unwrap_or(&empty);
    let compiled = compile(
        src,
        provider,
        &CompileOptions { data_dir: opts.data_dir.clone(), no_peephole: false },
    )?;
    run_compiled(&compiled, machine, p)
}
