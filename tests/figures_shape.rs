//! Shape tests for the paper's evaluation claims, at test scale —
//! the qualitative relationships every figure rests on must hold for
//! any problem size large enough to have vector work.

use otter_bench::figures::{fig2, speedup_figure, Scale};

#[test]
fn figure2_compiled_always_beats_interpreter() {
    // Paper §5: "for these scripts our compiler always outperforms
    // The MathWorks interpreter."
    for row in fig2(Scale::Test) {
        assert!(
            row.otter.relative > 1.0,
            "{}: {}",
            row.app,
            row.otter.relative
        );
    }
}

#[test]
fn figure2_matcom_competitive() {
    // Paper §5: "Our compiler is competitive with the MATCOM
    // compiler" — neither dominates by an order of magnitude.
    for row in fig2(Scale::Test) {
        let ratio = row.otter.relative / row.matcom.relative;
        assert!(
            (0.2..5.0).contains(&ratio),
            "{}: otter/matcom ratio {ratio} out of competitive range",
            row.app
        );
    }
}

#[test]
fn meiko_scales_best_on_transitive_closure() {
    // Paper §6: TC shows the best speedup, and the Meiko "generally
    // achieves greater speedup than the other two parallel systems".
    let apps = Scale::Test.apps();
    let tc = apps.iter().find(|a| a.id == "tc").unwrap();
    let fig = speedup_figure("Figure 6", tc);
    let at = |name: &str| {
        fig.series
            .iter()
            .find(|s| s.machine.contains(name))
            .unwrap()
            .points
            .last()
            .unwrap()
            .1
    };
    let meiko = at("Meiko");
    let cluster = at("cluster");
    assert!(meiko > cluster, "meiko={meiko} cluster={cluster}");
}

#[test]
fn cluster_damped_beyond_one_node() {
    // Paper §6: the Ethernet "puts a severe damper on speedup achieved
    // beyond four CPUs (the number of CPUs in a single SMP)".
    let apps = Scale::Test.apps();
    let cg = apps.iter().find(|a| a.id == "cg").unwrap();
    let fig = speedup_figure("Figure 3", cg);
    let cluster = fig
        .series
        .iter()
        .find(|s| s.machine.contains("cluster"))
        .unwrap();
    let p4 = cluster.points.iter().find(|(p, _)| *p == 4).unwrap().1;
    let p8 = cluster.points.iter().find(|(p, _)| *p == 8).unwrap().1;
    // Within one node: healthy scaling. Beyond: at best marginal.
    assert!(p4 > 2.0, "single-node scaling should work: p4={p4}");
    assert!(
        p8 < p4 * 1.25,
        "Ethernet must damp 8-CPU speedup: p4={p4} p8={p8}"
    );
}

#[test]
fn compute_bound_scales_better_than_communication_bound() {
    // Paper §7: "When the script calls for operations with complexity
    // O(n²) [or more] ... the performance improvement ... can be
    // significant" — vs the O(n) apps of Figures 4-5.
    let apps = Scale::Test.apps();
    let tc = speedup_figure("f6", apps.iter().find(|a| a.id == "tc").unwrap());
    let nb = speedup_figure("f5", apps.iter().find(|a| a.id == "nbody").unwrap());
    let tc_gain = {
        let pts = &tc.series[0].points;
        pts.last().unwrap().1 / pts.first().unwrap().1
    };
    let nb_gain = {
        let pts = &nb.series[0].points;
        pts.last().unwrap().1 / pts.first().unwrap().1
    };
    assert!(
        tc_gain > nb_gain,
        "O(n³) app must scale better: tc={tc_gain} nbody={nb_gain}"
    );
}

#[test]
fn speedup_at_p1_reflects_compilation_gain_only() {
    // At one CPU the "speedup over MATLAB" is purely the
    // compile-vs-interpret gain, identical across machines.
    let apps = Scale::Test.apps();
    let cg = apps.iter().find(|a| a.id == "cg").unwrap();
    let fig = speedup_figure("Figure 3", cg);
    let p1: Vec<f64> = fig.series.iter().map(|s| s.points[0].1).collect();
    for v in &p1 {
        assert!(
            (v - p1[0]).abs() / p1[0] < 0.05,
            "p=1 speedups should agree: {p1:?}"
        );
    }
}
