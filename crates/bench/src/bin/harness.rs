//! The experiment harness: regenerates every table and figure of the
//! paper, and fronts the serve/load machinery.
//!
//! ```text
//! harness table1                 # Table 1 (survey)
//! harness fig2   [--paper]      # single-CPU relative performance
//! harness fig3   [--paper]      # CG speedup on 3 machines
//! harness fig4   [--paper]      # ocean engineering
//! harness fig5   [--paper]      # n-body
//! harness fig6   [--paper]      # transitive closure
//! harness excerpts              # the §3 generated-C excerpts
//! harness ablation               # peephole + typing + grain studies
//! harness memory [--paper]      # §7's larger-problems memory claim
//! harness passes [--paper]      # per-pass compile instrumentation
//! harness trace <app> [--ranks N] [--machine M] [--chrome out.json]
//!                                # per-rank timeline + critical path
//! harness lint <app|all> [--deny]
//!                                # SPMD lint report (deny: exit 1 on warnings)
//! harness analyze <app|all> [--ranks N[,N...]] [--json out.json]
//!                                # static comm-volume oracle vs the modeled
//!                                # run: per-site messages(p)/bytes(p) table,
//!                                # exact-equality verdict, in-place sets;
//!                                # exit 1 on any mismatch or shape error
//! harness faults [--scenario crash|drop|delay|seeded|none] [--seed S]
//!                [--ranks N] [--app A] [--postmortem-dir D]
//!                                # fault-injection smoke: run one app under a
//!                                # deterministic fault plan, print the typed
//!                                # per-rank failure report (key=value lines)
//!                                # plus the postmortem bundle path,
//!                                # exit 1 when the job failed
//! harness postmortem <bundle.json>
//!                                # pretty-print an otter-postmortem/v1 bundle
//!                                # and re-run the deadlock-cycle diagnosis
//!                                # offline, from the bundle alone
//! harness bench <app|all> [--ranks N[,N...]] [--workers W] [--repeat K]
//!               [--warmup W] [--scale test|large|paper] [--json out.json]
//!               [--check baseline.json] [--tolerance PCT]
//!               [--wall-tolerance PCT]
//!                                # statistical bench + regression gate
//!                                # (--wall-tolerance also gates wall
//!                                # medians, same-host baselines only)
//! harness scale <app> [--ranks N[,N...]] [--workers W] [--json out.json]
//!                                # virtual-rank sweep far past the paper's
//!                                # 16 CPUs (default 64,256,1024,4096) on a
//!                                # fixed worker pool
//! harness serve  [--socket PATH] [--workers W] [--cache N]
//!                [--metrics-addr HOST:PORT] [--postmortem-dir D]
//!                                # run the otterd compile-and-run service
//!                                # in the foreground (otter-serve/v1)
//! harness load   [--clients N] [--scripts M] [--requests R]
//!                [--arrival open|closed] [--rate JOBS/S] [--ranks P]
//!                [--workers W] [--machine M] [--socket PATH]
//!                [--json out.json] [--check baseline.json]
//!                [--tolerance PCT]
//!                                # serve-mode traffic generator: throughput,
//!                                # latency percentiles, cache-hit rate, and
//!                                # a gated otter-bench section
//! harness all    [--paper]      # every table and figure above
//! ```
//!
//! `--paper` runs paper-scale problems (n = 2048 CG, 5 000-particle
//! n-body, 512² transitive closure) — use a release build. The default
//! test scale finishes in seconds. `--csv` prints figures as CSV for
//! external plotting.
//!
//! Every subcommand shares one option parser: `--ranks`/`-p` and
//! `--workers` are accepted (and validated) identically everywhere,
//! and an unrecognized flag is a typed [`ArgError`] with exit code 2 —
//! never silently ignored.

use otter_bench::figures::{all_speedup_figures, fig2, Scale};
use otter_bench::render::*;
use otter_bench::{
    collectives_ablation, grain_sweep, peephole_ablation, typeinfer_ablation, TABLE1,
};
use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster};

/// What a subcommand accepts beyond the shared flags.
struct ArgSpec {
    /// The subcommand name (for error prefixes).
    cmd: &'static str,
    /// Usage line printed with every argument error.
    usage: &'static str,
    /// Extra flags taking a value.
    value_flags: &'static [&'static str],
    /// Extra boolean switches.
    switches: &'static [&'static str],
    /// Maximum positional arguments (the `<app>` slot).
    positionals: usize,
}

/// Flags every subcommand accepts: `--ranks N[,N...]` (alias `-p`) and
/// `--workers W`, plus the `--paper` / `--csv` switches.
const SHARED_VALUE_FLAGS: &[&str] = &["--ranks", "--workers"];
const SHARED_SWITCHES: &[&str] = &["--paper", "--csv"];

/// A typed argument error — what the shared parser rejects with.
#[derive(Debug, Clone, PartialEq)]
enum ArgError {
    UnknownFlag(String),
    MissingValue(String),
    BadValue {
        flag: String,
        value: String,
        expected: &'static str,
    },
    ExtraPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            ArgError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "bad value `{value}` for `{flag}` (expected {expected})"),
            ArgError::ExtraPositional(arg) => write!(f, "unexpected argument `{arg}`"),
        }
    }
}

/// The parsed command line of one subcommand.
struct ParsedArgs {
    values: Vec<(String, String)>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

/// Parse `args` against `spec` plus the shared flags. `-p` is
/// normalized to `--ranks` so every consumer sees one spelling.
fn parse_args(args: &[String], spec: &ArgSpec) -> Result<ParsedArgs, ArgError> {
    let mut out = ParsedArgs {
        values: Vec::new(),
        switches: Vec::new(),
        positionals: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let name = if arg == "-p" { "--ranks" } else { arg.as_str() };
        if SHARED_VALUE_FLAGS.contains(&name) || spec.value_flags.contains(&name) {
            let value = it
                .next()
                .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
            out.values.push((name.to_string(), value.clone()));
        } else if SHARED_SWITCHES.contains(&name) || spec.switches.contains(&name) {
            out.switches.push(name.to_string());
        } else if name.starts_with('-') {
            return Err(ArgError::UnknownFlag(name.to_string()));
        } else if out.positionals.len() < spec.positionals {
            out.positionals.push(arg.clone());
        } else {
            return Err(ArgError::ExtraPositional(arg.clone()));
        }
    }
    Ok(out)
}

impl ParsedArgs {
    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn positional(&self) -> Option<&str> {
        self.positionals.first().map(String::as_str)
    }

    /// A positive integer flag.
    fn count(&self, flag: &str) -> Result<Option<usize>, ArgError> {
        self.parse_with(flag, "a positive integer", |v| {
            v.parse::<usize>().ok().filter(|&n| n >= 1)
        })
    }

    /// A positive u64 flag (seeds).
    fn seed(&self, flag: &str) -> Result<Option<u64>, ArgError> {
        self.parse_with(flag, "an unsigned integer", |v| v.parse::<u64>().ok())
    }

    /// A positive float flag (rates, tolerances).
    fn rate(&self, flag: &str) -> Result<Option<f64>, ArgError> {
        self.parse_with(flag, "a positive number", |v| {
            v.parse::<f64>().ok().filter(|&x| x > 0.0)
        })
    }

    /// The shared `--ranks` list: `4` or `64,256,1024`.
    fn ranks_list(&self) -> Result<Option<Vec<usize>>, ArgError> {
        self.parse_with(
            "--ranks",
            "a comma-separated list of positive integers",
            |v| {
                let ranks: Vec<usize> = v
                    .split(',')
                    .map(|part| part.trim().parse::<usize>().ok().filter(|&p| p >= 1))
                    .collect::<Option<_>>()?;
                (!ranks.is_empty()).then_some(ranks)
            },
        )
    }

    /// The shared `--ranks` flag as a single count.
    fn ranks_single(&self, default: usize) -> Result<usize, ArgError> {
        Ok(self.count("--ranks")?.unwrap_or(default))
    }

    /// The shared `--workers` flag.
    fn workers(&self) -> Result<Option<usize>, ArgError> {
        self.count("--workers")
    }

    fn parse_with<T>(
        &self,
        flag: &str,
        expected: &'static str,
        parse: impl Fn(&str) -> Option<T>,
    ) -> Result<Option<T>, ArgError> {
        match self.get(flag) {
            None => Ok(None),
            Some(v) => parse(v).map(Some).ok_or_else(|| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }
}

/// Parse or die: argument errors print the typed message plus the
/// subcommand usage and exit 2.
fn parse_or_exit(args: &[String], spec: &ArgSpec) -> ParsedArgs {
    match parse_args(args, spec) {
        Ok(pa) => pa,
        Err(e) => {
            eprintln!("harness {}: {e}", spec.cmd);
            eprintln!("usage: {}", spec.usage);
            std::process::exit(2);
        }
    }
}

/// Resolve a value-level error (bad flag value) the same way.
fn flag_or_exit<T>(result: Result<T, ArgError>, spec: &ArgSpec) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("harness {}: {e}", spec.cmd);
            eprintln!("usage: {}", spec.usage);
            std::process::exit(2);
        }
    }
}

/// The spec for subcommands with no extra options (figures, tables,
/// ablations).
const fn plain_spec(cmd: &'static str, usage: &'static str) -> ArgSpec {
    ArgSpec {
        cmd,
        usage,
        value_flags: &[],
        switches: &[],
        positionals: 0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let rest = if args.is_empty() {
        &args[..]
    } else {
        &args[1..]
    };

    match cmd {
        "table1" => {
            parse_or_exit(rest, &plain_spec("table1", "harness table1"));
            print!("{}", render_table1(TABLE1));
        }
        "fig2" => {
            let spec = plain_spec("fig2", "harness fig2 [--paper] [--csv]");
            let pa = parse_or_exit(rest, &spec);
            let scale = scale_of(&pa);
            eprintln!("[fig2: {}]", scale_note(scale));
            let rows = fig2(scale);
            if pa.has("--csv") {
                print!("{}", render_fig2_csv(&rows));
            } else {
                print!("{}", render_fig2(&rows));
            }
        }
        "fig3" | "fig4" | "fig5" | "fig6" => {
            let spec = plain_spec("fig", "harness fig3|fig4|fig5|fig6 [--paper] [--csv]");
            let pa = parse_or_exit(rest, &spec);
            let scale = scale_of(&pa);
            eprintln!("[{cmd}: {}]", scale_note(scale));
            let idx = cmd[3..].parse::<usize>().unwrap() - 3;
            let figs = all_speedup_figures(scale);
            if pa.has("--csv") {
                print!("{}", render_figure_csv(&figs[idx]));
            } else {
                print!("{}", render_figure(&figs[idx]));
            }
        }
        "excerpts" => {
            parse_or_exit(rest, &plain_spec("excerpts", "harness excerpts"));
            print_excerpts();
        }
        "trace" => run_trace(rest),
        "lint" => run_lint(rest),
        "analyze" => run_analyze_cmd(rest),
        "faults" => run_faults(rest),
        "postmortem" => run_postmortem(rest),
        "bench" => run_bench_cmd(rest),
        "scale" => run_scale_cmd(rest),
        "serve" => run_serve(rest),
        "load" => run_load_cmd(rest),
        "ablation" => {
            let pa = parse_or_exit(rest, &plain_spec("ablation", "harness ablation [--paper]"));
            run_ablations(scale_of(&pa));
        }
        "memory" => {
            let pa = parse_or_exit(rest, &plain_spec("memory", "harness memory [--paper]"));
            run_memory(scale_of(&pa));
        }
        "passes" => {
            let pa = parse_or_exit(rest, &plain_spec("passes", "harness passes [--paper]"));
            run_passes(scale_of(&pa));
        }
        "all" => {
            let pa = parse_or_exit(rest, &plain_spec("all", "harness all [--paper]"));
            let scale = scale_of(&pa);
            print!("{}", render_table1(TABLE1));
            println!();
            eprintln!("[fig2: {}]", scale_note(scale));
            print!("{}", render_fig2(&fig2(scale)));
            println!();
            for fig in all_speedup_figures(scale) {
                print!("{}", render_figure(&fig));
                println!();
            }
            print_excerpts();
            println!();
            run_ablations(scale);
            println!();
            run_memory(scale);
            println!();
            run_passes(scale);
        }
        other => {
            eprintln!(
                "unknown command `{other}`; expected table1|fig2|fig3|fig4|fig5|fig6|excerpts|trace|lint|analyze|faults|postmortem|bench|scale|serve|load|ablation|memory|passes|all"
            );
            std::process::exit(2);
        }
    }
}

fn scale_of(pa: &ParsedArgs) -> Scale {
    if pa.has("--paper") {
        Scale::Paper
    } else {
        Scale::Test
    }
}

fn scale_note(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper-scale problems",
        Scale::Test => "test-scale problems (pass --paper for full size)",
        Scale::Large => "large-scale problems (kernel-bound, CI wall gate)",
    }
}

fn find_app(scale: Scale, app_id: &str) -> otter_apps::App {
    scale
        .apps()
        .into_iter()
        .find(|a| a.id == app_id)
        .unwrap_or_else(|| {
            eprintln!("unknown app `{app_id}`; expected cg|ocean|nbody|tc");
            std::process::exit(2);
        })
}

/// `harness trace <app> [--ranks N] [--machine M] [--chrome out.json]`:
/// run one benchmark app with a retaining trace sink and report the
/// per-rank timeline plus the critical path; optionally dump the raw
/// events as Chrome `trace_event` JSON for chrome://tracing / Perfetto.
fn run_trace(args: &[String]) {
    use otter_core::{run_engine, EngineOptions, OtterEngine};
    use otter_trace::{chrome_trace, MemorySink, TraceSink};
    use std::sync::Arc;

    let spec = ArgSpec {
        cmd: "trace",
        usage: "harness trace <cg|ocean|nbody|tc> [--ranks N] [--workers W] \
                [--machine meiko|cluster|smp] [--chrome out.json] [--paper]",
        value_flags: &["--machine", "--chrome"],
        switches: &[],
        positionals: 1,
    };
    let pa = parse_or_exit(args, &spec);
    let scale = scale_of(&pa);
    let ranks = flag_or_exit(pa.ranks_single(4), &spec);
    let workers = flag_or_exit(pa.workers(), &spec);
    let machine = flag_or_exit(
        pa.parse_with("--machine", "meiko|cluster|smp", |v| match v {
            "meiko" => Some(meiko_cs2()),
            "cluster" => Some(sparc20_cluster()),
            "smp" => Some(enterprise_smp()),
            _ => None,
        }),
        &spec,
    )
    .unwrap_or_else(meiko_cs2);
    let chrome = pa.get("--chrome").map(str::to_string);
    let Some(app_id) = pa.positional() else {
        eprintln!("harness trace: missing <app>");
        eprintln!("usage: {}", spec.usage);
        std::process::exit(2);
    };
    let app = find_app(scale, app_id);

    let sink = Arc::new(MemorySink::new());
    let mut opts = EngineOptions::builder().trace(Arc::clone(&sink)).build();
    opts.workers = workers;
    let report = run_engine(&mut OtterEngine::new(opts), &app.script, &machine, ranks)
        .unwrap_or_else(|e| {
            eprintln!("trace run failed: {e}");
            std::process::exit(1);
        });

    println!(
        "{} on {} x{}: modeled {:.6} s, {} messages, {} bytes",
        app.name, machine.name, ranks, report.modeled_seconds, report.messages, report.bytes
    );
    println!();
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>14}",
        "rank", "compute (s)", "comm (s)", "idle (s)", "clock (s)"
    );
    for c in &report.per_rank {
        println!(
            "{:>4} {:>14.6} {:>14.6} {:>14.6} {:>14.6}",
            c.rank, c.compute_seconds, c.comm_seconds, c.idle_seconds, c.clock
        );
    }
    if let Some(cp) = &report.critical_path {
        println!();
        println!(
            "critical path: {:.6} s = {:.6} s compute + {:.6} s comm \
             ({} cross-rank hops, {:.1}% comm)",
            cp.total,
            cp.compute,
            cp.comm,
            cp.hops,
            cp.comm_share() * 100.0,
        );
    }
    if let Some(path) = chrome {
        let events = sink.snapshot().unwrap_or_default();
        let json = chrome_trace(&events);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!();
        println!(
            "wrote {} trace events to {path} (load in chrome://tracing or Perfetto)",
            events.len()
        );
    }
}

/// `harness lint <app|all> [--deny]`: compile one (or every)
/// benchmark app and print the SPMD lint report — warnings, the
/// communication-site census, and the divergence verdict. With
/// `--deny` any warning exits non-zero, which is the CI smoke mode.
fn run_lint(args: &[String]) {
    use otter_core::compile_str;

    let spec = ArgSpec {
        cmd: "lint",
        usage: "harness lint <cg|ocean|nbody|tc|all> [--deny] [--paper]",
        value_flags: &[],
        switches: &["--deny"],
        positionals: 1,
    };
    let pa = parse_or_exit(args, &spec);
    let scale = scale_of(&pa);
    let deny = pa.has("--deny");
    let app_id = pa.positional().unwrap_or("all");
    let apps: Vec<_> = scale
        .apps()
        .into_iter()
        .filter(|a| app_id == "all" || a.id == app_id)
        .collect();
    if apps.is_empty() {
        eprintln!("unknown app `{app_id}`; expected cg|ocean|nbody|tc|all");
        std::process::exit(2);
    }

    let mut total_warnings = 0usize;
    for app in apps {
        let compiled = compile_str(&app.script).unwrap_or_else(|e| {
            eprintln!("{}: {e}", app.id);
            std::process::exit(1);
        });
        let r = &compiled.lint;
        println!(
            "{}: {} warning(s), {} collective site(s), {} point-to-point site(s), {}",
            app.id,
            r.warnings.len(),
            r.collective_sites,
            r.p2p_sites,
            if r.divergence_free && r.sendrecv_matched {
                "divergence-free, send/recv matched"
            } else {
                "NOT divergence-free"
            },
        );
        for w in &r.warnings {
            println!("  {w}");
        }
        total_warnings += r.warnings.len();
    }
    if deny && total_warnings > 0 {
        eprintln!("harness lint: {total_warnings} warning(s) with --deny");
        std::process::exit(1);
    }
}

/// `harness analyze <app|all> [--ranks N[,N...]] [--json out.json]`:
/// run the static communication-volume oracle and verify it site by
/// site against the modeled run — exact equality, no tolerance. Prints
/// the per-site formula table; `--json` exports the `otter-analyze/v1`
/// report. Exits 1 on any mismatch or compile-time shape error, which
/// makes it a CI smoke step.
fn run_analyze_cmd(args: &[String]) {
    use otter_bench::analyze::{run_analyze, AnalyzeSpec, ANALYZE_SCHEMA};

    let spec = ArgSpec {
        cmd: "analyze",
        usage: "harness analyze <cg|ocean|nbody|tc|all> [--ranks N[,N...]] \
                [--json out.json] [--paper]",
        value_flags: &["--json"],
        switches: &[],
        positionals: 1,
    };
    let pa = parse_or_exit(args, &spec);
    let mut aspec = AnalyzeSpec {
        scale: scale_of(&pa),
        ..AnalyzeSpec::default()
    };
    if let Some(ranks) = flag_or_exit(pa.ranks_list(), &spec) {
        aspec.ranks = ranks;
    }
    if let Some(id) = pa.positional() {
        aspec.app_id = id.to_string();
    }
    let json_path = pa.get("--json").map(str::to_string);

    let report = run_analyze(&aspec).unwrap_or_else(|e| {
        eprintln!("harness analyze: {e}");
        std::process::exit(1);
    });
    print!("{}", report.render());

    if let Some(path) = &json_path {
        let mut text = report.to_json().to_string();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote analyze report ({ANALYZE_SCHEMA}) to {path}");
    }

    let shape_errors: usize = report.apps.iter().map(|a| a.shape_errors).sum();
    if !report.matched() || shape_errors > 0 {
        eprintln!(
            "harness analyze: oracle mismatch or shape error(s) \
             (matched={}, shape_errors={shape_errors})",
            report.matched(),
        );
        std::process::exit(1);
    }
}

/// `harness faults [--scenario crash|drop|delay|seeded|none] [--seed S]
/// [--ranks N] [--app A] [--postmortem-dir D]`: the fault-injection
/// smoke mode. Compile one benchmark app, run it under a deterministic
/// fault plan, and print the typed failure report as stable
/// `key=value` lines a CI step can parse. A failed job also writes its
/// `otter-postmortem/v1` bundle (default under the system temp dir)
/// and reports the path as `postmortem=...`. Exits 1 when the job
/// failed (the expected outcome for `crash`/`drop`), 0 when it
/// completed (`delay` perturbs timing but not delivery; `none` runs
/// the clean path).
fn run_faults(args: &[String]) {
    use otter_core::{
        build_postmortem, compile, try_run, write_postmortem, EngineOptions, RunRequest,
    };
    use otter_mpi::FaultPlan;

    let spec = ArgSpec {
        cmd: "faults",
        usage: "harness faults [--scenario crash|drop|delay|seeded|none] [--seed S] \
                [--ranks N] [--workers W] [--app cg|ocean|nbody|tc] \
                [--postmortem-dir D] [--paper]",
        value_flags: &["--scenario", "--seed", "--app", "--postmortem-dir"],
        switches: &[],
        positionals: 0,
    };
    let pa = parse_or_exit(args, &spec);
    let scale = scale_of(&pa);
    let scenario = pa.get("--scenario").unwrap_or("crash").to_string();
    let seed = flag_or_exit(pa.seed("--seed"), &spec).unwrap_or(1);
    let ranks = flag_or_exit(pa.ranks_single(8), &spec);
    let workers = flag_or_exit(pa.workers(), &spec);
    let app = find_app(scale, pa.get("--app").unwrap_or("cg"));
    let postmortem_dir = pa
        .get("--postmortem-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("otter-postmortem"));

    // Deterministic plans: the named scenarios pin the fault site so
    // the printed report is reproducible verbatim; `seeded` derives
    // the site from --seed exactly like a randomized CI run would.
    // `crash` picks its victim from the seed; `drop`/`delay` hit the
    // first message on the 1 → 0 edge, which every tree reduction
    // crosses (child to parent), so the fault always lands.
    let victim = (seed as usize) % ranks;
    let plan = match scenario.as_str() {
        "crash" => Some(FaultPlan::new().crash(victim, 1 + seed % 4)),
        "drop" => Some(FaultPlan::new().drop_message(1 % ranks, 0, 0)),
        "delay" => Some(FaultPlan::new().delay_message(1 % ranks, 0, 0, 0.5)),
        "seeded" => Some(FaultPlan::seeded(seed, ranks)),
        "none" => None,
        other => flag_or_exit(
            Err(ArgError::BadValue {
                flag: "--scenario".to_string(),
                value: other.to_string(),
                expected: "crash|drop|delay|seeded|none",
            }),
            &spec,
        ),
    };

    let mut opts = EngineOptions::builder().build();
    opts.faults = plan.clone();
    let artifact = compile(&app.script, &opts).unwrap_or_else(|e| {
        eprintln!("harness faults: {e}");
        std::process::exit(1);
    });
    let mut req = RunRequest::on(meiko_cs2(), ranks);
    if let Some(w) = workers {
        req = req.with_workers(w);
    }
    let outcome = match try_run(&artifact, &req) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("harness faults: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "fault-smoke app={} ranks={} scenario={} seed={} actions={}",
        app.id,
        ranks,
        scenario,
        seed,
        plan.as_ref().map_or(0, |pl| pl.actions.len()),
    );
    match outcome {
        Ok(report) => {
            println!(
                "result=ok modeled_seconds={:.6} messages={} bytes={}",
                report.modeled_seconds, report.messages, report.bytes
            );
        }
        Err(failure) => {
            // Persist the postmortem bundle first, so the key=value
            // report can point at it; a disk error degrades to a note
            // rather than masking the failure report.
            let bundle = build_postmortem(&artifact, &failure);
            let postmortem = match write_postmortem(&postmortem_dir, &bundle) {
                Ok(path) => path.display().to_string(),
                Err(e) => {
                    eprintln!("harness faults: cannot write postmortem bundle: {e}");
                    "-".to_string()
                }
            };
            let root = failure.report.root_cause();
            println!(
                "result=failed failed_ranks={} survivors={} root_cause_rank={} root_cause_code={} postmortem={}",
                failure.report.failures.len(),
                failure.survivors.len(),
                root.rank,
                root.error.code(),
                postmortem,
            );
            for f in &failure.report.failures {
                let blocked: Vec<String> = f.blocked_peers.iter().map(usize::to_string).collect();
                println!(
                    "failure rank={} code={} clock={:.6} blocked_peers={} error=\"{}\"",
                    f.rank,
                    f.error.code(),
                    f.clock,
                    if blocked.is_empty() {
                        "-".to_string()
                    } else {
                        blocked.join(",")
                    },
                    f.error,
                );
            }
            for s in &failure.survivors {
                println!(
                    "survivor rank={} clock={:.6} messages={} bytes={}",
                    s.rank, s.clock, s.messages, s.bytes
                );
            }
            std::process::exit(1);
        }
    }
}

/// `harness postmortem <bundle.json>`: decode an `otter-postmortem/v1`
/// bundle and reconstruct the failure story offline — the correlated
/// job id, the typed per-rank failure report, each involved rank's
/// final flight-recorder events, and the deadlock-cycle diagnosis
/// re-run from the serialized wait-for snapshot (independent of what
/// the live detector concluded). Everything comes from the bundle
/// alone: no source, no artifact, no daemon.
fn run_postmortem(args: &[String]) {
    use otter_core::parse_postmortem;

    let spec = ArgSpec {
        cmd: "postmortem",
        usage: "harness postmortem <bundle.json>",
        value_flags: &[],
        switches: &[],
        positionals: 1,
    };
    let pa = parse_or_exit(args, &spec);
    let Some(path) = pa.positional() else {
        eprintln!("harness postmortem: missing <bundle.json>");
        eprintln!("usage: {}", spec.usage);
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("harness postmortem: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let s = parse_postmortem(&text).unwrap_or_else(|e| {
        eprintln!("harness postmortem: {path}: {e}");
        std::process::exit(1);
    });

    let ranks = |list: &[usize]| {
        if list.is_empty() {
            "-".to_string()
        } else {
            list.iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",")
        }
    };
    println!(
        "postmortem job_id={} ranks={} source_hash={} options_fingerprint={}",
        s.job_id, s.size, s.source_hash, s.options_fingerprint
    );
    println!("summary: {}", s.summary);
    println!(
        "root_cause rank={} code={} error=\"{}\"",
        s.root_cause_rank, s.root_cause_code, s.root_cause_message
    );
    for (rank, code, message, blocked) in &s.failures {
        println!(
            "failure rank={rank} code={code} blocked_peers={} error=\"{message}\"",
            ranks(blocked),
        );
    }
    println!("survivors={}", ranks(&s.survivor_ranks));

    // The offline half of the deadlock diagnosis: re-derive the cycle
    // from the bundled wait-for edges.
    for e in &s.wait_for {
        println!("wait_for {e}");
    }
    match s.diagnose_cycle() {
        Some(cycle) => {
            let mut spine: Vec<String> = cycle.iter().map(|e| e.waiter.to_string()).collect();
            spine.push(cycle[0].waiter.to_string());
            println!("deadlock_cycle={}", spine.join("->"));
        }
        None => println!("deadlock_cycle=none"),
    }

    // Every involved rank's final flight-recorder events, oldest
    // first — what each rank saw in its last moments.
    for f in &s.flight {
        println!("flight rank={} events={}", f.rank, f.events.len());
        for ev in &f.events {
            println!(
                "  seq={} clock={:.6} level={} code={} a={} b={}",
                ev.seq,
                ev.clock,
                ev.level.as_str(),
                ev.code,
                ev.a,
                ev.b
            );
        }
    }
    println!(
        "metrics={}",
        if s.has_metrics { "bundled" } else { "absent" }
    );
}

/// `harness bench <app|all> [--ranks N] [--repeat K] [--warmup W]
/// [--scale test|large|paper] [--json out.json] [--check baseline.json]
/// [--tolerance PCT] [--wall-tolerance PCT]`:
/// run the statistical bench (all three engines per app, K measured
/// repetitions after W warmups), print the summary table, optionally
/// export `otter-bench/v1` JSON, and optionally gate against a
/// baseline report — exiting 1 on any regression. The deterministic
/// outputs are always gated; `--wall-tolerance` additionally gates
/// `wall_seconds` medians under its percentage plus the baseline's
/// IQR (same-host baselines only — wall time is machine-dependent).
fn run_bench_cmd(args: &[String]) {
    use otter_bench::bench::{check, check_wall, run_bench, BenchReport, BenchSpec};
    use otter_metrics::Json;

    let argspec = ArgSpec {
        cmd: "bench",
        usage: "harness bench <cg|ocean|nbody|tc|all> [--ranks N[,N...]] [--workers W] \
                [--repeat K] [--warmup W] [--scale test|large|paper] [--json out.json] \
                [--check baseline.json] [--tolerance PCT] [--wall-tolerance PCT] [--paper]",
        value_flags: &[
            "--repeat",
            "--warmup",
            "--scale",
            "--json",
            "--check",
            "--tolerance",
            "--wall-tolerance",
        ],
        switches: &[],
        positionals: 1,
    };
    let pa = parse_or_exit(args, &argspec);
    // `--scale` names the size directly; the shared `--paper` switch
    // stays as the back-compatible spelling of `--scale paper`.
    let scale = flag_or_exit(
        pa.parse_with("--scale", "test|large|paper", |v| match v {
            "test" => Some(Scale::Test),
            "large" => Some(Scale::Large),
            "paper" => Some(Scale::Paper),
            _ => None,
        }),
        &argspec,
    )
    .unwrap_or_else(|| scale_of(&pa));
    let mut spec = BenchSpec {
        scale,
        ..BenchSpec::default()
    };
    if let Some(ranks) = flag_or_exit(pa.ranks_list(), &argspec) {
        spec.ranks = ranks;
    }
    spec.workers = flag_or_exit(pa.workers(), &argspec);
    if let Some(k) = flag_or_exit(pa.count("--repeat"), &argspec) {
        spec.repeat = k;
    }
    if let Some(w) = flag_or_exit(pa.count("--warmup"), &argspec) {
        spec.warmup = w;
    }
    if let Some(id) = pa.positional() {
        spec.app_id = id.to_string();
    }
    let json_path = pa.get("--json").map(str::to_string);
    let check_path = pa.get("--check").map(str::to_string);
    let tolerance = flag_or_exit(pa.rate("--tolerance"), &argspec).unwrap_or(10.0);
    let wall_tolerance = flag_or_exit(pa.rate("--wall-tolerance"), &argspec);

    let report = run_bench(&spec).unwrap_or_else(|e| {
        eprintln!("harness bench: {e}");
        std::process::exit(1);
    });
    print!("{}", report.render());

    if let Some(path) = &json_path {
        let mut text = report.to_json().to_string();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!();
        println!(
            "wrote bench report ({}) to {path}",
            otter_bench::BENCH_SCHEMA
        );
    }

    if let Some(path) = &check_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let baseline = Json::parse(&text)
            .and_then(|j| BenchReport::from_json(&j))
            .unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {path}: {e}");
                std::process::exit(1);
            });
        if baseline.scale != report.scale {
            eprintln!(
                "harness bench: baseline is {} scale but this run is {} scale",
                baseline.scale, report.scale
            );
            std::process::exit(1);
        }
        let mut regressions = check(&baseline, &report, tolerance);
        if let Some(wt) = wall_tolerance {
            regressions.extend(check_wall(&baseline, &report, wt));
        }
        println!();
        if regressions.is_empty() {
            let wall_note = match wall_tolerance {
                Some(wt) => format!(", wall tolerance {wt}% + baseline IQR"),
                None => String::new(),
            };
            println!(
                "regression check against {path}: OK ({} combination(s), tolerance {tolerance}%{wall_note})",
                baseline.results.len()
            );
        } else {
            eprintln!("regression check against {path} FAILED (tolerance {tolerance}%):");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}

/// `harness scale <app> [--ranks N[,N...]] [--workers W] [--json out.json]`:
/// sweep one app's SPMD run across rank counts far beyond the
/// machine's physical CPUs — the virtual-rank scheduler multiplexes
/// them over a fixed worker pool. Prints the sweep table; optionally
/// exports `otter-scale/v1` JSON.
fn run_scale_cmd(args: &[String]) {
    use otter_bench::scale::{run_scale, ScaleSpec, SCALE_SCHEMA};

    let argspec = ArgSpec {
        cmd: "scale",
        usage: "harness scale <cg|ocean|nbody|tc> [--ranks N[,N...]] [--workers W] \
                [--json out.json] [--paper]",
        value_flags: &["--json"],
        switches: &[],
        positionals: 1,
    };
    let pa = parse_or_exit(args, &argspec);
    let mut spec = ScaleSpec {
        scale: scale_of(&pa),
        ..ScaleSpec::default()
    };
    if let Some(ranks) = flag_or_exit(pa.ranks_list(), &argspec) {
        spec.ranks = ranks;
    }
    spec.workers = flag_or_exit(pa.workers(), &argspec);
    if let Some(id) = pa.positional() {
        spec.app_id = id.to_string();
    }
    let json_path = pa.get("--json").map(str::to_string);

    let report = run_scale(&spec).unwrap_or_else(|e| {
        eprintln!("harness scale: {e}");
        std::process::exit(1);
    });
    print!("{}", report.render());

    if let Some(path) = &json_path {
        let mut text = report.to_json().to_string();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!();
        println!("wrote scale report ({SCALE_SCHEMA}) to {path}");
    }
}

/// `harness serve [--socket PATH] [--workers W] [--cache N]
/// [--metrics-addr HOST:PORT]`: run the otterd service in the
/// foreground. Jobs arrive as `otter-serve/v1` JSON lines on the Unix
/// socket; a `shutdown` op (or SIGTERM to the `otterd` binary proper)
/// winds it down.
fn run_serve(args: &[String]) {
    use otter_serve::{ServeConfig, Server};

    let argspec = ArgSpec {
        cmd: "serve",
        usage: "harness serve [--socket PATH] [--workers W] [--cache N] \
                [--metrics-addr HOST:PORT] [--postmortem-dir D]",
        value_flags: &["--socket", "--cache", "--metrics-addr", "--postmortem-dir"],
        switches: &[],
        positionals: 0,
    };
    let pa = parse_or_exit(args, &argspec);
    let mut cfg = ServeConfig::default();
    if let Some(path) = pa.get("--socket") {
        cfg.socket = path.into();
    }
    if let Some(w) = flag_or_exit(pa.workers(), &argspec) {
        cfg.workers = w;
    }
    if let Some(c) = flag_or_exit(pa.count("--cache"), &argspec) {
        cfg.cache_capacity = c;
    }
    if let Some(addr) = pa.get("--metrics-addr") {
        cfg.metrics_addr = Some(addr.to_string());
    }
    if let Some(dir) = pa.get("--postmortem-dir") {
        cfg.postmortem_dir = dir.into();
    }
    let server = Server::bind(cfg).unwrap_or_else(|e| {
        eprintln!("harness serve: bind failed: {e}");
        std::process::exit(1);
    });
    eprintln!("harness serve: listening on {}", server.socket().display());
    if let Some(addr) = server.metrics_addr() {
        eprintln!("harness serve: metrics on http://{addr}/metrics");
    }
    if let Err(e) = server.run() {
        eprintln!("harness serve: accept loop failed: {e}");
        std::process::exit(1);
    }
}

/// `harness load [--clients N] [--scripts M] [--requests R]
/// [--arrival open|closed] [--rate JOBS/S] [--ranks P] [--workers W]
/// [--machine M] [--socket PATH] [--json out.json]
/// [--check baseline.json] [--tolerance PCT]`: the serve-mode traffic
/// generator. Spins up an in-process daemon (or targets `--socket`),
/// drives concurrent clients through distinct scripts, and reports
/// throughput, latency percentiles, cold/warm compile times, and the
/// cache-hit rate. The deterministic per-script outputs ride in an
/// embedded `otter-bench/v1` section, gated by `--check` exactly like
/// `harness bench`.
fn run_load_cmd(args: &[String]) {
    use otter_bench::load::{run_load, Arrival, LoadReport, LoadSpec, LOAD_SCHEMA};
    use otter_metrics::Json;

    let argspec = ArgSpec {
        cmd: "load",
        usage: "harness load [--clients N] [--scripts M] [--requests R] \
                [--arrival open|closed] [--rate JOBS/S] [--ranks P] [--workers W] \
                [--machine meiko|cluster|smp|workstation] [--socket PATH] \
                [--json out.json] [--check baseline.json] [--tolerance PCT] [--paper]",
        value_flags: &[
            "--clients",
            "--scripts",
            "--requests",
            "--arrival",
            "--rate",
            "--machine",
            "--socket",
            "--json",
            "--check",
            "--tolerance",
        ],
        switches: &[],
        positionals: 0,
    };
    let pa = parse_or_exit(args, &argspec);
    let mut spec = LoadSpec {
        scale: scale_of(&pa),
        ..LoadSpec::default()
    };
    if let Some(n) = flag_or_exit(pa.count("--clients"), &argspec) {
        spec.clients = n;
    }
    if let Some(m) = flag_or_exit(pa.count("--scripts"), &argspec) {
        spec.scripts = m;
    }
    if let Some(r) = flag_or_exit(pa.count("--requests"), &argspec) {
        spec.requests = r;
    }
    spec.ranks = flag_or_exit(pa.ranks_single(spec.ranks), &argspec);
    spec.workers = flag_or_exit(pa.workers(), &argspec);
    if let Some(m) = pa.get("--machine") {
        spec.machine = m.to_string();
    }
    if let Some(path) = pa.get("--socket") {
        spec.socket = Some(path.into());
    }
    let rate = flag_or_exit(pa.rate("--rate"), &argspec);
    spec.arrival = match pa.get("--arrival") {
        None | Some("closed") => Arrival::Closed,
        Some("open") => Arrival::Open {
            rate: rate.unwrap_or(100.0),
        },
        Some(other) => flag_or_exit(
            Err(ArgError::BadValue {
                flag: "--arrival".to_string(),
                value: other.to_string(),
                expected: "open|closed",
            }),
            &argspec,
        ),
    };
    let json_path = pa.get("--json").map(str::to_string);
    let check_path = pa.get("--check").map(str::to_string);
    let tolerance = flag_or_exit(pa.rate("--tolerance"), &argspec).unwrap_or(10.0);

    let report = run_load(&spec).unwrap_or_else(|e| {
        eprintln!("harness load: {e}");
        std::process::exit(1);
    });
    print!("{}", report.render());

    if let Some(path) = &json_path {
        let mut text = report.to_json().to_string();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!();
        println!("wrote load report ({LOAD_SCHEMA}) to {path}");
    }

    if let Some(path) = &check_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let baseline = Json::parse(&text)
            .and_then(|j| LoadReport::from_json(&j))
            .unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {path}: {e}");
                std::process::exit(1);
            });
        if baseline.scale != report.scale {
            eprintln!(
                "harness load: baseline is {} scale but this run is {} scale",
                baseline.scale, report.scale
            );
            std::process::exit(1);
        }
        let regressions = report.check_against(&baseline, tolerance);
        println!();
        if regressions.is_empty() {
            println!(
                "regression check against {path}: OK ({} script(s), tolerance {tolerance}%)",
                baseline.bench.results.len()
            );
        } else {
            eprintln!("regression check against {path} FAILED (tolerance {tolerance}%):");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}

/// Compile the paper's two §3 example statements and show the C.
fn print_excerpts() {
    println!("Paper §3 code excerpts, regenerated:");
    println!();
    let src1 = "n = 8;\nb = ones(n, n);\nc = ones(n, n);\nd = eye(n);\ni = 2;\nj = 3;\na = b * c + d(i, j);";
    let compiled = otter_core::compile_str(src1).expect("excerpt 1 compiles");
    println!("--- a = b * c + d(i,j); ---");
    for line in compiled.c_source.lines() {
        let t = line.trim();
        if t.contains("ML_matrix_multiply")
            || t.contains("ML_broadcast")
            || t.contains("realbase")
            || t.contains("for (ML_tmp")
        {
            println!("{line}");
        }
    }
    println!();
    let src2 =
        "n = 8;\na = ones(n, n);\nb = ones(n, n);\ni = 2;\nj = 3;\na(i, j) = a(i, j) / b(j, i);";
    let compiled = otter_core::compile_str(src2).expect("excerpt 2 compiles");
    println!("--- a(i,j) = a(i,j) / b(j,i); ---");
    for line in compiled.c_source.lines() {
        let t = line.trim();
        if t.contains("ML_broadcast") || t.contains("ML_owner") || t.contains("ML_realaddr2") {
            println!("{line}");
        }
    }
}

/// Paper §7: "larger problems can be solved ... a parallel computer
/// may have far more primary memory than an individual workstation."
/// Show the per-CPU memory high-water mark of the conjugate-gradient
/// problem across machine sizes.
fn run_memory(scale: Scale) {
    use otter_core::{compile, run, run_engine, EngineOptions, InterpreterEngine, RunRequest};
    use otter_machine::workstation;
    let n = match scale {
        Scale::Paper => 2048,
        Scale::Test => 256,
        Scale::Large => 512,
    };
    let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params {
        n,
        iters: 2,
        tol: 0.0,
    });
    let interp = run_engine(
        &mut InterpreterEngine::new(EngineOptions::default()),
        &app.script,
        &workstation(),
        1,
    )
    .unwrap();
    let artifact = compile(&app.script, &EngineOptions::default()).unwrap();
    println!("Paper §7 memory claim: per-CPU peak memory, conjugate gradient n = {n}.");
    println!("{:<34} {:>16}", "configuration", "peak MB per CPU");
    println!("{}", "-".repeat(52));
    println!(
        "{:<34} {:>16.2}",
        "MATLAB interpreter (1 CPU)",
        interp.peak_rank_bytes as f64 / 1e6
    );
    let m = meiko_cs2();
    let mut p = 1;
    while p <= m.max_cpus {
        let run_report = run(&artifact, &RunRequest::on(m.clone(), p)).unwrap();
        println!(
            "{:<34} {:>16.2}",
            format!("Otter on {} CPU(s)", p),
            run_report.peak_rank_bytes as f64 / 1e6
        );
        p *= 2;
    }
    println!();
    println!("(The interpreter row counts named workspace variables; the Otter");
    println!("rows also include live compiler temporaries, so they are the");
    println!("more conservative measure.)");
    println!();
    println!("Each CPU holds only its row blocks: the same script that needs");
    println!("the whole matrix on a workstation needs ~1/p of it per node —");
    println!("\"a parallel computer may have far more primary memory than an");
    println!("individual workstation\" (paper §7).");
}

/// Per-pass compile-time instrumentation for the four benchmark apps:
/// what each of the paper's passes costs and what it does to the
/// program (statement / IR-instruction / runtime-call counts).
fn run_passes(scale: Scale) {
    use otter_core::{CompileOptions, PassManager};
    println!("Per-pass instrumentation (PassManager), four benchmark applications.");
    for app in scale.apps() {
        let report = PassManager::standard()
            .compile(
                &app.script,
                &otter_frontend::EmptyProvider,
                &CompileOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", app.id));
        println!();
        println!("{}:", app.name);
        println!(
            "  {:<10} {:>12} {:>8} {:>9} {:>8}",
            "pass", "wall (µs)", "stmts", "IR", "rtcalls"
        );
        for s in &report.passes {
            println!(
                "  {:<10} {:>12.1} {:>8} {:>9} {:>8}",
                s.name,
                s.wall.as_secs_f64() * 1e6,
                s.stmts_after,
                s.ir_instrs_after,
                s.runtime_calls_after
            );
        }
    }
}

fn run_ablations(scale: Scale) {
    let apps = scale.apps();
    let rows: Vec<_> = apps.iter().map(|a| peephole_ablation(a, 8)).collect();
    print!("{}", render_peephole(&rows));
    println!();
    let ti: Vec<_> = apps.iter().map(|a| typeinfer_ablation(a, 8)).collect();
    print!("{}", render_typeinfer(&ti));
    println!();
    let mut coll = Vec::new();
    for m in [meiko_cs2(), sparc20_cluster(), enterprise_smp()] {
        coll.extend(collectives_ablation(&m, &[2, 4, 8, 16]));
    }
    print!("{}", render_collectives(&coll));
    println!();
    let sizes: &[usize] = match scale {
        Scale::Paper => &[128, 256, 512, 1024, 2048],
        Scale::Test => &[32, 64, 128, 256],
        Scale::Large => &[64, 128, 256, 512],
    };
    let pts = grain_sweep(&meiko_cs2(), 8, sizes);
    print!("{}", render_grain("Meiko CS-2", 8, &pts));
}
