//! Loop fusion over IR loop nests.
//!
//! The peephole pass (pass 6) collapses *calls*; this pass collapses
//! *loops*: a producer whose only consumer is the next instruction in
//! the same block fuses into one instruction, eliminating the
//! full-matrix temporary between them (and the `Free` the frees pass
//! inserted for it). Three producer→consumer shapes fuse:
//!
//! 1. **ElemWise → ElemWise** — the producer's expression substitutes
//!    into the consumer's `Mat(tmp)` leaves: two element loops become
//!    one, with no temporary at all.
//! 2. **MatMul/MatVec → ElemWise** — the element-wise epilogue applies
//!    in place over the product buffer ([`Instr::MatMulEw`] /
//!    [`Instr::MatVecEw`]).
//! 3. **ElemWise → Reduce** — the reduction folds the producer's
//!    expression on the fly ([`Instr::ReduceEw`]); no temporary is
//!    materialized. Only allreduce-backed reductions fuse (`Trapz`
//!    needs a halo exchange over the materialized vector; `any`/`all`
//!    quantize through 0/1 first).
//!
//! Legality is deliberately strict: the temporary must be
//! compiler-generated (an `ML_tmp*` or an SSA rename containing
//! `"__"`), every read of it program-wide must sit inside the adjacent
//! consumer, and it must not escape as a function output. Producer and
//! consumer are adjacent, so fusing never reorders reads or writes —
//! results are bit-identical with fusion on or off. The pass runs
//! after `frees` (so the temporary's `Free` exists to consume) and
//! iterates to a fixed point so chains fuse end-to-end.

use otter_ir::*;
use std::collections::HashMap;

/// What one fusion run rewrote (exposed for the ablation bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// ElemWise → ElemWise substitutions (two loops → one).
    pub elemwise_chains: usize,
    /// MatMul → ElemWise epilogues.
    pub matmul_epilogues: usize,
    /// MatVec → ElemWise epilogues.
    pub matvec_epilogues: usize,
    /// ElemWise → Reduce on-the-fly folds.
    pub reduce_epilogues: usize,
    /// Full-matrix temporaries no longer materialized.
    pub temps_eliminated: usize,
    /// `Free` instructions consumed along with their temporaries.
    pub frees_consumed: usize,
}

impl FusionStats {
    pub fn fused(&self) -> usize {
        self.elemwise_chains + self.matmul_epilogues + self.matvec_epilogues + self.reduce_epilogues
    }
}

/// Fuse a program in place; returns what was rewritten.
pub fn fuse(p: &mut IrProgram) -> FusionStats {
    let mut stats = FusionStats::default();
    // One site per iteration: every rewrite invalidates the read
    // counts, so recount from scratch (programs are small).
    loop {
        let counts = read_counts(p);
        let mut fused = fuse_one(&mut p.main, &[], &counts, &mut stats);
        if !fused {
            for f in p.functions.values_mut() {
                let outs: Vec<String> = f.outs.iter().map(|(n, _)| n.clone()).collect();
                if fuse_one(&mut f.body, &outs, &counts, &mut stats) {
                    fused = true;
                    break;
                }
            }
        }
        if !fused {
            return stats;
        }
    }
}

/// A temporary the compiler made up (never a user variable).
fn eligible(name: &str) -> bool {
    name.starts_with("ML_tmp") || name.contains("__")
}

/// Read occurrences of every name across the whole program
/// (`Instr::reads` recurses into nested blocks; `Free` is not a read).
fn read_counts(p: &IrProgram) -> HashMap<String, usize> {
    let mut reads = Vec::new();
    for i in &p.main {
        i.reads(&mut reads);
    }
    for f in p.functions.values() {
        for i in &f.body {
            i.reads(&mut reads);
        }
    }
    let mut counts = HashMap::new();
    for r in reads {
        *counts.entry(r).or_insert(0) += 1;
    }
    counts
}

/// Occurrences of `Mat(name)` in an element-wise expression.
fn mat_uses(expr: &EwExpr, name: &str) -> usize {
    let mut mats = Vec::new();
    expr.mat_operands(&mut mats);
    mats.iter().filter(|m| m.as_str() == name).count()
}

/// Replace every `Mat(name)` leaf with a copy of `sub`.
fn substitute(expr: &EwExpr, name: &str, sub: &EwExpr) -> EwExpr {
    match expr {
        EwExpr::Mat(m) if m == name => sub.clone(),
        EwExpr::Mat(_) | EwExpr::Scalar(_) => expr.clone(),
        EwExpr::Neg(x) => EwExpr::Neg(Box::new(substitute(x, name, sub))),
        EwExpr::Not(x) => EwExpr::Not(Box::new(substitute(x, name, sub))),
        EwExpr::Bin(op, a, b) => EwExpr::Bin(
            *op,
            Box::new(substitute(a, name, sub)),
            Box::new(substitute(b, name, sub)),
        ),
        EwExpr::Call(f, args) => {
            EwExpr::Call(*f, args.iter().map(|a| substitute(a, name, sub)).collect())
        }
    }
}

/// Every program-wide read of `t` sits inside the adjacent consumer,
/// and `t` never escapes the block (function output).
fn dead_after(
    t: &str,
    uses_in_consumer: usize,
    counts: &HashMap<String, usize>,
    live_out: &[String],
) -> bool {
    eligible(t)
        && uses_in_consumer > 0
        && !live_out.iter().any(|n| n == t)
        && counts.get(t) == Some(&uses_in_consumer)
}

/// Reductions that fold through one allreduce of a running scalar.
fn fusible_reduction(op: RedOp) -> bool {
    matches!(
        op,
        RedOp::SumAll
            | RedOp::MeanAll
            | RedOp::MaxAll
            | RedOp::MinAll
            | RedOp::ProdAll
            | RedOp::Norm2
    )
}

/// Find one fusion site (left to right, outer before nested) and apply
/// it. Returns whether anything changed.
fn fuse_one(
    block: &mut Vec<Instr>,
    live_out: &[String],
    counts: &HashMap<String, usize>,
    stats: &mut FusionStats,
) -> bool {
    let mut i = 0;
    while i < block.len() {
        if i + 1 < block.len() {
            if let Some((fused, tmp)) = try_pair(&block[i], &block[i + 1], counts, live_out, stats)
            {
                block[i] = fused;
                block.remove(i + 1);
                // Consume the temporary's Free (present for ML_tmp*;
                // SSA renames never got one).
                if matches!(block.get(i + 1), Some(Instr::Free { name }) if *name == tmp) {
                    block.remove(i + 1);
                    stats.frees_consumed += 1;
                }
                stats.temps_eliminated += 1;
                return true;
            }
        }
        // Recurse into nested blocks.
        let nested = match &mut block[i] {
            Instr::If {
                then_body,
                else_body,
                ..
            } => {
                fuse_one(then_body, live_out, counts, stats)
                    || fuse_one(else_body, live_out, counts, stats)
            }
            Instr::While { pre, body, .. } => {
                // Global read counts already include the condition's
                // reads, so no extra liveness threading is needed.
                fuse_one(pre, live_out, counts, stats) || fuse_one(body, live_out, counts, stats)
            }
            Instr::For { body, .. } => fuse_one(body, live_out, counts, stats),
            _ => false,
        };
        if nested {
            return true;
        }
        i += 1;
    }
    false
}

/// Try the three producer→consumer shapes on one adjacent pair.
/// Returns the fused instruction and the eliminated temporary's name.
fn try_pair(
    producer: &Instr,
    consumer: &Instr,
    counts: &HashMap<String, usize>,
    live_out: &[String],
    stats: &mut FusionStats,
) -> Option<(Instr, String)> {
    match (producer, consumer) {
        // 1. ElemWise → ElemWise: substitute, two loops become one.
        (Instr::ElemWise { dst: t, expr: e1 }, Instr::ElemWise { dst, expr: e2 })
            if dead_after(t, mat_uses(e2, t), counts, live_out) =>
        {
            stats.elemwise_chains += 1;
            Some((
                Instr::ElemWise {
                    dst: dst.clone(),
                    expr: substitute(e2, t, e1),
                },
                t.clone(),
            ))
        }
        // 2. MatMul/MatVec → ElemWise: epilogue over the product.
        (Instr::MatMul { dst: t, a, b }, Instr::ElemWise { dst, expr })
            if dead_after(t, mat_uses(expr, t), counts, live_out) =>
        {
            stats.matmul_epilogues += 1;
            Some((
                Instr::MatMulEw {
                    dst: dst.clone(),
                    a: a.clone(),
                    b: b.clone(),
                    tmp: t.clone(),
                    expr: expr.clone(),
                },
                t.clone(),
            ))
        }
        (Instr::MatVec { dst: t, a, x }, Instr::ElemWise { dst, expr })
            if dead_after(t, mat_uses(expr, t), counts, live_out) =>
        {
            stats.matvec_epilogues += 1;
            Some((
                Instr::MatVecEw {
                    dst: dst.clone(),
                    a: a.clone(),
                    x: x.clone(),
                    tmp: t.clone(),
                    expr: expr.clone(),
                },
                t.clone(),
            ))
        }
        // 3. ElemWise → Reduce: fold the expression on the fly.
        (Instr::ElemWise { dst: t, expr }, Instr::Reduce { dst, op, m })
            if m == t && fusible_reduction(*op) && dead_after(t, 1, counts, live_out) =>
        {
            stats.reduce_epilogues += 1;
            Some((
                Instr::ReduceEw {
                    dst: dst.clone(),
                    op: *op,
                    tmp: t.clone(),
                    expr: expr.clone(),
                },
                t.clone(),
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(main: Vec<Instr>) -> IrProgram {
        IrProgram {
            main,
            ..Default::default()
        }
    }

    #[test]
    fn matmul_epilogue_fuses_and_consumes_free() {
        // tc kernel shape: c__1 = c*c; c = c__1 > 0 (SSA rename, no Free).
        let mut p = prog(vec![
            Instr::MatMul {
                dst: "ML_tmp1".into(),
                a: "c".into(),
                b: "c".into(),
            },
            Instr::ElemWise {
                dst: "c".into(),
                expr: EwExpr::bin(
                    EwOp::Gt,
                    EwExpr::mat("ML_tmp1"),
                    EwExpr::Scalar(SExpr::c(0.0)),
                ),
            },
            Instr::Free {
                name: "ML_tmp1".into(),
            },
        ]);
        let stats = fuse(&mut p);
        assert_eq!(stats.matmul_epilogues, 1);
        assert_eq!(stats.frees_consumed, 1);
        assert_eq!(p.main.len(), 1);
        assert!(matches!(&p.main[0], Instr::MatMulEw { dst, tmp, .. }
                if dst == "c" && tmp == "ML_tmp1"));
    }

    #[test]
    fn matvec_epilogue_fuses() {
        // cg residual: ML_tmp1 = A*x; r = b - ML_tmp1.
        let mut p = prog(vec![
            Instr::MatVec {
                dst: "ML_tmp1".into(),
                a: "A".into(),
                x: "x".into(),
            },
            Instr::ElemWise {
                dst: "r".into(),
                expr: EwExpr::bin(EwOp::Sub, EwExpr::mat("b"), EwExpr::mat("ML_tmp1")),
            },
            Instr::Free {
                name: "ML_tmp1".into(),
            },
        ]);
        let stats = fuse(&mut p);
        assert_eq!(stats.matvec_epilogues, 1);
        assert_eq!(p.main.len(), 1);
    }

    #[test]
    fn reduce_epilogue_fuses_norm2() {
        let mut p = prog(vec![
            Instr::ElemWise {
                dst: "ML_tmp2".into(),
                expr: EwExpr::bin(EwOp::Sub, EwExpr::mat("x"), EwExpr::mat("y")),
            },
            Instr::Reduce {
                dst: "d".into(),
                op: RedOp::Norm2,
                m: "ML_tmp2".into(),
            },
            Instr::Free {
                name: "ML_tmp2".into(),
            },
        ]);
        let stats = fuse(&mut p);
        assert_eq!(stats.reduce_epilogues, 1);
        assert_eq!(p.main.len(), 1);
        assert!(matches!(
            &p.main[0],
            Instr::ReduceEw {
                op: RedOp::Norm2,
                ..
            }
        ));
    }

    #[test]
    fn elemwise_chain_substitutes() {
        let mut p = prog(vec![
            Instr::ElemWise {
                dst: "ML_tmp1".into(),
                expr: EwExpr::bin(EwOp::Add, EwExpr::mat("a"), EwExpr::mat("b")),
            },
            Instr::ElemWise {
                dst: "c".into(),
                expr: EwExpr::bin(EwOp::Mul, EwExpr::mat("ML_tmp1"), EwExpr::mat("d")),
            },
            Instr::Free {
                name: "ML_tmp1".into(),
            },
        ]);
        let stats = fuse(&mut p);
        assert_eq!(stats.elemwise_chains, 1);
        assert_eq!(p.main.len(), 1);
        let Instr::ElemWise { expr, .. } = &p.main[0] else {
            panic!("expected one fused elemwise: {:?}", p.main)
        };
        assert_eq!(mat_uses(expr, "a"), 1);
        assert_eq!(mat_uses(expr, "ML_tmp1"), 0);
    }

    #[test]
    fn chains_fuse_to_a_fixed_point() {
        // t1 = a + b; t2 = t1 * t1; s = sum(t2) → one ReduceEw.
        let mut p = prog(vec![
            Instr::ElemWise {
                dst: "ML_tmp1".into(),
                expr: EwExpr::bin(EwOp::Add, EwExpr::mat("a"), EwExpr::mat("b")),
            },
            Instr::ElemWise {
                dst: "ML_tmp2".into(),
                expr: EwExpr::bin(EwOp::Mul, EwExpr::mat("ML_tmp1"), EwExpr::mat("ML_tmp1")),
            },
            Instr::Reduce {
                dst: "s".into(),
                op: RedOp::SumAll,
                m: "ML_tmp2".into(),
            },
            Instr::Free {
                name: "ML_tmp2".into(),
            },
        ]);
        let stats = fuse(&mut p);
        assert_eq!(stats.elemwise_chains, 1);
        assert_eq!(stats.reduce_epilogues, 1);
        assert_eq!(p.main.len(), 1);
        assert!(matches!(&p.main[0], Instr::ReduceEw { .. }));
    }

    #[test]
    fn user_variables_never_fuse() {
        let mut p = prog(vec![
            Instr::MatMul {
                dst: "u".into(),
                a: "a".into(),
                b: "b".into(),
            },
            Instr::ElemWise {
                dst: "v".into(),
                expr: EwExpr::bin(EwOp::Gt, EwExpr::mat("u"), EwExpr::Scalar(SExpr::c(0.0))),
            },
        ]);
        assert_eq!(fuse(&mut p).fused(), 0);
    }

    #[test]
    fn temp_with_later_reader_stays() {
        let mut p = prog(vec![
            Instr::MatMul {
                dst: "ML_tmp1".into(),
                a: "a".into(),
                b: "b".into(),
            },
            Instr::ElemWise {
                dst: "c".into(),
                expr: EwExpr::bin(
                    EwOp::Gt,
                    EwExpr::mat("ML_tmp1"),
                    EwExpr::Scalar(SExpr::c(0.0)),
                ),
            },
            Instr::Reduce {
                dst: "s".into(),
                op: RedOp::SumAll,
                m: "ML_tmp1".into(),
            },
        ]);
        assert_eq!(fuse(&mut p).fused(), 0);
    }

    #[test]
    fn halo_reductions_do_not_fuse() {
        let mut p = prog(vec![
            Instr::ElemWise {
                dst: "ML_tmp1".into(),
                expr: EwExpr::bin(EwOp::Mul, EwExpr::mat("x"), EwExpr::mat("x")),
            },
            Instr::Reduce {
                dst: "s".into(),
                op: RedOp::Trapz,
                m: "ML_tmp1".into(),
            },
        ]);
        assert_eq!(fuse(&mut p).fused(), 0);
    }

    #[test]
    fn fuses_inside_loops() {
        let mut p = prog(vec![Instr::While {
            pre: vec![],
            cond: SExpr::bin(SBinOp::Gt, SExpr::var("d"), SExpr::c(0.5)),
            body: vec![
                Instr::MatVec {
                    dst: "ML_tmp1".into(),
                    a: "A".into(),
                    x: "x".into(),
                },
                Instr::ElemWise {
                    dst: "r".into(),
                    expr: EwExpr::bin(EwOp::Sub, EwExpr::mat("b"), EwExpr::mat("ML_tmp1")),
                },
                Instr::Free {
                    name: "ML_tmp1".into(),
                },
            ],
        }]);
        let stats = fuse(&mut p);
        assert_eq!(stats.matvec_epilogues, 1);
        let Instr::While { body, .. } = &p.main[0] else {
            panic!()
        };
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn multiple_consumer_occurrences_fuse() {
        // d = t .* t where t is the product: both leaves read the
        // product buffer before each element is overwritten.
        let mut p = prog(vec![
            Instr::MatMul {
                dst: "ML_tmp1".into(),
                a: "a".into(),
                b: "b".into(),
            },
            Instr::ElemWise {
                dst: "d".into(),
                expr: EwExpr::bin(EwOp::Mul, EwExpr::mat("ML_tmp1"), EwExpr::mat("ML_tmp1")),
            },
            Instr::Free {
                name: "ML_tmp1".into(),
            },
        ]);
        let stats = fuse(&mut p);
        assert_eq!(stats.matmul_epilogues, 1);
        assert_eq!(p.main.len(), 1);
    }
}
