//! Postmortem bundles for deadlocked jobs: the serialized wait-for
//! snapshot must let `diagnose_cycle` reproduce the blocking cycle
//! offline, and every cycle rank's flight tail must end with the
//! events of its death — so a bundle alone, with no live job, tells
//! the whole story.

use otter_core::{
    build_postmortem, compile, parse_postmortem, try_run, EngineOptions, RunRequest, SpmdJobFailure,
};
use otter_log::JobId;
use otter_machine::meiko_cs2;
use otter_mpi::{run_spmd_with, FaultPlan, SpmdOptions, WaitEdge};

/// Enough cross-rank traffic that one dropped packet strands everyone.
const SRC: &str = "a = ones(32, 32);\nb = a * a;\ns = sum(b(:, 1));";

/// The last two flight events of a rank that died deadlocked must be
/// the deadlock diagnosis followed by the rank's failure marker.
fn assert_dies_deadlocked(summary: &otter_core::PostmortemSummary, rank: usize) {
    let tail = summary
        .flight
        .iter()
        .find(|f| f.rank == rank)
        .unwrap_or_else(|| panic!("rank {rank} must have a flight tail"));
    let codes: Vec<&str> = tail.events.iter().map(|e| e.code.as_str()).collect();
    assert!(
        codes.ends_with(&["comm.deadlock", "rank.failed"]),
        "rank {rank}: final events must record the deadlock, got {codes:?}"
    );
}

/// The canonical PR-5 fixture — two ranks each blocked receiving from
/// the other — run at the substrate layer, then wrapped the same way
/// the engine wraps failures, bundled, and re-diagnosed offline.
#[test]
fn recv_recv_cycle_bundle_rediagnoses_the_exact_cycle_offline() {
    let opts = SpmdOptions {
        job_id: JobId::mint(),
        ..SpmdOptions::default()
    };
    let failure = run_spmd_with(&meiko_cs2(), 2, opts.clone(), |c| {
        let peer = 1 - c.rank();
        let v = c.recv(peer)?; // nobody ever sends
        c.send(peer, &v)?;
        Ok(())
    })
    .unwrap_err();
    let mut flight: Vec<_> = failure
        .report
        .failures
        .iter()
        .map(|f| (f.rank, f.flight.clone()))
        .chain(failure.survivors.iter().map(|r| (r.rank, r.flight.clone())))
        .collect();
    flight.sort_by_key(|&(rank, _)| rank);
    let job_failure = SpmdJobFailure {
        job_id: opts.job_id,
        report: failure.report,
        survivors: Vec::new(),
        flight,
        metrics: None,
    };
    // Any artifact supplies the provenance hashes; the failure is the
    // substrate fixture's.
    let artifact = compile(SRC, &EngineOptions::default()).expect("compiles");
    let bundle = build_postmortem(&artifact, &job_failure);
    let summary = parse_postmortem(&bundle.to_string()).expect("bundle parses");

    assert_eq!(summary.job_id, opts.job_id);
    assert_eq!(summary.root_cause_code, "deadlock");
    // Offline re-diagnosis over the serialized snapshot finds the
    // canonical 2-cycle — exactly the edges the live detector saw.
    let cycle = summary.diagnose_cycle().expect("cycle must reproduce");
    assert_eq!(
        cycle,
        vec![
            WaitEdge {
                waiter: 0,
                waiting_on: 1
            },
            WaitEdge {
                waiter: 1,
                waiting_on: 0
            },
        ]
    );
    for edge in &cycle {
        assert_dies_deadlocked(&summary, edge.waiter);
    }
}

/// The full engine path: a fault plan drops one packet of a compiled
/// app, the job deadlocks, and the bundle built from the resulting
/// [`SpmdJobFailure`] re-diagnoses the cycle with no live state.
#[test]
fn dropped_packet_deadlock_bundles_an_offline_reproducible_cycle() {
    let opts = EngineOptions::builder()
        .faults(FaultPlan::new().drop_message(0, 1, 0))
        .build();
    let artifact = compile(SRC, &opts).expect("compiles");
    let failure = try_run(&artifact, &RunRequest::on(meiko_cs2(), 2))
        .expect("no driver error")
        .expect_err("the dropped packet must strand the job");

    assert_eq!(failure.report.root_cause().error.code(), "deadlock");
    let bundle = build_postmortem(&artifact, &failure);
    let summary = parse_postmortem(&bundle.to_string()).expect("bundle parses");
    assert_eq!(summary.job_id, failure.job_id);
    assert_ne!(summary.job_id.0, 0, "engine runs are always correlated");
    assert_eq!(
        summary.source_hash,
        format!("{:016x}", artifact.source_hash())
    );
    // The serialized snapshot alone reproduces a cycle, and every rank
    // on it is a failed rank whose tail records its deadlocked death.
    let cycle = summary.diagnose_cycle().expect("cycle must reproduce");
    assert!(!cycle.is_empty());
    let failed: Vec<usize> = summary.failures.iter().map(|f| f.0).collect();
    for edge in &cycle {
        assert!(failed.contains(&edge.waiter), "{edge} not a failed rank");
        assert_dies_deadlocked(&summary, edge.waiter);
    }
}
