//! Figures 2–6: the performance experiments.
//!
//! All figures normalize against the MathWorks-interpreter stand-in
//! running on a single CPU of the *same* machine, matching the paper's
//! "speedup over MATLAB" axes.

use otter_apps::App;
use otter_core::{
    compile, run, run_engine, standard_engines, CompiledArtifact, EngineOptions, EngineReport,
    RunRequest,
};
use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster, workstation, Machine};
use std::collections::BTreeMap;

/// Run a compiled artifact on `p` CPUs of `machine`.
pub(crate) fn run_compiled(
    artifact: &CompiledArtifact,
    machine: &Machine,
    p: usize,
) -> otter_core::error::Result<EngineReport> {
    run(artifact, &RunRequest::on(machine.clone(), p))
}

/// Which problem sizes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale problems (n = 2048 CG, 5 000 particles, 512² TC).
    Paper,
    /// Scaled-down problems for CI and debug builds.
    Test,
    /// Between test and paper: large enough that kernel wall time
    /// dominates dispatch overhead, so the wall-time bench gate sees
    /// kernel wins and regressions above noise.
    Large,
}

impl Scale {
    pub fn apps(self) -> Vec<App> {
        match self {
            Scale::Paper => otter_apps::paper_apps(),
            Scale::Test => otter_apps::test_apps(),
            Scale::Large => otter_apps::large_apps(),
        }
    }
}

/// One engine's measurements in a Figure 2 row: relative performance
/// plus the uniform [`EngineReport`] counters.
#[derive(Debug, Clone)]
pub struct Fig2Cell {
    /// Speedup over the interpreter (interpreter ≡ 1.0).
    pub relative: f64,
    /// Modeled seconds on one CPU.
    pub seconds: f64,
    /// Per-opcode executed-operation counts.
    pub op_counts: BTreeMap<String, u64>,
    /// Messages sent (0 for sequential engines).
    pub messages: u64,
    /// Bytes sent (0 for sequential engines).
    pub bytes: u64,
}

impl Fig2Cell {
    fn from_report(r: &EngineReport, t0: f64) -> Self {
        Fig2Cell {
            relative: t0 / r.modeled_seconds,
            seconds: r.modeled_seconds,
            op_counts: r.op_counts.clone(),
            messages: r.messages,
            bytes: r.bytes,
        }
    }

    /// Total executed operations over all opcodes.
    pub fn total_ops(&self) -> u64 {
        self.op_counts.values().sum()
    }
}

/// One row of Figure 2: relative single-CPU performance
/// (interpreter ≡ 1.0; higher is faster).
#[derive(Debug, Clone)]
pub struct Fig2Row {
    pub app: String,
    pub interpreter: Fig2Cell,
    pub matcom: Fig2Cell,
    pub otter: Fig2Cell,
}

impl Fig2Row {
    /// The row's cells with their engine names, in figure order.
    pub fn cells(&self) -> [(&'static str, &Fig2Cell); 3] {
        [
            ("interpreter", &self.interpreter),
            ("matcom", &self.matcom),
            ("otter", &self.otter),
        ]
    }
}

/// Figure 2 — relative performance of the three systems on one
/// UltraSPARC CPU. Every engine runs behind the [`Engine`] trait and
/// reports through the same [`EngineReport`] schema.
pub fn fig2(scale: Scale) -> Vec<Fig2Row> {
    fig2_with(scale, &EngineOptions::default())
}

/// [`fig2`] with explicit engine options — lets tests assert that
/// turning observability knobs on leaves the figure byte-identical.
pub fn fig2_with(scale: Scale, opts: &EngineOptions) -> Vec<Fig2Row> {
    let ws = workstation();
    scale
        .apps()
        .iter()
        .map(|app| {
            let mut reports: BTreeMap<&'static str, EngineReport> = BTreeMap::new();
            for mut engine in standard_engines(opts) {
                let name = engine.name();
                let r = run_engine(engine.as_mut(), &app.script, &ws, 1)
                    .unwrap_or_else(|e| panic!("{}: {name}: {e}", app.id));
                reports.insert(name, r);
            }
            let t0 = reports["interpreter"].modeled_seconds;
            Fig2Row {
                app: app.name.to_string(),
                interpreter: Fig2Cell::from_report(&reports["interpreter"], t0),
                matcom: Fig2Cell::from_report(&reports["matcom"], t0),
                otter: Fig2Cell::from_report(&reports["otter"], t0),
            }
        })
        .collect()
}

/// One machine's speedup curve.
#[derive(Debug, Clone)]
pub struct SpeedupSeries {
    pub machine: String,
    /// (CPU count, speedup over the interpreter on one CPU of this
    /// machine).
    pub points: Vec<(usize, f64)>,
}

/// One figure: an application's speedup on all three architectures.
#[derive(Debug, Clone)]
pub struct FigureData {
    pub figure: &'static str,
    pub app: String,
    pub series: Vec<SpeedupSeries>,
    /// Total messages at the largest CPU count on the first machine
    /// (reported in EXPERIMENTS.md).
    pub messages_at_max: u64,
}

/// CPU counts swept on a machine (powers of two up to its size).
pub fn cpu_sweep(machine: &Machine) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 1;
    while p <= machine.max_cpus {
        out.push(p);
        p *= 2;
    }
    out
}

/// Figures 3–6 — one application's speedup over the interpreter on the
/// three modeled parallel machines.
pub fn speedup_figure(figure: &'static str, app: &App) -> FigureData {
    let machines = [meiko_cs2(), sparc20_cluster(), enterprise_smp()];
    let compiled = compile(&app.script, &EngineOptions::default())
        .unwrap_or_else(|e| panic!("{}: compile: {e}", app.id));
    let mut series = Vec::new();
    let mut messages_at_max = 0;
    for m in &machines {
        let interp = run_engine(
            &mut otter_core::InterpreterEngine::new(EngineOptions::default()),
            &app.script,
            m,
            1,
        )
        .unwrap_or_else(|e| panic!("{}: interp: {e}", app.id));
        let t0 = interp.modeled_seconds;
        let mut points = Vec::new();
        for p in cpu_sweep(m) {
            let run =
                run_compiled(&compiled, m, p).unwrap_or_else(|e| panic!("{}: p={p}: {e}", app.id));
            points.push((p, t0 / run.modeled_seconds));
            if m.name.contains("Meiko") && p == m.max_cpus {
                messages_at_max = run.messages;
            }
        }
        series.push(SpeedupSeries {
            machine: m.name.clone(),
            points,
        });
    }
    FigureData {
        figure,
        app: app.name.to_string(),
        series,
        messages_at_max,
    }
}

/// The four speedup figures in paper order.
pub fn all_speedup_figures(scale: Scale) -> Vec<FigureData> {
    let apps = scale.apps();
    let find = |id: &str| apps.iter().find(|a| a.id == id).unwrap();
    vec![
        speedup_figure("Figure 3", find("cg")),
        speedup_figure("Figure 4", find("ocean")),
        speedup_figure("Figure 5", find("nbody")),
        speedup_figure("Figure 6", find("tc")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_otter_beats_interpreter_everywhere() {
        for row in fig2(Scale::Test) {
            assert!(
                row.otter.relative > 1.0,
                "{}: Otter must outperform the interpreter (got {})",
                row.app,
                row.otter.relative
            );
            assert!(
                row.matcom.relative > 1.0,
                "{}: MATCOM must too ({})",
                row.app,
                row.matcom.relative
            );
            assert_eq!(row.interpreter.relative, 1.0);
        }
    }

    #[test]
    fn fig2_rows_carry_engine_counters() {
        for row in fig2(Scale::Test) {
            for (name, cell) in row.cells() {
                assert!(cell.total_ops() > 0, "{}: {name} op_counts empty", row.app);
                assert!(cell.seconds > 0.0, "{}: {name}", row.app);
            }
            // Sequential engines never touch the network.
            assert_eq!(row.interpreter.messages, 0, "{}", row.app);
            assert_eq!(row.matcom.bytes, 0, "{}", row.app);
        }
    }

    #[test]
    fn cpu_sweeps_match_machines() {
        assert_eq!(cpu_sweep(&meiko_cs2()), vec![1, 2, 4, 8, 16]);
        assert_eq!(cpu_sweep(&enterprise_smp()), vec![1, 2, 4, 8]);
    }

    #[test]
    fn transitive_closure_scales_best() {
        // Figure 6 vs Figures 4/5: at max Meiko CPUs, the O(n³) app
        // must show more speedup than the O(n) apps.
        let apps = Scale::Test.apps();
        let tc = speedup_figure("f6", apps.iter().find(|a| a.id == "tc").unwrap());
        let ocean = speedup_figure("f4", apps.iter().find(|a| a.id == "ocean").unwrap());
        let tc_max = tc.series[0].points.last().unwrap().1;
        let ocean_max = ocean.series[0].points.last().unwrap().1;
        assert!(
            tc_max > ocean_max,
            "TC speedup {tc_max} should beat ocean {ocean_max} on the Meiko"
        );
    }
}
