//! Pass 6 — peephole optimization (paper §3): "looking for ways in
//! which a sequence of run-time library calls can be replaced by a
//! single call."
//!
//! Three rewrites, each applied to every block recursively:
//!
//! 1. **Copy collapse** — a run-time call into `ML_tmpK` immediately
//!    followed by a plain copy `x = ML_tmpK` (and no later use of the
//!    temp) retargets the call at `x` and drops the copy.
//! 2. **Scalar collapse** — likewise for scalar temporaries
//!    (`ML_tmpK = dot(...); x = ML_tmpK;` → `x = dot(...)`).
//! 3. **Dot fusion** — an element-wise multiply whose only consumer is
//!    a full-sum reduction becomes one fused `ML_dot` call, halving
//!    both the memory traffic and the loop count of the classic
//!    `sum(a .* b)` idiom.

use otter_ir::*;

/// Statistics from one peephole run (exposed for the ablation bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeepholeStats {
    pub copies_collapsed: usize,
    pub scalars_collapsed: usize,
    pub dots_fused: usize,
    pub dead_removed: usize,
}

/// Optimize a program in place; returns what was rewritten.
pub fn peephole(p: &mut IrProgram) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    optimize_block(&mut p.main, &[], &mut stats);
    for f in p.functions.values_mut() {
        // Function outputs are live on exit.
        let outs: Vec<String> = f.outs.iter().map(|(n, _)| n.clone()).collect();
        optimize_block(&mut f.body, &outs, &mut stats);
    }
    stats
}

/// `live_out` — names read *after* this block by the enclosing
/// construct: a `while` condition's variables for its pre/body blocks,
/// the function outputs for a function body. Everything a rewrite
/// wants to treat as dead must also be absent from this set.
fn optimize_block(block: &mut Vec<Instr>, live_out: &[String], stats: &mut PeepholeStats) {
    // Recurse into nested blocks first.
    for instr in block.iter_mut() {
        match instr {
            Instr::If {
                then_body,
                else_body,
                ..
            } => {
                optimize_block(then_body, live_out, stats);
                optimize_block(else_body, live_out, stats);
            }
            Instr::While { pre, cond, body } => {
                // The condition executes after the pre-block (and the
                // pre-block re-executes after the body), so its inputs
                // are live-out of both.
                let mut live = live_out.to_vec();
                sexpr_reads(cond, &mut live);
                // The pre-block also re-reads whatever it reads.
                let mut pre_reads = Vec::new();
                for i in pre.iter() {
                    reads_of(i, &mut pre_reads);
                }
                let mut body_live = live.clone();
                body_live.extend(pre_reads);
                optimize_block(pre, &live, stats);
                optimize_block(body, &body_live, stats);
            }
            Instr::For { body, .. } => optimize_block(body, live_out, stats),
            _ => {}
        }
    }
    // Iterate local rewrites until a fixed point.
    loop {
        let before = *stats;
        collapse_pairs(block, live_out, stats);
        fuse_dots(block, live_out, stats);
        eliminate_dead(block, live_out, stats);
        if *stats == before {
            break;
        }
    }
}

/// Can an instruction be dropped if its destination is never read?
/// Communication-bearing instructions are safe to drop *uniformly*
/// (every rank executes the same IR, so all ranks drop together);
/// `Rand` initializers are kept because deleting one would shift the
/// seeded stream of later `rand` calls.
fn is_pure(instr: &Instr) -> bool {
    match instr {
        Instr::AssignScalar { .. }
        | Instr::CopyMatrix { .. }
        | Instr::ElemWise { .. }
        | Instr::MatMul { .. }
        | Instr::MatVec { .. }
        | Instr::Outer { .. }
        | Instr::Transpose { .. }
        | Instr::BroadcastElem { .. }
        | Instr::Reduce { .. }
        | Instr::Dot { .. }
        | Instr::TrapzXY { .. }
        | Instr::ColReduce { .. }
        | Instr::Shift { .. }
        | Instr::ExtractRow { .. }
        | Instr::ExtractCol { .. }
        | Instr::ExtractRange { .. }
        | Instr::ExtractStrided { .. } => true,
        Instr::InitMatrix { init, .. } => !matches!(init, MatInit::Rand { .. }),
        _ => false,
    }
}

/// Drop pure instructions whose temp destination is never read.
fn eliminate_dead(block: &mut Vec<Instr>, live_out: &[String], stats: &mut PeepholeStats) {
    let mut i = 0;
    while i < block.len() {
        let removable = is_pure(&block[i])
            && match dst_of(&block[i]) {
                Some(d) => {
                    is_temp(&d) && !used_later(&d, &block[i + 1..]) && !live_out.contains(&d)
                }
                None => false,
            };
        if removable {
            block.remove(i);
            stats.dead_removed += 1;
        } else {
            i += 1;
        }
    }
}

fn is_temp(name: &str) -> bool {
    name.starts_with("ML_tmp")
}

/// All variable names an instruction *reads* (conservatively includes
/// nested blocks). Thin crate-wide alias over [`Instr::reads`], which
/// moved into `otter-ir` so the lint analyses share the exact same
/// liveness facts as the rewrites here.
pub(crate) fn instr_reads(instr: &Instr, out: &mut Vec<String>) {
    instr.reads(out)
}

/// The destination an instruction writes, if any (crate-wide alias
/// over [`Instr::dst`]).
pub(crate) fn instr_dst(instr: &Instr) -> Option<String> {
    dst_of(instr)
}

fn reads_of(instr: &Instr, out: &mut Vec<String>) {
    instr.reads(out)
}

fn dst_of(instr: &Instr) -> Option<String> {
    instr.dst().map(str::to_string)
}

fn dst_of_mut(instr: &mut Instr) -> Option<&mut String> {
    instr.dst_mut()
}

/// Is a temp read anywhere in `rest`? (Temps are single-assignment by
/// construction, so reads are the only conflict.)
fn used_later(name: &str, rest: &[Instr]) -> bool {
    let mut reads = Vec::new();
    for i in rest {
        reads_of(i, &mut reads);
    }
    reads.iter().any(|r| r == name)
}

/// Rewrites 1 and 2: call-into-temp + copy-out-of-temp.
fn collapse_pairs(block: &mut Vec<Instr>, live_out: &[String], stats: &mut PeepholeStats) {
    let mut i = 0;
    while i + 1 < block.len() {
        let collapse = match (&block[i], &block[i + 1]) {
            (first, Instr::CopyMatrix { dst, src })
                if is_temp(src)
                    && dst_of(first).as_deref() == Some(src)
                    && !used_later(src, &block[i + 2..])
                    && !live_out.contains(src)
                    && dst != src =>
            {
                Some((dst.clone(), false))
            }
            (
                first,
                Instr::ElemWise {
                    dst,
                    expr: EwExpr::Mat(src),
                },
            ) if is_temp(src)
                && dst_of(first).as_deref() == Some(src.as_str())
                && !used_later(src, &block[i + 2..])
                && !live_out.contains(src)
                && dst != src =>
            {
                Some((dst.clone(), false))
            }
            (
                first,
                Instr::AssignScalar {
                    dst,
                    src: SExpr::Var(src),
                },
            ) if is_temp(src)
                && dst_of(first).as_deref() == Some(src.as_str())
                && !used_later(src, &block[i + 2..])
                && !live_out.contains(src)
                && dst != src =>
            {
                Some((dst.clone(), true))
            }
            _ => None,
        };
        if let Some((new_dst, scalar)) = collapse {
            if let Some(d) = dst_of_mut(&mut block[i]) {
                *d = new_dst;
            }
            block.remove(i + 1);
            if scalar {
                stats.scalars_collapsed += 1;
            } else {
                stats.copies_collapsed += 1;
            }
            // Re-examine the same position.
            continue;
        }
        i += 1;
    }
}

/// Rewrite 3: `t = a .* b; s = sum(t)` → `s = dot(a, b)`.
fn fuse_dots(block: &mut Vec<Instr>, live_out: &[String], stats: &mut PeepholeStats) {
    let mut i = 0;
    while i + 1 < block.len() {
        let fused = match (&block[i], &block[i + 1]) {
            (
                Instr::ElemWise { dst: t, expr },
                Instr::Reduce {
                    dst,
                    op: RedOp::SumAll,
                    m,
                },
            ) if t == m
                && is_temp(t)
                && !used_later(t, &block[i + 2..])
                && !live_out.contains(t) =>
            {
                if let EwExpr::Bin(EwOp::Mul, a, b) = expr {
                    if let (EwExpr::Mat(a), EwExpr::Mat(b)) = (a.as_ref(), b.as_ref()) {
                        Some(Instr::Dot {
                            dst: dst.clone(),
                            a: a.clone(),
                            b: b.clone(),
                        })
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(instr) = fused {
            block[i] = instr;
            block.remove(i + 1);
            stats.dots_fused += 1;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(main: Vec<Instr>) -> IrProgram {
        IrProgram {
            main,
            ..Default::default()
        }
    }

    #[test]
    fn collapses_matmul_copy() {
        let mut p = prog(vec![
            Instr::MatMul {
                dst: "ML_tmp1".into(),
                a: "b".into(),
                b: "c".into(),
            },
            Instr::CopyMatrix {
                dst: "a".into(),
                src: "ML_tmp1".into(),
            },
        ]);
        let stats = peephole(&mut p);
        assert_eq!(stats.copies_collapsed, 1);
        assert_eq!(
            p.main,
            vec![Instr::MatMul {
                dst: "a".into(),
                a: "b".into(),
                b: "c".into()
            }]
        );
    }

    #[test]
    fn keeps_copy_when_temp_reused() {
        let mut p = prog(vec![
            Instr::MatMul {
                dst: "ML_tmp1".into(),
                a: "b".into(),
                b: "c".into(),
            },
            Instr::CopyMatrix {
                dst: "a".into(),
                src: "ML_tmp1".into(),
            },
            Instr::Reduce {
                dst: "s".into(),
                op: RedOp::SumAll,
                m: "ML_tmp1".into(),
            },
        ]);
        let stats = peephole(&mut p);
        assert_eq!(stats.copies_collapsed, 0);
        assert_eq!(p.main.len(), 3);
    }

    #[test]
    fn collapses_scalar_temp() {
        let mut p = prog(vec![
            Instr::Dot {
                dst: "ML_tmp2".into(),
                a: "r".into(),
                b: "r".into(),
            },
            Instr::AssignScalar {
                dst: "rho".into(),
                src: SExpr::var("ML_tmp2"),
            },
        ]);
        let stats = peephole(&mut p);
        assert_eq!(stats.scalars_collapsed, 1);
        assert_eq!(
            p.main,
            vec![Instr::Dot {
                dst: "rho".into(),
                a: "r".into(),
                b: "r".into()
            }]
        );
    }

    #[test]
    fn fuses_multiply_sum_into_dot() {
        let mut p = prog(vec![
            Instr::ElemWise {
                dst: "ML_tmp1".into(),
                expr: EwExpr::bin(EwOp::Mul, EwExpr::mat("x"), EwExpr::mat("y")),
            },
            Instr::Reduce {
                dst: "ML_tmp2".into(),
                op: RedOp::SumAll,
                m: "ML_tmp1".into(),
            },
            Instr::AssignScalar {
                dst: "d".into(),
                src: SExpr::var("ML_tmp2"),
            },
        ]);
        let stats = peephole(&mut p);
        assert_eq!(stats.dots_fused, 1);
        assert_eq!(stats.scalars_collapsed, 1);
        assert_eq!(
            p.main,
            vec![Instr::Dot {
                dst: "d".into(),
                a: "x".into(),
                b: "y".into()
            }]
        );
    }

    #[test]
    fn does_not_fuse_when_product_is_reused() {
        let mut p = prog(vec![
            Instr::ElemWise {
                dst: "ML_tmp1".into(),
                expr: EwExpr::bin(EwOp::Mul, EwExpr::mat("x"), EwExpr::mat("y")),
            },
            Instr::Reduce {
                dst: "s".into(),
                op: RedOp::SumAll,
                m: "ML_tmp1".into(),
            },
            Instr::Reduce {
                dst: "t".into(),
                op: RedOp::MaxAll,
                m: "ML_tmp1".into(),
            },
        ]);
        let stats = peephole(&mut p);
        assert_eq!(stats.dots_fused, 0);
        assert_eq!(p.main.len(), 3);
    }

    #[test]
    fn optimizes_inside_loops() {
        let mut p = prog(vec![Instr::For {
            var: "i".into(),
            start: SExpr::c(1.0),
            step: SExpr::c(1.0),
            stop: SExpr::c(10.0),
            body: vec![
                Instr::MatVec {
                    dst: "ML_tmp1".into(),
                    a: "A".into(),
                    x: "p".into(),
                },
                Instr::CopyMatrix {
                    dst: "q".into(),
                    src: "ML_tmp1".into(),
                },
            ],
        }]);
        let stats = peephole(&mut p);
        assert_eq!(stats.copies_collapsed, 1);
        let Instr::For { body, .. } = &p.main[0] else {
            panic!()
        };
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn dead_temps_are_removed() {
        let mut p = prog(vec![
            Instr::Transpose {
                dst: "ML_tmp3".into(),
                a: "v".into(),
            },
            Instr::Dot {
                dst: "d".into(),
                a: "v".into(),
                b: "w".into(),
            },
        ]);
        let stats = peephole(&mut p);
        assert_eq!(stats.dead_removed, 1);
        assert_eq!(
            p.main,
            vec![Instr::Dot {
                dst: "d".into(),
                a: "v".into(),
                b: "w".into()
            }]
        );
    }

    #[test]
    fn rand_init_never_removed() {
        let mut p = prog(vec![
            Instr::InitMatrix {
                dst: "ML_tmp1".into(),
                init: MatInit::Rand {
                    rows: SExpr::c(4.0),
                    cols: SExpr::c(4.0),
                },
            },
            Instr::InitMatrix {
                dst: "a".into(),
                init: MatInit::Rand {
                    rows: SExpr::c(4.0),
                    cols: SExpr::c(4.0),
                },
            },
        ]);
        let stats = peephole(&mut p);
        assert_eq!(
            stats.dead_removed, 0,
            "removing rand would shift later streams"
        );
        assert_eq!(p.main.len(), 2);
    }

    #[test]
    fn live_temps_are_kept() {
        let mut p = prog(vec![
            Instr::Transpose {
                dst: "ML_tmp3".into(),
                a: "v".into(),
            },
            Instr::Dot {
                dst: "d".into(),
                a: "ML_tmp3".into(),
                b: "w".into(),
            },
        ]);
        let stats = peephole(&mut p);
        assert_eq!(stats.dead_removed, 0);
        assert_eq!(p.main.len(), 2);
    }

    #[test]
    fn non_temp_sources_untouched() {
        let mut p = prog(vec![
            Instr::MatMul {
                dst: "x".into(),
                a: "b".into(),
                b: "c".into(),
            },
            Instr::CopyMatrix {
                dst: "a".into(),
                src: "x".into(),
            },
        ]);
        let stats = peephole(&mut p);
        assert_eq!(stats.copies_collapsed, 0);
        assert_eq!(p.main.len(), 2);
    }
}
