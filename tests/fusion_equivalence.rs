//! Loop fusion and kernel tiling are pure optimizations: for a fixed
//! processor count they may not change a single result bit, and fusion
//! may only ever *lower* the temporary-memory high-water mark. These
//! properties let the fusion pass default to on without invalidating
//! any figure, golden file, or cached artifact result.

mod common;

use common::run_compiled;
use otter_core::{compile, EngineOptions, EngineReport};
use otter_machine::meiko_cs2;

/// FNV-1a over every result variable's dimensions and element bits —
/// byte-identical runs hash identically, any flipped bit does not.
fn result_fingerprint(app: &otter_apps::App, report: &EngineReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for v in &app.result_vars {
        eat(v.as_bytes());
        let m = report
            .workspace
            .get(*v)
            .and_then(|val| val.to_matrix())
            .unwrap_or_else(|| panic!("{}: missing result `{v}`", app.id));
        eat(&(m.rows() as u64).to_le_bytes());
        eat(&(m.cols() as u64).to_le_bytes());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                eat(&m.get(r, c).to_bits().to_le_bytes());
            }
        }
    }
    h
}

fn run_with(app: &otter_apps::App, opts: &EngineOptions, p: usize) -> EngineReport {
    let compiled =
        compile(&app.script, opts).unwrap_or_else(|e| panic!("{}: compile: {e}", app.id));
    run_compiled(&compiled, &meiko_cs2(), p).unwrap_or_else(|e| panic!("{}: p={p}: {e}", app.id))
}

#[test]
fn fusion_and_tiling_never_change_a_result_bit() {
    // Every knob combination — fusion on/off crossed with degenerate,
    // small, and default k-tiles — at every processor count, on all
    // four benchmark apps: one fingerprint per (app, p).
    for app in otter_apps::test_apps() {
        for p in [1usize, 2, 4, 8] {
            let reference = result_fingerprint(&app, &run_with(&app, &EngineOptions::default(), p));
            for fusion in [true, false] {
                for tile in [1usize, 8, 64] {
                    let opts = EngineOptions::builder()
                        .fusion(fusion)
                        .tile_size(tile)
                        .build();
                    let got = result_fingerprint(&app, &run_with(&app, &opts, p));
                    assert_eq!(
                        got, reference,
                        "{} p={p}: fusion={fusion} tile={tile} changed result bits",
                        app.id
                    );
                }
            }
        }
    }
}

#[test]
fn fusion_never_raises_the_workspace_peak() {
    // Fusion eliminates full-matrix temporaries; the per-rank
    // allocator high-water mark must never grow because of it.
    for app in otter_apps::test_apps() {
        for p in [1usize, 4] {
            let peak = |fusion: bool| {
                let opts = EngineOptions::builder()
                    .metrics(true)
                    .fusion(fusion)
                    .build();
                let report = run_with(&app, &opts, p);
                report
                    .metrics
                    .as_ref()
                    .and_then(|m| m.gauge("workspace_peak_bytes", &[]))
                    .unwrap_or_else(|| panic!("{}: no workspace_peak_bytes gauge", app.id))
            };
            let (fused, unfused) = (peak(true), peak(false));
            assert!(
                fused <= unfused,
                "{} p={p}: fusion raised the peak ({fused} > {unfused})",
                app.id
            );
        }
    }
}

#[test]
fn fig2_with_knobs_off_is_byte_identical_to_the_prechange_figure() {
    // With fusion disabled, the new kernels and knobs must reproduce
    // the committed Figure 2 CSV byte for byte — tiling and the knob
    // plumbing are invisible to every modeled number and op count.
    use otter_bench::figures::{fig2_with, Scale};
    use otter_bench::render::render_fig2_csv;
    let fixture = include_str!("fixtures/fig2_test.csv");
    for tile in [8usize, 64] {
        let opts = EngineOptions::builder()
            .fusion(false)
            .tile_size(tile)
            .build();
        let csv = render_fig2_csv(&fig2_with(Scale::Test, &opts));
        assert_eq!(
            csv, fixture,
            "fig2 CSV drifted with fusion off, tile={tile}"
        );
    }
}
