//! Log₂-bucketed histograms.
//!
//! One fixed layout for every histogram in the system: 64 buckets
//! whose upper bounds are consecutive powers of two, spanning
//! `2⁻⁴⁰ ≈ 1e-12` (sub-picosecond latencies) up to `2²³ ≈ 8.4e6`
//! (multi-megabyte messages, hour-scale durations). A fixed layout is
//! what makes merging trivially associative and commutative: merging
//! is element-wise addition of bucket counts, with `sum`/`count`
//! added and `min`/`max` folded.

/// Bucket `i` (for `i ≥ 1`) has upper bound `2^(i - LE_OFFSET)`.
const LE_OFFSET: i64 = 40;

/// Number of buckets, including the `≤ 0` underflow bucket 0.
pub const BUCKETS: usize = 64;

/// A log₂-bucketed histogram over non-negative measurements.
///
/// Bucket 0 catches values `≤ 0`; bucket `i ≥ 1` catches
/// `(2^(i-41), 2^(i-40)]`, with the first and last real buckets
/// absorbing under- and overflow. `sum`, `count`, `min`, and `max`
/// are tracked exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    /// Smallest/largest observation; meaningless while `count == 0`.
    min: f64,
    max: f64,
    buckets: Box<[u64; BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Box::new([0; BUCKETS]),
        }
    }

    /// The bucket a value falls into.
    pub fn bucket_index(v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        (v.log2().ceil() as i64 + LE_OFFSET).clamp(1, BUCKETS as i64 - 1) as usize
    }

    /// Inclusive upper bound of bucket `i` (`0.0` for the underflow
    /// bucket; the last bucket is effectively unbounded).
    pub fn bucket_le(i: usize) -> f64 {
        assert!(i < BUCKETS, "bucket {i} out of range");
        if i == 0 {
            0.0
        } else {
            ((i as i64 - LE_OFFSET) as f64).exp2()
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Fold another histogram into this one. Element-wise bucket
    /// addition plus exact count/sum accumulation — associative and
    /// commutative, so per-rank histograms merge into the same
    /// job-level histogram no matter the order.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (d, s) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *d += s;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Non-empty buckets as `(index, upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, Self::bucket_le(i), c))
    }

    /// Raw count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Rebuild from serialized parts (sparse `(index, count)` pairs).
    /// `min`/`max` are only meaningful when `count > 0`.
    pub fn from_parts(count: u64, sum: f64, min: f64, max: f64, sparse: &[(usize, u64)]) -> Self {
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        if count > 0 {
            h.min = min;
            h.max = max;
        }
        for &(i, c) in sparse {
            if i < BUCKETS {
                h.buckets[i] += c;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        // 1.0 = 2^0 → upper bound 1.0 → bucket with le = 1.
        let i = Histogram::bucket_index(1.0);
        assert_eq!(Histogram::bucket_le(i), 1.0);
        // Just above a power of two rolls into the next bucket.
        let j = Histogram::bucket_index(1.0 + 1e-12);
        assert_eq!(j, i + 1);
        assert_eq!(Histogram::bucket_le(j), 2.0);
        // Exact powers land on their own bound.
        assert_eq!(
            Histogram::bucket_le(Histogram::bucket_index(1024.0)),
            1024.0
        );
        assert_eq!(
            Histogram::bucket_le(Histogram::bucket_index(0.5)),
            0.5,
            "2^-1"
        );
    }

    #[test]
    fn extremes_clamp() {
        assert_eq!(Histogram::bucket_index(1e-300), 1);
        assert_eq!(Histogram::bucket_index(1e300), BUCKETS - 1);
    }

    #[test]
    fn observe_tracks_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        for v in [1.0, 4.0, 16.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 21.0);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(16.0));
        assert_eq!(h.mean(), Some(7.0));
        assert_eq!(h.nonzero_buckets().count(), 3);
    }

    #[test]
    fn merge_equals_combined_observations() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0.001, 3.0, 7.5] {
            a.observe(v);
            both.observe(v);
        }
        for v in [0.0, 1e6, 3.0] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn parts_round_trip() {
        let mut h = Histogram::new();
        for v in [2.0, 1000.0, 0.25] {
            h.observe(v);
        }
        let sparse: Vec<(usize, u64)> = h.nonzero_buckets().map(|(i, _, c)| (i, c)).collect();
        let back = Histogram::from_parts(h.count(), h.sum(), h.min, h.max, &sparse);
        assert_eq!(h, back);
    }
}
