//! The compile/run API split: a [`CompiledArtifact`] produced by
//! [`compile`] and executed — any number of times, on any machine
//! model, at any rank count — by [`run`]/[`try_run`].
//!
//! This is the surface every driver shares: `otterc`, the bench and
//! figure harness, and the `otterd` compile-and-run service all go
//! through the same two functions, so "compile once, run many" is the
//! default shape rather than a special case. An artifact is cheaply
//! cloneable (one `Arc` bump), carries the per-pass compile record,
//! and identifies itself by a **cache key**: the FNV-1a hash of the
//! exact source text plus [`EngineOptions::fingerprint`], the stable
//! hash of every option that can change what compilation produces.
//! Two compiles with equal cache keys are interchangeable; that
//! equivalence is what `otter-serve`'s artifact cache banks on when a
//! warm job skips passes 1–6 entirely.
//!
//! Run-time-only knobs — the worker-pool size, the machine model, the
//! rank count — live in [`RunRequest`] and never enter the key.
//!
//! ```
//! use otter_core::{compile, run, EngineOptions, RunRequest};
//! use otter_machine::meiko_cs2;
//!
//! let opts = EngineOptions::default();
//! let artifact = compile("a = [1, 2; 3, 4];\ns = sum(a(:, 1));", &opts).unwrap();
//! let report = run(&artifact, &RunRequest::on(meiko_cs2(), 4)).unwrap();
//! assert_eq!(report.scalar("s"), Some(4.0));
//! // Same source + same options → same cache key.
//! let again = compile("a = [1, 2; 3, 4];\ns = sum(a(:, 1));", &opts).unwrap();
//! assert_eq!(artifact.cache_key(), again.cache_key());
//! ```

use crate::compile::{CompileOptions, Compiled};
use crate::engines::{CommSiteReport, EngineOptions, EngineReport, RankCounters, SpmdJobFailure};
use crate::error::{OtterError, Result};
use crate::exec::{ExecError, ExecOptions, Executor, XVal};
use crate::pass::{PassDump, PassManager, PassStats};
use otter_interp::Value;
use otter_log::JobId;
use otter_machine::Machine;
use otter_metrics::{MetricsRegistry, MetricsSnapshot};
use otter_mpi::run_spmd_with;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a state. The hash is stable across
/// platforms and releases — it is a wire-visible cache key, not an
/// in-process table hash, so `std::hash` (explicitly unstable) is the
/// wrong tool.
pub(crate) fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The stable 64-bit content hash of a script's exact source text.
/// Any byte change — even whitespace or a comment — changes the hash:
/// the cache trades a few spurious misses for never having to reason
/// about which edits are semantic.
pub fn source_hash(src: &str) -> u64 {
    fnv1a(FNV_OFFSET, src.as_bytes())
}

/// Fingerprint accumulator: every field is folded with a one-byte
/// domain tag so `["ab"]` and `["a","b"]` cannot collide.
pub(crate) struct Fingerprint(u64);

impl Fingerprint {
    pub fn new() -> Self {
        Fingerprint(FNV_OFFSET)
    }

    pub fn tag(&mut self, t: u8) -> &mut Self {
        self.0 = fnv1a(self.0, &[t]);
        self
    }

    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.0 = fnv1a(self.0, &(b.len() as u64).to_le_bytes());
        self.0 = fnv1a(self.0, b);
        self
    }

    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.0 = fnv1a(self.0, &v.to_le_bytes());
        self
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A fully compiled, immutable, cheaply cloneable program: the output
/// of [`compile`] and the unit the serve-side artifact cache stores.
///
/// Cloning bumps one `Arc`; the IR, the emitted C, the inference
/// record, and the per-pass statistics are shared. The artifact also
/// snapshots the [`EngineOptions`] it was compiled under, so a bare
/// [`RunRequest`] (machine + ranks) is enough to execute it with the
/// collective schedule, fault plan, and metrics setting the compiler
/// saw.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    inner: Arc<ArtifactInner>,
}

#[derive(Debug)]
struct ArtifactInner {
    compiled: Compiled,
    passes: Vec<PassStats>,
    opts: EngineOptions,
    source_hash: u64,
    options_fingerprint: u64,
}

impl CompiledArtifact {
    /// Wrap the output of an explicitly configured [`PassManager`] run
    /// (timing, dumps, custom pass sets). [`compile`] is the standard
    /// path; this constructor exists for drivers like `otterc` that
    /// configure the manager first.
    pub fn from_parts(
        compiled: Compiled,
        passes: Vec<PassStats>,
        src: &str,
        opts: &EngineOptions,
    ) -> Self {
        CompiledArtifact {
            inner: Arc::new(ArtifactInner {
                compiled,
                passes,
                source_hash: source_hash(src),
                options_fingerprint: opts.fingerprint(),
                opts: opts.clone(),
            }),
        }
    }

    /// The compiled program (IR, emitted C, inference, lint report).
    pub fn compiled(&self) -> &Compiled {
        &self.inner.compiled
    }

    /// Per-pass wall time and size statistics from the compile.
    pub fn pass_stats(&self) -> &[PassStats] {
        &self.inner.passes
    }

    /// The options snapshot this artifact was compiled under.
    pub fn options(&self) -> &EngineOptions {
        &self.inner.opts
    }

    /// FNV-1a hash of the exact source text.
    pub fn source_hash(&self) -> u64 {
        self.inner.source_hash
    }

    /// [`EngineOptions::fingerprint`] of the compile options.
    pub fn options_fingerprint(&self) -> u64 {
        self.inner.options_fingerprint
    }

    /// The artifact-cache key: `(source hash, option fingerprint)`.
    /// Artifacts with equal keys are interchangeable.
    pub fn cache_key(&self) -> (u64, u64) {
        (self.inner.source_hash, self.inner.options_fingerprint)
    }
}

/// Compile a script under `opts` with the standard pipeline. The
/// compile half of the API split: no machine, no rank count, nothing
/// run-time enters here, so the result is reusable across every
/// subsequent [`run`].
pub fn compile(src: &str, opts: &EngineOptions) -> Result<CompiledArtifact> {
    compile_managed(&PassManager::standard(), src, opts).map(|(artifact, _)| artifact)
}

/// [`compile`] through a caller-configured [`PassManager`] (disabled
/// passes beyond the options, `--dump-after` requests). Returns the
/// artifact plus any requested dumps.
pub fn compile_managed(
    pm: &PassManager,
    src: &str,
    opts: &EngineOptions,
) -> Result<(CompiledArtifact, Vec<PassDump>)> {
    let empty = otter_frontend::MapProvider::new();
    let provider = opts.m_files.as_ref().unwrap_or(&empty);
    let mut disabled_passes = opts.disabled_passes.clone();
    if !opts.fusion && !disabled_passes.iter().any(|p| p == "fusion") {
        disabled_passes.push("fusion".to_string());
    }
    let copts = CompileOptions {
        data_dir: opts.data_dir.clone(),
        disabled_passes,
        lint: opts.lint,
    };
    let report = pm.compile(src, provider, &copts)?;
    Ok((
        CompiledArtifact::from_parts(report.compiled, report.passes, src, opts),
        report.dumps,
    ))
}

/// Everything that may vary per execution of one artifact: the machine
/// model, the rank count, and the worker-pool size. None of it enters
/// the cache key — two runs of the same artifact at different ranks
/// share one compile.
#[derive(Clone)]
pub struct RunRequest {
    /// The machine model charged against the virtual clocks.
    pub machine: Machine,
    /// Logical SPMD ranks to execute.
    pub ranks: usize,
    /// Worker-pool override; `None` uses the artifact's compiled-in
    /// setting (itself defaulting to host parallelism). Run-time-only:
    /// deterministic outputs are identical for every value.
    pub workers: Option<usize>,
    /// Correlation key stamped on every observability artifact of this
    /// run (trace events, flight-recorder tails, failure reports,
    /// postmortem bundles). `None` mints a fresh process-unique id at
    /// run time; `otterd` passes its request-scoped id so client,
    /// server, and engine all agree on the key. Run-time-only: never
    /// part of the cache key, never affects modeled results.
    pub job_id: Option<JobId>,
    /// Trace-sink override for this run; `None` uses the artifact's
    /// compiled-in sink (usually none). `otterd` attaches a retaining
    /// sink here to serve `GET /trace/<job_id>` from cached artifacts
    /// that were compiled without one. Run-time-only: tracing observes
    /// the virtual clocks and never charges them.
    pub trace: Option<Arc<dyn otter_trace::TraceSink>>,
}

impl std::fmt::Debug for RunRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunRequest")
            .field("machine", &self.machine)
            .field("ranks", &self.ranks)
            .field("workers", &self.workers)
            .field("job_id", &self.job_id)
            .field("trace", &self.trace.as_ref().map(|_| "<sink>"))
            .finish()
    }
}

impl RunRequest {
    /// Execute on `ranks` CPUs of `machine`.
    pub fn on(machine: Machine, ranks: usize) -> Self {
        RunRequest {
            machine,
            ranks,
            workers: None,
            job_id: None,
            trace: None,
        }
    }

    /// Builder: fix the scheduler's worker-pool size for this run.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Builder: correlate this run under a caller-minted [`JobId`].
    pub fn with_job_id(mut self, job_id: JobId) -> Self {
        self.job_id = Some(job_id);
        self
    }

    /// Builder: record trace events into `sink` for this run only.
    pub fn with_trace(mut self, sink: Arc<impl otter_trace::TraceSink + 'static>) -> Self {
        self.trace = Some(sink);
        self
    }
}

impl Default for RunRequest {
    fn default() -> Self {
        RunRequest::on(otter_machine::meiko_cs2(), 1)
    }
}

/// Execute a compiled artifact; fold any SPMD failure into
/// [`OtterError`]. The run half of the API split — see [`try_run`]
/// for the variant that returns failures as structured data.
pub fn run(artifact: &CompiledArtifact, req: &RunRequest) -> Result<EngineReport> {
    match try_run(artifact, req)? {
        Ok(report) => Ok(report),
        Err(failure) => Err(failure.report.into()),
    }
}

/// Execute a compiled artifact on `req.ranks` modeled ranks of
/// `req.machine`. A communication failure (deadlock, dead rank,
/// injected fault) comes back as structured data — the typed
/// failure report plus the surviving ranks' counters — instead of a
/// formatted [`OtterError`]; program-level errors still use the `Err`
/// channel.
///
/// Only run work happens here: passes 1–6 ran once, inside
/// [`compile`]. A metrics-on run therefore reports **no**
/// `compile_pass_seconds` series — that is the observable proof a
/// cache-served job skipped compilation (the engine-level
/// [`crate::Engine::run`], which owns its compile, merges the pass
/// timings back in).
pub fn try_run(
    artifact: &CompiledArtifact,
    req: &RunRequest,
) -> Result<std::result::Result<EngineReport, SpmdJobFailure>> {
    let opts = artifact.options();
    let compiled = artifact.compiled();
    let ir = compiled.ir.clone();
    // Hybrid ranks × threads: split the worker budget across the
    // logical ranks, at least one kernel thread each.
    let budget = req.workers.or(opts.workers).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let exec_opts = ExecOptions {
        data_dir: compiled.data_dir.clone(),
        analyze: opts.analyze,
        tile_size: opts.tile_size,
        threads: (budget / req.ranks.max(1)).max(1),
        ..Default::default()
    };
    let job_id = req.job_id.unwrap_or_else(JobId::mint);
    let mut spmd = opts.spmd_options();
    spmd.job_id = job_id;
    if req.workers.is_some() {
        spmd.workers = req.workers;
    }
    if req.trace.is_some() {
        spmd.trace = req.trace.clone();
    }
    let job = run_spmd_with(&req.machine, req.ranks, spmd, move |comm| {
        let opts = exec_opts.clone();
        let executor = Executor::new(&ir, comm, opts);
        let outcome = executor.run();
        match outcome {
            Ok(o) => {
                // The program is done: snapshot the modeled time
                // and traffic counters now, before the reporting
                // gathers below (which are not part of the
                // benchmarked computation). Tracing stops at the
                // same point so event totals keep matching the
                // stats snapshot.
                let finished_at = comm.clock();
                let finished_stats = comm.stats();
                let finished_metrics = comm.take_metrics().map(|r| r.snapshot());
                comm.suspend_tracing();
                // Gather every matrix so rank 0 can report a
                // machine-independent workspace. Iterate in sorted
                // order: gathers are collectives, so every rank
                // must visit variables in the same sequence.
                let mut names: Vec<&String> = o.workspace.keys().collect();
                names.sort();
                let mut ws: HashMap<String, Value> = HashMap::new();
                for name in names {
                    let val = &o.workspace[name];
                    match val {
                        XVal::S(v) => {
                            ws.insert(name.clone(), Value::Scalar(*v));
                        }
                        XVal::M(m) => {
                            let full = m.gather_all(comm)?;
                            ws.insert(name.clone(), Value::Matrix(full).normalized());
                        }
                    }
                }
                Ok(Ok((
                    ws,
                    o.output,
                    finished_at,
                    o.peak_local_bytes,
                    o.peak_temp_bytes,
                    o.op_counts,
                    finished_stats,
                    finished_metrics,
                    o.site_comm,
                )))
            }
            // Application errors are SPMD-replicated: every rank
            // raises the identical one, so they travel inside the
            // rank's value and the job itself still succeeds.
            Err(ExecError::App(e)) => Ok(Err(e.to_string())),
            // Communication failures abort the job; the runner
            // assembles the failure report.
            Err(ExecError::Comm(e)) => Err(e),
        }
    });
    let results = match job {
        Ok(results) => results,
        Err(failure) => {
            let survivors = failure
                .survivors
                .iter()
                .map(|r| RankCounters {
                    rank: r.rank,
                    messages: r.stats.messages_sent,
                    bytes: r.stats.bytes_sent,
                    clock: r.clock,
                    peak_bytes: match &r.value {
                        Ok(t) => t.4,
                        Err(_) => 0,
                    },
                    compute_seconds: r.stats.compute_time,
                    comm_seconds: r.stats.send_time,
                    idle_seconds: r.stats.wait_time,
                })
                .collect();
            // Every rank's flight-recorder tail — failed and surviving
            // alike — keyed by rank, ordered by rank: the postmortem's
            // event context.
            let mut flight: Vec<(usize, Vec<otter_log::FlightEvent>)> = failure
                .report
                .failures
                .iter()
                .map(|f| (f.rank, f.flight.clone()))
                .chain(failure.survivors.iter().map(|r| (r.rank, r.flight.clone())))
                .collect();
            flight.sort_by_key(|&(rank, _)| rank);
            // Merge the partial registries of failed ranks with the
            // survivors' complete ones, mirroring the success path.
            let mut metrics: Option<MetricsSnapshot> = None;
            let rank_metrics = failure
                .report
                .failures
                .iter()
                .filter_map(|f| f.metrics.as_ref())
                .chain(failure.survivors.iter().filter_map(|r| r.metrics.as_ref()));
            for m in rank_metrics {
                match metrics.as_mut() {
                    Some(merged) => merged.merge_from(m),
                    None => metrics = Some(m.clone()),
                }
            }
            return Ok(Err(SpmdJobFailure {
                job_id,
                report: failure.report,
                survivors,
                flight,
                metrics,
            }));
        }
    };
    // All ranks computed the same workspace (and executed the same
    // instruction sequence — SPMD); use rank 0's.
    let mut iter = results.into_iter();
    let first = iter.next().expect("at least one rank");
    let rank0 = first.value.map_err(OtterError::execution)?;
    let (
        workspace,
        output,
        mut max_clock,
        mut peak_rank_bytes,
        mut peak_temp_bytes,
        ops,
        fstats,
        mut job_metrics,
        mut site_comm,
    ) = rank0;
    let op_counts: BTreeMap<String, u64> = ops.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    let mut messages = fstats.messages_sent;
    let mut bytes = fstats.bytes_sent;
    let mut per_rank = vec![RankCounters {
        rank: 0,
        messages: fstats.messages_sent,
        bytes: fstats.bytes_sent,
        clock: max_clock,
        peak_bytes: peak_temp_bytes,
        compute_seconds: fstats.compute_time,
        comm_seconds: fstats.send_time,
        idle_seconds: fstats.wait_time,
    }];
    for r in iter {
        let (_, _, clock, peak, peak_temp, _, stats, rank_metrics, rank_sites) =
            r.value.map_err(OtterError::execution)?;
        // Per-site traffic is a job-wide total (sum over ranks);
        // execution counts are SPMD-replicated, so rank 0's stand.
        for (total, rs) in site_comm.iter_mut().zip(&rank_sites) {
            total.messages += rs.messages;
            total.bytes += rs.bytes;
        }
        max_clock = max_clock.max(clock);
        peak_rank_bytes = peak_rank_bytes.max(peak);
        peak_temp_bytes = peak_temp_bytes.max(peak_temp);
        messages += stats.messages_sent;
        bytes += stats.bytes_sent;
        if let (Some(job), Some(m)) = (job_metrics.as_mut(), rank_metrics.as_ref()) {
            job.merge_from(m);
        }
        per_rank.push(RankCounters {
            rank: r.rank,
            messages: stats.messages_sent,
            bytes: stats.bytes_sent,
            clock,
            peak_bytes: peak_temp,
            compute_seconds: stats.compute_time,
            comm_seconds: stats.send_time,
            idle_seconds: stats.wait_time,
        });
    }
    // Job-wide series the per-rank registries cannot see.
    if let Some(job) = job_metrics.as_mut() {
        let mut reg = MetricsRegistry::new();
        for rc in &per_rank {
            reg.observe("rank_clock_seconds", &[], rc.clock);
        }
        let min_clock = per_rank
            .iter()
            .map(|r| r.clock)
            .fold(f64::INFINITY, f64::min);
        if min_clock > 0.0 {
            reg.gauge_max("load_imbalance_ratio", &[], max_clock / min_clock);
        }
        job.merge_from(&reg.snapshot());
    }
    // Rejoin the per-site totals with their site identities: the
    // executor indexed them by `leaf_sites` order over this same IR,
    // so a fresh enumeration lines up element-for-element.
    let comm_sites: Vec<CommSiteReport> = otter_ir::leaf_sites(&compiled.ir)
        .iter()
        .zip(&site_comm)
        .map(|(site, sc)| CommSiteReport {
            site: site.id,
            func: site.func.map(str::to_string),
            opcode: site.instr.opcode().to_string(),
            execs: sc.execs,
            messages: sc.messages,
            bytes: sc.bytes,
        })
        .collect();
    // With a retaining sink the critical path comes along for free.
    let critical_path = req
        .trace
        .as_ref()
        .or(opts.trace.as_ref())
        .and_then(|sink| sink.snapshot())
        .map(|events| otter_trace::critical_path(&events));
    Ok(Ok(EngineReport {
        engine: "otter",
        job_id,
        workspace,
        output,
        modeled_seconds: max_clock,
        op_counts,
        messages,
        bytes,
        peak_rank_bytes,
        peak_temp_bytes,
        per_rank,
        critical_path,
        metrics: job_metrics,
        comm_sites,
    }))
}
