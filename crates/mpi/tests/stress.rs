//! Stress tests for the message-passing substrate: heavy mixed traffic
//! must neither deadlock nor corrupt payloads, and virtual time must
//! remain deterministic under real thread-scheduling jitter.

use otter_machine::{meiko_cs2, sparc20_cluster};
use otter_mpi::{run_spmd, ReduceOp};

/// Every rank exchanges with every other rank in a deterministic
/// schedule, then everyone cross-checks checksums via a collective.
#[test]
fn all_pairs_exchange_no_deadlock() {
    let p = 12;
    let res = run_spmd(&meiko_cs2(), p, move |c| {
        let me = c.rank();
        // Round-robin pairwise exchange: in round r, rank i talks to
        // rank i ^ r (a hypercube-ish schedule that pairs everyone).
        let mut checksum = 0.0;
        for r in 1..p.next_power_of_two() {
            let peer = me ^ r;
            if peer >= p {
                continue;
            }
            let payload: Vec<f64> = (0..64).map(|k| (me * 1000 + k) as f64).collect();
            // Lower rank sends first; buffered channels make this safe
            // either way, but keep a canonical order for determinism.
            if me < peer {
                c.send(peer, &payload)?;
                let got = c.recv(peer)?;
                checksum += got.iter().sum::<f64>();
            } else {
                let got = c.recv(peer)?;
                c.send(peer, &payload)?;
                checksum += got.iter().sum::<f64>();
            }
        }
        // Global checksum agreement.
        c.allreduce_scalar(checksum, ReduceOp::Sum)
    });
    let first = res[0].value;
    assert!(res.iter().all(|r| r.value == first), "checksums diverged");
    assert!(first > 0.0);
}

/// Thousands of small messages: FIFO order per pair is preserved and
/// the virtual clock is identical across repeated runs despite real
/// scheduling differences.
#[test]
fn message_storm_is_deterministic() {
    let run_once = || {
        let res = run_spmd(&sparc20_cluster(), 6, |c| {
            let me = c.rank();
            let p = c.size();
            let next = (me + 1) % p;
            let prev = (me + p - 1) % p;
            let mut acc = 0.0;
            for round in 0..200 {
                c.send_scalar(next, (me * 1000 + round) as f64)?;
                let v = c.recv_scalar(prev)?;
                // FIFO check: the value must be this round's.
                assert_eq!(v as usize % 1000, round, "out-of-order delivery");
                acc += v;
            }
            Ok((acc, c.clock()))
        });
        res.iter()
            .map(|r| (r.value.0, r.value.1.to_bits()))
            .collect::<Vec<_>>()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "virtual time must be schedule-independent");
}

/// Mixed collectives interleaved with point-to-point traffic complete
/// and agree.
#[test]
fn interleaved_collectives_and_p2p() {
    let res = run_spmd(&meiko_cs2(), 9, |c| {
        let me = c.rank() as f64;
        let mut state = vec![me; 8];
        for round in 0..20 {
            // Collective phase.
            state = c.allreduce(&state, ReduceOp::Sum)?;
            // Point-to-point phase: ring rotate.
            let p = c.size();
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            c.send(next, &state)?;
            state = c.recv(prev)?;
            // Barrier keeps phases aligned.
            if round % 5 == 0 {
                c.barrier()?;
            }
        }
        Ok(state[0])
    });
    let first = res[0].value;
    assert!(first.is_finite());
    assert!(res.iter().all(|r| r.value == first), "states diverged");
}

/// A compiled-program-sized workload at max rank count exercises the
/// channel mesh at scale.
#[test]
fn sixteen_ranks_full_mesh() {
    let res = run_spmd(&meiko_cs2(), 16, |c| {
        // Everyone gathers from everyone.
        let all = c.allgather(&[c.rank() as f64])?;
        Ok(all.iter().map(|v| v[0]).sum::<f64>())
    });
    for r in &res {
        assert_eq!(r.value, 120.0); // 0+1+...+15
    }
}

/// A rank failure must take the job down promptly (via channel
/// disconnection), not hang the surviving ranks until a timeout.
#[test]
fn rank_failure_aborts_job() {
    let t0 = std::time::Instant::now();
    let result = std::panic::catch_unwind(|| {
        run_spmd(&meiko_cs2(), 4, |c| {
            if c.rank() == 2 {
                panic!("injected fault on rank 2");
            }
            // Everyone else blocks on a collective rank 2 never joins.
            c.allreduce_scalar(1.0, ReduceOp::Sum)
        });
    });
    assert!(result.is_err(), "job must abort");
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(30),
        "abort must come from disconnection, not the deadlock timeout"
    );
}
