//! The `otter-serve/v1` wire protocol.
//!
//! Newline-delimited JSON over a Unix-domain socket: each request is
//! one JSON object on one line, answered by one JSON object on one
//! line. Every response carries `"schema": "otter-serve/v1"` and
//! `"ok"`; errors come back as `{"ok": false, "error": "..."}` rather
//! than closing the connection, so a client can keep a session open
//! across bad requests.
//!
//! Operations (`"op"`):
//!
//! | op         | request fields                                        | response fields |
//! |------------|-------------------------------------------------------|-----------------|
//! | `ping`     | —                                                     | `schema` |
//! | `compile`  | `source`, `options?`                                  | `cache_hit`, `compile_seconds`, `source_hash`, `options_fingerprint`, `ir_instrs` |
//! | `run`      | `source`, `options?`, `machine?`, `ranks?`, `workers?`| compile fields + `run_seconds`, `modeled_seconds`, `messages`, `bytes`, `output`, `scalars` |
//! | `stats`    | —                                                     | cache/gate counters |
//! | `metrics`  | —                                                     | `text`: the Prometheus exposition |
//! | `logs`     | `level?`                                              | `events`: recent daemon flight-recorder events at or above `level` |
//! | `shutdown` | —                                                     | `stopping: true` |
//!
//! `options` is the compile-relevant [`EngineOptions`] subset that
//! makes sense over a wire: `disabled_passes` (array of pass names),
//! `collective_algo` (`"tree"`/`"linear"`), `metrics` (bool),
//! `crash` (`{"rank": R, "op": N}`: inject a rank crash to exercise
//! the failure path), plus the run-time-only `trace` (bool: retain a
//! Chrome trace for `GET /trace/<job_id>`). The hashes echo the
//! artifact's cache key so
//! clients can correlate jobs with cache entries; `compile` and `run`
//! responses additionally carry the daemon-minted `job_id` correlation
//! key (also the row key of `GET /jobs`).

use otter_core::EngineOptions;
use otter_log::LogLevel;
use otter_metrics::Json;
use otter_mpi::CollectiveAlgo;

/// The `"schema"` tag on every response.
pub const SERVE_SCHEMA: &str = "otter-serve/v1";

/// Compile-relevant options as they travel on the wire.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobOptions {
    /// Optional passes to skip (e.g. `"peephole"`).
    pub disabled_passes: Vec<String>,
    /// `None` keeps the engine default (tree).
    pub collective_algo: Option<CollectiveAlgo>,
    /// Collect per-job metrics (merged into the daemon's exposition).
    pub metrics: bool,
    /// Retain a Chrome trace of the run, served afterwards by
    /// `GET /trace/<job_id>`. Run-time-only: the daemon attaches the
    /// sink to the [`otter_core::RunRequest`], so the artifact-cache
    /// key is unaffected.
    pub trace: bool,
    /// Inject a rank crash: `(rank, op_index)` terminates `rank` at
    /// its `op_index`-th communication operation. The one
    /// fault-injection knob exposed over the wire, for exercising the
    /// failure path (postmortem bundles, the `/jobs` table) against a
    /// live daemon. Enters the fingerprint like any fault plan.
    pub crash: Option<(usize, u64)>,
}

impl JobOptions {
    /// The [`EngineOptions`] these wire options denote. Anything not
    /// wire-expressible (general fault plans, trace sinks, M-file
    /// providers) stays at its default — the service compiles
    /// self-contained scripts.
    pub fn to_engine_options(&self) -> EngineOptions {
        let mut b = EngineOptions::builder().metrics(self.metrics);
        for pass in &self.disabled_passes {
            b = b.disable_pass(pass.clone());
        }
        if let Some(algo) = self.collective_algo {
            b = b.collective_algo(algo);
        }
        if let Some((rank, op)) = self.crash {
            b = b.faults(otter_mpi::FaultPlan::new().crash(rank, op));
        }
        b.build()
    }

    /// Parse the `options` object of a request (absent → defaults).
    pub fn from_json(json: Option<&Json>) -> Result<JobOptions, String> {
        let mut opts = JobOptions::default();
        let Some(json) = json else {
            return Ok(opts);
        };
        if let Some(arr) = json.get("disabled_passes").and_then(Json::as_arr) {
            for p in arr {
                opts.disabled_passes.push(
                    p.as_str()
                        .ok_or("disabled_passes entries must be strings")?
                        .to_string(),
                );
            }
        }
        if let Some(algo) = json.get("collective_algo") {
            opts.collective_algo = Some(match algo.as_str() {
                Some("tree") => CollectiveAlgo::Tree,
                Some("linear") => CollectiveAlgo::Linear,
                _ => return Err("collective_algo must be \"tree\" or \"linear\"".to_string()),
            });
        }
        if let Some(m) = json.get("metrics") {
            opts.metrics = matches!(m, Json::Bool(true));
        }
        if let Some(t) = json.get("trace") {
            opts.trace = matches!(t, Json::Bool(true));
        }
        if let Some(c) = json.get("crash") {
            let rank = c.get("rank").and_then(Json::as_num);
            let op = c.get("op").and_then(Json::as_num);
            match (rank, op) {
                (Some(r), Some(o)) if r >= 0.0 && r.fract() == 0.0 && o >= 0.0 => {
                    opts.crash = Some((r as usize, o as u64));
                }
                _ => return Err("crash must be an object with numeric `rank` and `op`".to_string()),
            }
        }
        Ok(opts)
    }

    /// The wire form (for clients building requests).
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if !self.disabled_passes.is_empty() {
            fields.push((
                "disabled_passes".to_string(),
                Json::Arr(
                    self.disabled_passes
                        .iter()
                        .map(|p| Json::Str(p.clone()))
                        .collect(),
                ),
            ));
        }
        if let Some(algo) = self.collective_algo {
            fields.push((
                "collective_algo".to_string(),
                Json::Str(algo.label().to_string()),
            ));
        }
        if self.metrics {
            fields.push(("metrics".to_string(), Json::Bool(true)));
        }
        if self.trace {
            fields.push(("trace".to_string(), Json::Bool(true)));
        }
        if let Some((rank, op)) = self.crash {
            fields.push((
                "crash".to_string(),
                Json::Obj(vec![
                    ("rank".to_string(), Json::Num(rank as f64)),
                    ("op".to_string(), Json::Num(op as f64)),
                ]),
            ));
        }
        Json::Obj(fields)
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Ping,
    Compile {
        source: String,
        options: JobOptions,
    },
    Run {
        source: String,
        options: JobOptions,
        /// Machine model name (`meiko`/`cluster`/`smp`/`workstation`).
        machine: String,
        ranks: usize,
        workers: Option<usize>,
    },
    Stats,
    Metrics,
    /// Recent daemon-side flight-recorder events at or above `level`
    /// (`Error` is the most selective filter, `Debug` returns
    /// everything retained).
    Logs {
        level: LogLevel,
    },
    Shutdown,
}

impl Request {
    /// Parse one request line.
    pub fn from_json(json: &Json) -> Result<Request, String> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs a string `op` field")?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "logs" => {
                let level = match json.get("level") {
                    None => LogLevel::Info,
                    Some(l) => l
                        .as_str()
                        .and_then(LogLevel::parse)
                        .ok_or("level must be error|warn|info|debug")?,
                };
                Ok(Request::Logs { level })
            }
            "compile" => Ok(Request::Compile {
                source: required_source(json)?,
                options: JobOptions::from_json(json.get("options"))?,
            }),
            "run" => {
                let ranks = match json.get("ranks") {
                    None => 1,
                    Some(j) => as_count(j).ok_or("ranks must be a positive integer")?,
                };
                let workers = match json.get("workers") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(as_count(j).ok_or("workers must be a positive integer")?),
                };
                let machine = json
                    .get("machine")
                    .map(|m| {
                        m.as_str()
                            .map(str::to_string)
                            .ok_or("machine must be a string")
                    })
                    .transpose()?
                    .unwrap_or_else(|| "meiko".to_string());
                Ok(Request::Run {
                    source: required_source(json)?,
                    options: JobOptions::from_json(json.get("options"))?,
                    machine,
                    ranks,
                    workers,
                })
            }
            other => Err(format!(
                "unknown op `{other}` (expected ping|compile|run|stats|metrics|logs|shutdown)"
            )),
        }
    }

    /// The wire form (for clients).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => op_obj("ping", vec![]),
            Request::Stats => op_obj("stats", vec![]),
            Request::Metrics => op_obj("metrics", vec![]),
            Request::Shutdown => op_obj("shutdown", vec![]),
            Request::Logs { level } => op_obj(
                "logs",
                vec![("level".to_string(), Json::Str(level.as_str().to_string()))],
            ),
            Request::Compile { source, options } => op_obj(
                "compile",
                vec![
                    ("source".to_string(), Json::Str(source.clone())),
                    ("options".to_string(), options.to_json()),
                ],
            ),
            Request::Run {
                source,
                options,
                machine,
                ranks,
                workers,
            } => {
                let mut fields = vec![
                    ("source".to_string(), Json::Str(source.clone())),
                    ("options".to_string(), options.to_json()),
                    ("machine".to_string(), Json::Str(machine.clone())),
                    ("ranks".to_string(), Json::Num(*ranks as f64)),
                ];
                if let Some(w) = workers {
                    fields.push(("workers".to_string(), Json::Num(*w as f64)));
                }
                op_obj("run", fields)
            }
        }
    }

    /// The `op` label used by the `serve_jobs_total` metric.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Compile { .. } => "compile",
            Request::Run { .. } => "run",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Logs { .. } => "logs",
            Request::Shutdown => "shutdown",
        }
    }
}

fn required_source(json: &Json) -> Result<String, String> {
    json.get("source")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "request needs a string `source` field".to_string())
}

fn as_count(j: &Json) -> Option<usize> {
    let n = j.as_num()?;
    if n >= 1.0 && n.fract() == 0.0 {
        Some(n as usize)
    } else {
        None
    }
}

fn op_obj(op: &str, mut rest: Vec<(String, Json)>) -> Json {
    let mut fields = vec![("op".to_string(), Json::Str(op.to_string()))];
    fields.append(&mut rest);
    Json::Obj(fields)
}

/// Build a success response: `ok`/`schema` plus op-specific fields.
pub fn ok_response(mut fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("schema".to_string(), Json::Str(SERVE_SCHEMA.to_string())),
    ];
    all.append(&mut fields);
    Json::Obj(all)
}

/// Build an error response.
pub fn err_response(message: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("schema".to_string(), Json::Str(SERVE_SCHEMA.to_string())),
        ("error".to_string(), Json::Str(message.into())),
    ])
}

/// Resolve a wire machine name to its model.
pub fn machine_by_name(name: &str) -> Result<otter_machine::Machine, String> {
    match name {
        "meiko" => Ok(otter_machine::meiko_cs2()),
        "cluster" => Ok(otter_machine::sparc20_cluster()),
        "smp" => Ok(otter_machine::enterprise_smp()),
        "workstation" => Ok(otter_machine::workstation()),
        other => Err(format!(
            "unknown machine `{other}` (expected meiko|cluster|smp|workstation)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Logs {
                level: LogLevel::Warn,
            },
            Request::Compile {
                source: "x = 1;\n".to_string(),
                options: JobOptions {
                    disabled_passes: vec!["peephole".to_string()],
                    collective_algo: Some(CollectiveAlgo::Linear),
                    metrics: true,
                    trace: false,
                    crash: None,
                },
            },
            Request::Run {
                source: "x = 1;\n".to_string(),
                options: JobOptions {
                    trace: true,
                    crash: Some((3, 2)),
                    ..JobOptions::default()
                },
                machine: "cluster".to_string(),
                ranks: 8,
                workers: Some(2),
            },
        ];
        for req in reqs {
            let wire = req.to_json().to_string();
            let parsed = Request::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(parsed, req, "{wire}");
        }
    }

    #[test]
    fn run_defaults_fill_in() {
        let json = Json::parse(r#"{"op":"run","source":"x = 1;"}"#).unwrap();
        match Request::from_json(&json).unwrap() {
            Request::Run {
                machine,
                ranks,
                workers,
                ..
            } => {
                assert_eq!(machine, "meiko");
                assert_eq!(ranks, 1);
                assert_eq!(workers, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_typed_errors() {
        for (line, needle) in [
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"compile"}"#, "source"),
            (r#"{"op":"run","source":"x=1;","ranks":0}"#, "ranks"),
            (
                r#"{"op":"run","source":"x=1;","options":{"collective_algo":"ring"}}"#,
                "collective_algo",
            ),
            (r#"{"op":"logs","level":"verbose"}"#, "level"),
            (
                r#"{"op":"run","source":"x=1;","options":{"crash":{"rank":1}}}"#,
                "crash",
            ),
        ] {
            let err = Request::from_json(&Json::parse(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn logs_level_defaults_to_info() {
        let json = Json::parse(r#"{"op":"logs"}"#).unwrap();
        assert_eq!(
            Request::from_json(&json).unwrap(),
            Request::Logs {
                level: LogLevel::Info
            }
        );
    }

    #[test]
    fn unknown_machines_are_rejected() {
        assert!(machine_by_name("meiko").is_ok());
        assert!(machine_by_name("cray").is_err());
    }
}
