//! The reproduction's gold test: every benchmark application from the
//! paper's evaluation compiles through the full Otter pipeline and
//! produces results identical (to FP-reduction tolerance) to the
//! interpreter oracle, at every processor count on every modeled
//! machine.

use otter_core::{compile_str, run_compiled, run_interpreter, BaselineOptions, EngineRun};
use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster, workstation, Machine};

fn assert_app_matches(app: &otter_apps::App, machine: &Machine, ps: &[usize]) {
    let base = run_interpreter(&app.script, &workstation(), &BaselineOptions::default())
        .unwrap_or_else(|e| panic!("{}: interpreter: {e}", app.id));
    let compiled =
        compile_str(&app.script).unwrap_or_else(|e| panic!("{}: compile: {e}", app.id));
    for &p in ps {
        if p > machine.max_cpus {
            continue;
        }
        let run: EngineRun = run_compiled(&compiled, machine, p)
            .unwrap_or_else(|e| panic!("{}: p={p}: {e}", app.id));
        for v in &app.result_vars {
            let a = base
                .scalar(v)
                .unwrap_or_else(|| panic!("{}: interpreter has no scalar `{v}`", app.id));
            let b = run
                .scalar(v)
                .unwrap_or_else(|| panic!("{}: compiled has no scalar `{v}`", app.id));
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                "{} on {} p={p}: `{v}` interpreter={a} otter={b}",
                app.id,
                machine.name
            );
        }
    }
}

#[test]
fn conjugate_gradient_matches_oracle_on_meiko() {
    let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params::test());
    assert_app_matches(&app, &meiko_cs2(), &[1, 2, 3, 4, 8, 16]);
}

#[test]
fn ocean_engineering_matches_oracle_on_meiko() {
    let app = otter_apps::ocean::ocean_engineering(otter_apps::ocean::Params::test());
    assert_app_matches(&app, &meiko_cs2(), &[1, 2, 3, 4, 8, 16]);
}

#[test]
fn n_body_matches_oracle_on_meiko() {
    let app = otter_apps::nbody::n_body(otter_apps::nbody::Params::test());
    assert_app_matches(&app, &meiko_cs2(), &[1, 2, 3, 4, 8, 16]);
}

#[test]
fn transitive_closure_matches_oracle_on_meiko() {
    let app = otter_apps::transitive::transitive_closure(otter_apps::transitive::Params::test());
    assert_app_matches(&app, &meiko_cs2(), &[1, 2, 3, 4, 8, 16]);
}

#[test]
fn all_apps_match_oracle_on_cluster() {
    // The cluster's hierarchical topology exercises different message
    // paths; answers must not depend on the machine model.
    for app in otter_apps::test_apps() {
        assert_app_matches(&app, &sparc20_cluster(), &[4, 8]);
    }
}

#[test]
fn all_apps_match_oracle_on_smp() {
    for app in otter_apps::test_apps() {
        assert_app_matches(&app, &enterprise_smp(), &[2, 8]);
    }
}

#[test]
fn odd_processor_counts_work() {
    // Block distribution with remainders: non-power-of-two ranks.
    for app in otter_apps::test_apps() {
        assert_app_matches(&app, &meiko_cs2(), &[5, 7, 11, 13]);
    }
}

#[test]
fn cg_actually_converges_in_compiled_form() {
    let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params::test());
    let compiled = compile_str(&app.script).unwrap();
    let run = run_compiled(&compiled, &meiko_cs2(), 8).unwrap();
    assert!(run.scalar("err").unwrap() < 1e-6, "err={:?}", run.scalar("err"));
}

#[test]
fn transitive_closure_is_total_in_compiled_form() {
    let p = otter_apps::transitive::Params::test();
    let app = otter_apps::transitive::transitive_closure(p);
    let compiled = compile_str(&app.script).unwrap();
    let run = run_compiled(&compiled, &meiko_cs2(), 6).unwrap();
    assert_eq!(run.scalar("reach"), Some((p.n * p.n) as f64));
}
