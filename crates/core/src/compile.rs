//! The compiler driver: the paper's passes, run by the
//! [`crate::pass::PassManager`].
//!
//! 1. scan + parse (otter-frontend)                      — `parse`
//! 2. identifier resolution, M-file loading              — `resolve`
//! 3. SSA + type/rank/shape inference                    — `ssa-infer`
//! 4. expression rewriting → IR (otter-codegen::lower)   — `rewrite`
//! 5. owner-computes guards (audited post-lowering)      — `guards`
//! 6. peephole optimization (optional)                   — `peephole`
//! 7. temporaries de-allocation + C emission             — `frees`, `emit-c`
//!
//! Two read-only analyses ride along: `lint` (SPMD dataflow + shape
//! safety, between 5 and 6) and `analyze` (the static communication
//! oracle + in-place legality, between `frees` and `emit-c`, where the
//! IR's leaf-site numbering matches what the executor instruments).

use crate::error::Result;
use crate::pass::{GuardStats, PassManager};
use otter_analysis::Inference;
use otter_codegen::peephole::PeepholeStats;
use otter_codegen::FusionStats;
use otter_frontend::SourceProvider;
use otter_ir::IrProgram;
use otter_lint::{LintMode, LintReport};
use std::path::PathBuf;

/// Compilation options.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Directory for sample data files (`load`) — used at compile time
    /// for inference and at run time for the actual read.
    pub data_dir: Option<PathBuf>,
    /// Names of optional passes to skip (e.g. `"peephole"` for the
    /// pass-6 ablation). Unknown names are ignored here; use
    /// [`PassManager::disable`] for validated toggling.
    pub disabled_passes: Vec<String>,
    /// How the lint pass treats its findings: [`LintMode::Warn`]
    /// collects them on [`Compiled::lint`], [`LintMode::Deny`] fails
    /// the pipeline on the first warning.
    pub lint: LintMode,
}

impl CompileOptions {
    /// Builder: skip an optional pass by name.
    pub fn without_pass(mut self, name: &str) -> Self {
        self.disabled_passes.push(name.to_string());
        self
    }

    /// Builder: treat lint warnings as pipeline errors.
    pub fn deny_lints(mut self) -> Self {
        self.lint = LintMode::Deny;
        self
    }
}

/// A fully compiled program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Executable SPMD IR.
    pub ir: IrProgram,
    /// The inference results (for tooling and tests).
    pub inference: Inference,
    /// Emitted SPMD C translation unit.
    pub c_source: String,
    /// What pass 6 rewrote.
    pub peephole_stats: PeepholeStats,
    /// What the loop-fusion pass rewrote (zeros when disabled).
    pub fusion_stats: FusionStats,
    /// What pass 5 audited.
    pub guard_stats: GuardStats,
    /// What the lint pass found (empty when linting was disabled).
    pub lint: LintReport,
    /// Static communication-volume predictions, one per leaf site in
    /// [`otter_ir::leaf_sites`] order (from the `analyze` pass).
    pub analysis: Vec<otter_lint::oracle::SitePrediction>,
    /// Data directory carried to execution.
    pub data_dir: Option<PathBuf>,
}

/// Compile a MATLAB script with the full pipeline (standard pass
/// order, no instrumentation collected). This is the low-level,
/// provider-explicit entry; most callers want [`crate::compile`],
/// which takes [`crate::EngineOptions`] and returns a cacheable
/// [`crate::CompiledArtifact`].
pub fn compile_program(
    src: &str,
    provider: &dyn SourceProvider,
    opts: &CompileOptions,
) -> Result<Compiled> {
    Ok(PassManager::standard()
        .compile(src, provider, opts)?
        .compiled)
}

/// Convenience: compile with no M-files and defaults.
pub fn compile_str(src: &str) -> Result<Compiled> {
    compile_program(
        src,
        &otter_frontend::EmptyProvider,
        &CompileOptions::default(),
    )
}

impl Compiled {
    /// The IR rendered for debugging.
    pub fn ir_text(&self) -> String {
        otter_ir::display::program_to_string(&self.ir)
    }
}

// Re-exported for bench/ablation callers.
pub use otter_codegen::peephole::PeepholeStats as Pass6Stats;
