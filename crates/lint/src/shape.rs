//! Shape-safety lints and the SSA-web in-place legality analysis.
//!
//! The lints are *errors* (not warnings): each one identifies a
//! construct the deterministic run-time library would abort on —
//! mismatched elementwise operand shapes, disagreeing matmul/matvec
//! inner dimensions, dot/trapz length mismatches, and constant indices
//! provably outside their matrix's inferred bounds. They fire only
//! when every involved quantity is statically concrete (a known
//! constant or a sample-evaluated symbolic dimension), so a program
//! that compiles clean at the sample shapes stays clean.
//!
//! The in-place analysis groups a scope's matrix variables into SSA
//! webs (shared base name before the `__N` rename suffix) and marks a
//! web *in-place updatable* when its members' live ranges never
//! overlap — each member's storage is dead by the time the next is
//! defined, so one buffer could serve the whole web. The result is
//! recorded on the IR (`IrProgram::in_place`) as a legality fact for
//! later fusion/copy-elision work and reported by `--analyze`.

use crate::oracle::Scope;
use otter_frontend::{Diagnostic, Span};
use otter_ir::{Arg, EwExpr, Instr, IrProgram, MatInit, PrintTarget, SExpr, VarRank};
use std::collections::{BTreeMap, BTreeSet};

/// A shape-safety finding: message + anchor variable (resolved to a
/// span by the caller, like every other lint).
struct ShapeFinding {
    anchor: String,
    message: String,
}

/// Lint one scope; returns error-severity diagnostics with spans.
pub(crate) fn lint_scope(
    body: &[Instr],
    shapes: &BTreeMap<String, otter_analysis::Shape>,
    consts: &BTreeMap<String, f64>,
    def_spans: &BTreeMap<String, Span>,
    func: Option<&str>,
) -> Vec<Diagnostic> {
    let cx = Scope { shapes, consts };
    let mut findings = Vec::new();
    walk(body, &cx, &mut findings);
    findings
        .into_iter()
        .map(|f| {
            let span = def_spans.get(&f.anchor).copied().unwrap_or(Span::DUMMY);
            let message = match func {
                Some(name) => format!("{} (in function `{}`)", f.message, name),
                None => f.message,
            };
            Diagnostic::new("shape", message).with_span(span)
        })
        .collect()
}

fn walk(body: &[Instr], cx: &Scope, out: &mut Vec<ShapeFinding>) {
    for i in body {
        check_instr(i, cx, out);
        match i {
            Instr::If {
                then_body,
                else_body,
                ..
            } => {
                walk(then_body, cx, out);
                walk(else_body, cx, out);
            }
            Instr::While { pre, body, .. } => {
                walk(pre, cx, out);
                walk(body, cx, out);
            }
            Instr::For { body, .. } => walk(body, cx, out),
            _ => {}
        }
    }
}

/// Concrete `(rows, cols)` when both dims resolve.
fn dims(cx: &Scope, v: &str) -> Option<(usize, usize)> {
    cx.shape(v).concrete()
}

fn numel(cx: &Scope, v: &str) -> Option<usize> {
    dims(cx, v).map(|(r, c)| r * c)
}

fn shape_str(cx: &Scope, v: &str) -> String {
    cx.shape(v).to_string()
}

#[allow(clippy::too_many_lines)]
fn check_instr(i: &Instr, cx: &Scope, out: &mut Vec<ShapeFinding>) {
    let mut err = |anchor: &str, message: String| {
        out.push(ShapeFinding {
            anchor: anchor.to_string(),
            message,
        });
    };

    // 1-based index against an inclusive bound, when both are known.
    let index_oob = |idx: &SExpr, bound: Option<usize>| -> Option<(i64, usize)> {
        let v = cx.eval(idx)?;
        let bound = bound?;
        if v.fract() != 0.0 {
            return None;
        }
        let v = v as i64;
        (v < 1 || v > bound as i64).then_some((v, bound))
    };

    match i {
        Instr::ElemWise { dst, expr } => {
            let mut ops = Vec::new();
            expr.mat_operands(&mut ops);
            ops.dedup();
            // All matrix operands of one fused loop must be aligned:
            // identical shapes, element for element.
            for pair in ops.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if let (Some(da), Some(db)) = (dims(cx, a), dims(cx, b)) {
                    if da != db {
                        err(
                            dst,
                            format!(
                                "elementwise shape mismatch: `{a}` is {} but `{b}` is {}",
                                shape_str(cx, a),
                                shape_str(cx, b)
                            ),
                        );
                    }
                }
            }
        }
        Instr::MatMul { dst, a, b } => {
            if let (Some((_, ka)), Some((kb, _))) = (dims(cx, a), dims(cx, b)) {
                if ka != kb {
                    err(
                        dst,
                        format!(
                            "matmul inner dimensions disagree: `{a}` is {} but `{b}` is {}",
                            shape_str(cx, a),
                            shape_str(cx, b)
                        ),
                    );
                }
            }
        }
        Instr::MatVec { dst, a, x } => {
            if let (Some((_, ka)), Some(nx)) = (dims(cx, a), numel(cx, x)) {
                if ka != nx {
                    err(
                        dst,
                        format!(
                            "matvec dimensions disagree: `{a}` is {} but `{x}` has {nx} elements",
                            shape_str(cx, a)
                        ),
                    );
                }
            }
            if let Some((r, c)) = dims(cx, x) {
                if r != 1 && c != 1 {
                    err(
                        dst,
                        format!("matvec needs a vector: `{x}` is {}", shape_str(cx, x)),
                    );
                }
            }
        }
        Instr::MatMulEw { dst, a, b, .. } => {
            if let (Some((_, ka)), Some((kb, _))) = (dims(cx, a), dims(cx, b)) {
                if ka != kb {
                    err(
                        dst,
                        format!(
                            "matmul inner dimensions disagree: `{a}` is {} but `{b}` is {}",
                            shape_str(cx, a),
                            shape_str(cx, b)
                        ),
                    );
                }
            }
        }
        Instr::MatVecEw { dst, a, x, .. } => {
            if let (Some((_, ka)), Some(nx)) = (dims(cx, a), numel(cx, x)) {
                if ka != nx {
                    err(
                        dst,
                        format!(
                            "matvec dimensions disagree: `{a}` is {} but `{x}` has {nx} elements",
                            shape_str(cx, a)
                        ),
                    );
                }
            }
        }
        Instr::ReduceEw { dst, tmp, expr, .. } => {
            // Same alignment rule as `ElemWise`, minus the internal
            // temporary.
            let mut ops = Vec::new();
            expr.mat_operands(&mut ops);
            ops.retain(|m| m != tmp);
            ops.dedup();
            for pair in ops.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if let (Some(da), Some(db)) = (dims(cx, a), dims(cx, b)) {
                    if da != db {
                        err(
                            dst,
                            format!(
                                "elementwise shape mismatch: `{a}` is {} but `{b}` is {}",
                                shape_str(cx, a),
                                shape_str(cx, b)
                            ),
                        );
                    }
                }
            }
        }
        Instr::Outer { dst, u, v } => {
            for op in [u, v] {
                if let Some((r, c)) = dims(cx, op) {
                    if r != 1 && c != 1 {
                        err(
                            dst,
                            format!("outer needs vectors: `{op}` is {}", shape_str(cx, op)),
                        );
                    }
                }
            }
        }
        Instr::Dot { dst, a, b } => {
            if let (Some(na), Some(nb)) = (numel(cx, a), numel(cx, b)) {
                if na != nb {
                    err(
                        dst,
                        format!("dot length mismatch: `{a}` has {na} elements but `{b}` has {nb}"),
                    );
                }
            }
        }
        Instr::TrapzXY { dst, x, y } => {
            if let (Some(nx), Some(ny)) = (numel(cx, x), numel(cx, y)) {
                if nx != ny {
                    err(
                        dst,
                        format!(
                            "trapz length mismatch: `{x}` has {nx} elements but `{y}` has {ny}"
                        ),
                    );
                }
            }
        }
        Instr::Shift { dst, v, .. } => {
            if let Some((r, c)) = dims(cx, v) {
                if r != 1 && c != 1 {
                    err(
                        dst,
                        format!("circshift needs a vector: `{v}` is {}", shape_str(cx, v)),
                    );
                }
            }
        }
        Instr::BroadcastElem { dst, m, i, j } => {
            check_elem_index(cx, dst, m, i, j.as_ref(), &mut err);
        }
        Instr::StoreElem { m, i, j, .. } => {
            let m2 = m.clone();
            check_elem_index(cx, &m2, m, i, j.as_ref(), &mut err);
        }
        Instr::ExtractRow { dst, m, i } => {
            if let Some((idx, rows)) = index_oob(i, dims(cx, m).map(|(r, _)| r)) {
                err(
                    dst,
                    format!("row index {idx} out of bounds: `{m}` has {rows} rows"),
                );
            }
        }
        Instr::AssignRow { m, i, v } => {
            if let Some((idx, rows)) = index_oob(i, dims(cx, m).map(|(r, _)| r)) {
                err(
                    m,
                    format!("row index {idx} out of bounds: `{m}` has {rows} rows"),
                );
            }
            if let (Some((_, cols)), Some(nv)) = (dims(cx, m), numel(cx, v)) {
                if cols != nv {
                    err(
                        m,
                        format!(
                            "row assignment length mismatch: `{m}` has {cols} columns but `{v}` has {nv} elements"
                        ),
                    );
                }
            }
        }
        Instr::ExtractCol { dst, m, j } => {
            if let Some((idx, cols)) = index_oob(j, dims(cx, m).map(|(_, c)| c)) {
                err(
                    dst,
                    format!("column index {idx} out of bounds: `{m}` has {cols} columns"),
                );
            }
        }
        Instr::AssignCol { m, j, v } => {
            if let Some((idx, cols)) = index_oob(j, dims(cx, m).map(|(_, c)| c)) {
                err(
                    m,
                    format!("column index {idx} out of bounds: `{m}` has {cols} columns"),
                );
            }
            if let (Some((rows, _)), Some(nv)) = (dims(cx, m), numel(cx, v)) {
                if rows != nv {
                    err(
                        m,
                        format!(
                            "column assignment length mismatch: `{m}` has {rows} rows but `{v}` has {nv} elements"
                        ),
                    );
                }
            }
        }
        Instr::FillRow { m, i, .. } => {
            if let Some((idx, rows)) = index_oob(i, dims(cx, m).map(|(r, _)| r)) {
                err(
                    m,
                    format!("row index {idx} out of bounds: `{m}` has {rows} rows"),
                );
            }
        }
        Instr::FillCol { m, j, .. } => {
            if let Some((idx, cols)) = index_oob(j, dims(cx, m).map(|(_, c)| c)) {
                err(
                    m,
                    format!("column index {idx} out of bounds: `{m}` has {cols} columns"),
                );
            }
        }
        Instr::ExtractRange { dst, v, lo, hi } => {
            check_range(cx, dst, v, lo, hi, &mut err);
        }
        Instr::FillRange { m, lo, hi, .. } => {
            let m2 = m.clone();
            check_range(cx, &m2, m, lo, hi, &mut err);
        }
        Instr::AssignRange { m, lo, hi, v } => {
            let m2 = m.clone();
            check_range(cx, &m2, m, lo, hi, &mut err);
            if let (Some(l), Some(h), Some(nv)) = (cx.eval(lo), cx.eval(hi), numel(cx, v)) {
                if l.fract() == 0.0 && h.fract() == 0.0 && h >= l {
                    let want = (h - l) as usize + 1;
                    if want != nv {
                        err(
                            m,
                            format!(
                                "range assignment length mismatch: `{m}({l}:{h})` has {want} elements but `{v}` has {nv}"
                            ),
                        );
                    }
                }
            }
        }
        Instr::ExtractStrided {
            dst,
            v,
            lo,
            step,
            hi,
        } => {
            if let (Some(l), Some(s), Some(h), Some(n)) =
                (cx.eval(lo), cx.eval(step), cx.eval(hi), numel(cx, v))
            {
                // A non-empty strided range touches exactly its two
                // end points' extremes.
                let non_empty = (s > 0.0 && l <= h) || (s < 0.0 && l >= h);
                if non_empty && (l.min(h) < 1.0 || l.max(h) > n as f64) {
                    err(
                        dst,
                        format!("strided range {l}:{s}:{h} out of bounds: `{v}` has {n} elements"),
                    );
                }
            }
        }
        _ => {}
    }
}

/// Element access `m(i)` / `m(i, j)` against inferred bounds.
fn check_elem_index(
    cx: &Scope,
    anchor: &str,
    m: &str,
    i: &SExpr,
    j: Option<&SExpr>,
    err: &mut impl FnMut(&str, String),
) {
    let Some((rows, cols)) = dims(cx, m) else {
        return;
    };
    let as_int = |e: &SExpr| cx.eval(e).filter(|v| v.fract() == 0.0).map(|v| v as i64);
    match j {
        Some(j) => {
            if let Some(iv) = as_int(i) {
                if iv < 1 || iv > rows as i64 {
                    err(
                        anchor,
                        format!("row index {iv} out of bounds: `{m}` is {}", cx.shape(m)),
                    );
                }
            }
            if let Some(jv) = as_int(j) {
                if jv < 1 || jv > cols as i64 {
                    err(
                        anchor,
                        format!("column index {jv} out of bounds: `{m}` is {}", cx.shape(m)),
                    );
                }
            }
        }
        None => {
            // Linear (vector) indexing bounds by element count.
            if let Some(iv) = as_int(i) {
                if iv < 1 || iv > (rows * cols) as i64 {
                    err(
                        anchor,
                        format!(
                            "index {iv} out of bounds: `{m}` has {} elements",
                            rows * cols
                        ),
                    );
                }
            }
        }
    }
}

/// `v(lo:hi)` bounds; empty ranges (`lo > hi`) are legal MATLAB.
fn check_range(
    cx: &Scope,
    anchor: &str,
    v: &str,
    lo: &SExpr,
    hi: &SExpr,
    err: &mut impl FnMut(&str, String),
) {
    let (Some(l), Some(h), Some(n)) = (cx.eval(lo), cx.eval(hi), numel(cx, v)) else {
        return;
    };
    if l.fract() != 0.0 || h.fract() != 0.0 || h < l {
        return;
    }
    if l < 1.0 || h > n as f64 {
        err(
            anchor,
            format!("range {l}:{h} out of bounds: `{v}` has {n} elements"),
        );
    }
}

// ---- SSA-web in-place legality ---------------------------------------------

/// The SSA web a renamed variable belongs to: the base name before
/// the `__N` suffix the renamer appends.
fn web_base(name: &str) -> &str {
    if let Some(pos) = name.rfind("__") {
        let (base, suffix) = (&name[..pos], &name[pos + 2..]);
        if !base.is_empty() && !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            return base;
        }
    }
    name
}

/// One flattened def/use event.
#[derive(Default)]
struct Event {
    defs: Vec<String>,
    uses: Vec<String>,
}

fn sexpr_uses(e: &SExpr, uses: &mut Vec<String>) {
    match e {
        SExpr::Const(_) | SExpr::OwnElem => {}
        // Scalar variable reads don't pin matrix storage, but a
        // dimension query does: the matrix must still be allocated.
        SExpr::Var(_) => {}
        SExpr::DimOf { var, .. } => uses.push(var.clone()),
        SExpr::Neg(e) | SExpr::Not(e) => sexpr_uses(e, uses),
        SExpr::Bin(_, a, b) => {
            sexpr_uses(a, uses);
            sexpr_uses(b, uses);
        }
        SExpr::Call(_, args) => {
            for a in args {
                sexpr_uses(a, uses);
            }
        }
    }
}

fn ewexpr_uses(e: &EwExpr, uses: &mut Vec<String>) {
    match e {
        EwExpr::Mat(m) => uses.push(m.clone()),
        EwExpr::Scalar(s) => sexpr_uses(s, uses),
        EwExpr::Neg(e) | EwExpr::Not(e) => ewexpr_uses(e, uses),
        EwExpr::Bin(_, a, b) => {
            ewexpr_uses(a, uses);
            ewexpr_uses(b, uses);
        }
        EwExpr::Call(_, args) => {
            for a in args {
                ewexpr_uses(a, uses);
            }
        }
    }
}

/// Uses of a fused element-wise epilogue, skipping the eliminated
/// temporary `tmp` (it lives only inside the fused instruction).
fn fused_ew_uses(expr: &EwExpr, tmp: &str, ev: &mut Event) {
    let mut uses = Vec::new();
    ewexpr_uses(expr, &mut uses);
    ev.uses.extend(uses.into_iter().filter(|u| u != tmp));
}

/// Matrix defs and uses of one instruction (scalar defs recorded too;
/// the web grouping filters by rank later).
#[allow(clippy::too_many_lines)]
fn event_of(i: &Instr) -> Event {
    let mut ev = Event::default();
    let s = |e: &SExpr, ev: &mut Event| sexpr_uses(e, &mut ev.uses);
    match i {
        Instr::AssignScalar { dst, src } => {
            s(src, &mut ev);
            ev.defs.push(dst.clone());
        }
        Instr::InitMatrix { dst, init } => {
            match init {
                MatInit::Zeros { rows, cols }
                | MatInit::Ones { rows, cols }
                | MatInit::Rand { rows, cols } => {
                    s(rows, &mut ev);
                    s(cols, &mut ev);
                }
                MatInit::Eye { n } => s(n, &mut ev),
                MatInit::Range { start, step, stop } => {
                    s(start, &mut ev);
                    s(step, &mut ev);
                    s(stop, &mut ev);
                }
                MatInit::Literal { rows } => {
                    for row in rows {
                        for e in row {
                            s(e, &mut ev);
                        }
                    }
                }
                MatInit::Linspace { a, b, n } => {
                    s(a, &mut ev);
                    s(b, &mut ev);
                    s(n, &mut ev);
                }
            }
            ev.defs.push(dst.clone());
        }
        Instr::CopyMatrix { dst, src } => {
            ev.uses.push(src.clone());
            ev.defs.push(dst.clone());
        }
        Instr::LoadFile { dst, .. } => ev.defs.push(dst.clone()),
        Instr::ElemWise { dst, expr } => {
            ewexpr_uses(expr, &mut ev.uses);
            ev.defs.push(dst.clone());
        }
        Instr::MatMul { dst, a, b } | Instr::Dot { dst, a, b } => {
            ev.uses.push(a.clone());
            ev.uses.push(b.clone());
            ev.defs.push(dst.clone());
        }
        Instr::MatVec { dst, a, x } => {
            ev.uses.push(a.clone());
            ev.uses.push(x.clone());
            ev.defs.push(dst.clone());
        }
        Instr::Outer { dst, u, v } => {
            ev.uses.push(u.clone());
            ev.uses.push(v.clone());
            ev.defs.push(dst.clone());
        }
        Instr::Transpose { dst, a } => {
            ev.uses.push(a.clone());
            ev.defs.push(dst.clone());
        }
        Instr::BroadcastElem { dst, m, i, j } => {
            ev.uses.push(m.clone());
            s(i, &mut ev);
            if let Some(j) = j {
                s(j, &mut ev);
            }
            ev.defs.push(dst.clone());
        }
        Instr::StoreElem { m, i, j, val } => {
            // Read-modify-write of m's storage: both use and def.
            ev.uses.push(m.clone());
            ev.defs.push(m.clone());
            s(i, &mut ev);
            if let Some(j) = j {
                s(j, &mut ev);
            }
            s(val, &mut ev);
        }
        Instr::Reduce { dst, m, .. } => {
            ev.uses.push(m.clone());
            ev.defs.push(dst.clone());
        }
        // Fused pairs: the eliminated temporary is internal to the
        // instruction — it is neither a use nor a def.
        Instr::MatMulEw {
            dst,
            a,
            b,
            tmp,
            expr,
        } => {
            ev.uses.push(a.clone());
            ev.uses.push(b.clone());
            fused_ew_uses(expr, tmp, &mut ev);
            ev.defs.push(dst.clone());
        }
        Instr::MatVecEw {
            dst,
            a,
            x,
            tmp,
            expr,
        } => {
            ev.uses.push(a.clone());
            ev.uses.push(x.clone());
            fused_ew_uses(expr, tmp, &mut ev);
            ev.defs.push(dst.clone());
        }
        Instr::ReduceEw { dst, tmp, expr, .. } => {
            fused_ew_uses(expr, tmp, &mut ev);
            ev.defs.push(dst.clone());
        }
        Instr::TrapzXY { dst, x, y } => {
            ev.uses.push(x.clone());
            ev.uses.push(y.clone());
            ev.defs.push(dst.clone());
        }
        Instr::ColReduce { dst, m, .. } => {
            ev.uses.push(m.clone());
            ev.defs.push(dst.clone());
        }
        Instr::Shift { dst, v, k } => {
            ev.uses.push(v.clone());
            s(k, &mut ev);
            ev.defs.push(dst.clone());
        }
        Instr::ExtractRow { dst, m, i } => {
            ev.uses.push(m.clone());
            s(i, &mut ev);
            ev.defs.push(dst.clone());
        }
        Instr::ExtractCol { dst, m, j } => {
            ev.uses.push(m.clone());
            s(j, &mut ev);
            ev.defs.push(dst.clone());
        }
        Instr::AssignRow { m, i, v } => {
            ev.uses.push(m.clone());
            ev.uses.push(v.clone());
            s(i, &mut ev);
            ev.defs.push(m.clone());
        }
        Instr::AssignCol { m, j, v } => {
            ev.uses.push(m.clone());
            ev.uses.push(v.clone());
            s(j, &mut ev);
            ev.defs.push(m.clone());
        }
        Instr::ExtractRange { dst, v, lo, hi } => {
            ev.uses.push(v.clone());
            s(lo, &mut ev);
            s(hi, &mut ev);
            ev.defs.push(dst.clone());
        }
        Instr::ExtractStrided {
            dst,
            v,
            lo,
            step,
            hi,
        } => {
            ev.uses.push(v.clone());
            s(lo, &mut ev);
            s(step, &mut ev);
            s(hi, &mut ev);
            ev.defs.push(dst.clone());
        }
        Instr::FillRow { m, i, val } => {
            ev.uses.push(m.clone());
            s(i, &mut ev);
            s(val, &mut ev);
            ev.defs.push(m.clone());
        }
        Instr::FillCol { m, j, val } => {
            ev.uses.push(m.clone());
            s(j, &mut ev);
            s(val, &mut ev);
            ev.defs.push(m.clone());
        }
        Instr::FillRange { m, lo, hi, val } => {
            ev.uses.push(m.clone());
            s(lo, &mut ev);
            s(hi, &mut ev);
            s(val, &mut ev);
            ev.defs.push(m.clone());
        }
        Instr::AssignRange { m, lo, hi, v } => {
            ev.uses.push(m.clone());
            ev.uses.push(v.clone());
            s(lo, &mut ev);
            s(hi, &mut ev);
            ev.defs.push(m.clone());
        }
        // `Free` releases storage; it neither reads the value nor
        // extends the live range.
        Instr::Free { .. } => {}
        Instr::Call { args, outs, .. } => {
            for a in args {
                match a {
                    Arg::Scalar(e) => s(e, &mut ev),
                    Arg::Matrix(m) => ev.uses.push(m.clone()),
                }
            }
            ev.defs.extend(outs.iter().cloned());
        }
        Instr::Print { target, .. } => match target {
            PrintTarget::Scalar(e) => s(e, &mut ev),
            PrintTarget::Matrix(m) => ev.uses.push(m.clone()),
        },
        Instr::If { cond, .. } => s(cond, &mut ev),
        Instr::While { cond, .. } => s(cond, &mut ev),
        Instr::For {
            start, step, stop, ..
        } => {
            s(start, &mut ev);
            s(step, &mut ev);
            s(stop, &mut ev);
        }
        Instr::Break | Instr::Continue => {}
    }
    ev
}

/// Flatten a scope into a linear event sequence. Loop bodies are
/// emitted twice so a value defined in one iteration and read in the
/// next (a back-edge use) shows an overlapping interval — the classic
/// conservative unrolling for interval-based liveness.
fn flatten(body: &[Instr], out: &mut Vec<Event>) {
    for i in body {
        out.push(event_of(i));
        match i {
            Instr::If {
                then_body,
                else_body,
                ..
            } => {
                flatten(then_body, out);
                flatten(else_body, out);
            }
            Instr::While { pre, body, .. } => {
                for _ in 0..2 {
                    flatten(pre, out);
                    flatten(body, out);
                }
            }
            Instr::For { body, .. } => {
                for _ in 0..2 {
                    flatten(body, out);
                }
            }
            _ => {}
        }
    }
}

/// Matrix variables of one scope proven safe to update in place:
/// members of a multi-member SSA web whose live intervals never
/// overlap and whose concrete shapes agree, so the whole web could
/// share one distributed buffer.
pub(crate) fn in_place_scope(
    body: &[Instr],
    ranks: &BTreeMap<String, VarRank>,
    shapes: &BTreeMap<String, otter_analysis::Shape>,
    live_out: &[String],
) -> BTreeSet<String> {
    let mut events = Vec::new();
    flatten(body, &mut events);

    // Live interval [first def, last mention] per variable.
    let mut interval: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (idx, ev) in events.iter().enumerate() {
        for name in ev.defs.iter().chain(&ev.uses) {
            interval
                .entry(name.clone())
                .and_modify(|(_, end)| *end = idx)
                .or_insert((idx, idx));
        }
    }
    // Scope outputs stay live past the last instruction.
    for name in live_out {
        if let Some((_, end)) = interval.get_mut(name) {
            *end = events.len();
        }
    }

    let mut webs: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for name in interval.keys() {
        if ranks.get(name) == Some(&VarRank::Matrix) {
            webs.entry(web_base(name)).or_default().push(name);
        }
    }

    let mut ok = BTreeSet::new();
    for (_, mut members) in webs {
        if members.len() < 2 {
            continue;
        }
        members.sort_by_key(|m| interval[*m].0);
        let shapes_agree = members
            .windows(2)
            .all(|w| match (shapes.get(w[0]), shapes.get(w[1])) {
                (Some(a), Some(b)) => a.concrete().is_some() && a.concrete() == b.concrete(),
                _ => false,
            });
        // Consecutive intervals may touch at the defining instruction
        // (the in-place update point: `x__1 = f(x)` reads x exactly
        // where x__1 is born) but never extend past it.
        let disjoint = members
            .windows(2)
            .all(|w| interval[w[0]].1 <= interval[w[1]].0);
        if shapes_agree && disjoint {
            ok.extend(members.iter().map(|m| m.to_string()));
        }
    }
    ok
}

/// Annotate a whole program's `in_place` legality sets.
pub fn annotate_in_place(prog: &mut IrProgram) {
    let main_shapes = crate::oracle::refined_shapes(&prog.main, &prog.var_shapes, &prog.var_consts);
    prog.in_place = in_place_scope(&prog.main, &prog.var_ranks, &main_shapes, &[]);
    let names: Vec<String> = prog.functions.keys().cloned().collect();
    for name in names {
        let f = prog.functions.get_mut(&name).expect("key exists");
        let outs: Vec<String> = f.outs.iter().map(|(n, _)| n.clone()).collect();
        let f_shapes = crate::oracle::refined_shapes(&f.body, &f.var_shapes, &f.var_consts);
        f.in_place = in_place_scope(&f.body, &f.var_ranks, &f_shapes, &outs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_analysis::Shape;
    use otter_ir::RedOp;

    fn scope<'a>(
        shapes: &'a BTreeMap<String, Shape>,
        consts: &'a BTreeMap<String, f64>,
    ) -> Scope<'a> {
        Scope { shapes, consts }
    }

    fn shapes(pairs: &[(&str, usize, usize)]) -> BTreeMap<String, Shape> {
        pairs
            .iter()
            .map(|&(n, r, c)| (n.to_string(), Shape::known(r, c)))
            .collect()
    }

    #[test]
    fn web_base_strips_ssa_suffix() {
        assert_eq!(web_base("c__1"), "c");
        assert_eq!(web_base("c__12"), "c");
        assert_eq!(web_base("c"), "c");
        assert_eq!(web_base("ML_tmp3"), "ML_tmp3");
        assert_eq!(web_base("a__b"), "a__b");
        assert_eq!(web_base("__1"), "__1");
    }

    #[test]
    fn mismatched_dot_and_oob_index_are_errors() {
        let shapes = shapes(&[("a", 1, 16), ("b", 1, 9), ("m", 4, 4)]);
        let consts = BTreeMap::new();
        let cx = scope(&shapes, &consts);
        let body = vec![
            Instr::Dot {
                dst: "s".into(),
                a: "a".into(),
                b: "b".into(),
            },
            Instr::BroadcastElem {
                dst: "t".into(),
                m: "m".into(),
                i: SExpr::c(5.0),
                j: Some(SExpr::c(1.0)),
            },
        ];
        let mut findings = Vec::new();
        walk(&body, &cx, &mut findings);
        assert_eq!(
            findings.len(),
            2,
            "{:?}",
            findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
        assert!(findings[0].message.contains("dot length mismatch"));
        assert!(findings[1].message.contains("row index 5 out of bounds"));
    }

    #[test]
    fn clean_and_unknown_shapes_stay_silent() {
        // Unknown shapes must never fire an error-severity lint.
        let shapes = shapes(&[("a", 1, 16)]);
        let consts = BTreeMap::new();
        let cx = scope(&shapes, &consts);
        let body = vec![
            Instr::Dot {
                dst: "s".into(),
                a: "a".into(),
                b: "unknown_b".into(),
            },
            Instr::Dot {
                dst: "t".into(),
                a: "a".into(),
                b: "a".into(),
            },
        ];
        let mut findings = Vec::new();
        walk(&body, &cx, &mut findings);
        assert!(
            findings.is_empty(),
            "{:?}",
            findings.first().map(|f| &f.message)
        );
    }

    #[test]
    fn legal_empty_range_is_not_flagged() {
        let shapes = shapes(&[("v", 1, 8)]);
        let consts = BTreeMap::new();
        let cx = scope(&shapes, &consts);
        let body = vec![
            // v(5:4) is empty — legal.
            Instr::ExtractRange {
                dst: "w".into(),
                v: "v".into(),
                lo: SExpr::c(5.0),
                hi: SExpr::c(4.0),
            },
            // v(3:9) overruns — error.
            Instr::ExtractRange {
                dst: "u".into(),
                v: "v".into(),
                lo: SExpr::c(3.0),
                hi: SExpr::c(9.0),
            },
        ];
        let mut findings = Vec::new();
        walk(&body, &cx, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("range 3:9 out of bounds"));
    }

    #[test]
    fn in_place_web_requires_disjoint_intervals() {
        let ranks: BTreeMap<String, VarRank> = [
            ("c".to_string(), VarRank::Matrix),
            ("c__1".to_string(), VarRank::Matrix),
            ("s".to_string(), VarRank::Scalar),
        ]
        .into();
        let shapes = shapes(&[("c", 4, 4), ("c__1", 4, 4)]);

        // c's last use is exactly c__1's def → in place.
        let sequential = vec![
            Instr::InitMatrix {
                dst: "c".into(),
                init: MatInit::Eye { n: SExpr::c(4.0) },
            },
            Instr::MatMul {
                dst: "c__1".into(),
                a: "c".into(),
                b: "c".into(),
            },
            Instr::Reduce {
                dst: "s".into(),
                op: RedOp::SumAll,
                m: "c__1".into(),
            },
        ];
        let ok = in_place_scope(&sequential, &ranks, &shapes, &[]);
        assert!(ok.contains("c") && ok.contains("c__1"), "{ok:?}");

        // c is read again after c__1 exists → interference.
        let mut overlapping = sequential.clone();
        overlapping.push(Instr::Reduce {
            dst: "s".into(),
            op: RedOp::SumAll,
            m: "c".into(),
        });
        let bad = in_place_scope(&overlapping, &ranks, &shapes, &[]);
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn loop_back_edges_count_as_overlap() {
        let ranks: BTreeMap<String, VarRank> = [
            ("a".to_string(), VarRank::Matrix),
            ("a__1".to_string(), VarRank::Matrix),
        ]
        .into();
        let shapes = shapes(&[("a", 4, 4), ("a__1", 4, 4)]);
        // Inside a loop, a__1 = f(a) then a = g(a__1): the next
        // iteration reads a again, so the doubled body overlaps the
        // intervals (def of a__1 in copy 1 precedes use of a in copy
        // 2 only if a's interval is extended — which the second copy
        // does).
        let body = vec![Instr::For {
            var: "i".into(),
            start: SExpr::c(1.0),
            step: SExpr::c(1.0),
            stop: SExpr::c(3.0),
            body: vec![
                Instr::Transpose {
                    dst: "a__1".into(),
                    a: "a".into(),
                },
                Instr::Transpose {
                    dst: "a".into(),
                    a: "a__1".into(),
                },
            ],
        }];
        let ok = in_place_scope(&body, &ranks, &shapes, &[]);
        assert!(ok.is_empty(), "{ok:?}");
    }
}
