//! `otter-lint` — static SPMD analyses over the post-rewrite IR.
//!
//! The compiler's rewrite pass decides, silently, where every value
//! lives and which run-time communication calls move it. This crate
//! makes those decisions auditable: a small forward-dataflow framework
//! ([`dataflow`]) drives three analyses and reports their findings as
//! warnings the driver can print (`otterc --lint`) or turn into hard
//! errors (`--lint=deny`):
//!
//! * [`dist`] — distribution-state inference over the lattice
//!   `⊥ < {replicated, row-dist, block-vec} < ⊤`, with lints for
//!   redundant owner-broadcasts, loop-invariant redistribution churn,
//!   and dead distributed values.
//! * [`divergence`] — rank-dependence taint analysis flagging
//!   communication reachable only under rank-divergent control flow
//!   (collective deadlock / unpaired point-to-point traffic), plus a
//!   static census of communication sites.
//! * [`shape`] — shape-safety *errors* (mismatched elementwise /
//!   matmul / dot operands, constant indices provably out of bounds)
//!   plus the SSA-web in-place legality analysis, both driven by the
//!   symbolic shapes inference attaches to the IR.
//! * [`oracle`] — the static communication-volume oracle: a closed-
//!   form `messages(p)` / `bytes(p)` model per leaf site, exact
//!   against the deterministic modeled run.
//!
//! Everything here is read-only over the IR: linting never changes
//! what the pipeline emits.

pub mod dataflow;
pub mod dist;
pub mod divergence;
pub mod oracle;
pub mod shape;

use otter_frontend::{Diagnostic, Span};
use otter_ir::{IrFunction, IrProgram, VarRank};
use std::collections::BTreeMap;

/// A raw lint finding: a message anchored to the variable whose
/// definition it is about (resolved to a source span via the IR's
/// `def_spans` metadata).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Variable (or opcode, for def-less instructions) the finding
    /// points at.
    pub anchor: String,
    pub message: String,
}

/// How the driver treats lint warnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintMode {
    /// Report warnings and keep compiling.
    #[default]
    Warn,
    /// Any warning fails the pipeline.
    Deny,
}

/// The result of linting one program.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings as printable warnings, deduplicated and ordered by
    /// source position.
    pub warnings: Vec<Diagnostic>,
    /// No communication site is reachable under rank-divergent control
    /// flow — the static guarantee that every rank runs every
    /// collective (no SPMD deadlock).
    pub divergence_free: bool,
    /// Every point-to-point site executes under uniform control flow,
    /// so each rank's sends pair with the partner's receives.
    pub sendrecv_matched: bool,
    /// Static count of point-to-point communication sites.
    pub p2p_sites: usize,
    /// Static count of collective communication sites.
    pub collective_sites: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
    }
}

/// Lint every scope of a lowered program.
pub fn lint_program(p: &IrProgram) -> LintReport {
    let mut report = LintReport {
        divergence_free: true,
        sendrecv_matched: true,
        ..Default::default()
    };
    let mut raw: Vec<(Finding, Span)> = Vec::new();

    lint_scope(
        &p.main,
        &p.var_ranks,
        &p.def_spans,
        &[],
        &[],
        None,
        &mut raw,
        &mut report,
    );
    for f in p.functions.values() {
        let params: Vec<String> = f.params.iter().map(|(n, _)| n.clone()).collect();
        let outs: Vec<String> = f.outs.iter().map(|(n, _)| n.clone()).collect();
        lint_scope(
            &f.body,
            &f.var_ranks,
            &f.def_spans,
            &params,
            &outs,
            Some(f),
            &mut raw,
            &mut report,
        );
    }

    // Transfer functions re-run under loop fixpoints, so identical
    // findings repeat; deduplicate, then order by source position for
    // stable golden output.
    raw.sort_by(|(a, sa), (b, sb)| {
        (sa.line, sa.col, &a.message).cmp(&(sb.line, sb.col, &b.message))
    });
    raw.dedup_by(|(a, sa), (b, sb)| a.message == b.message && sa == sb);
    report.warnings = raw
        .into_iter()
        .map(|(f, span)| Diagnostic::warning("lint", f.message).with_span(span))
        .collect();

    // Shape-safety findings are error-severity: they identify aborts
    // the run-time library would hit. Merging them into the same
    // report means deny mode fails on them automatically and warn
    // mode still surfaces them.
    let main_shapes = oracle::refined_shapes(&p.main, &p.var_shapes, &p.var_consts);
    report.warnings.extend(shape::lint_scope(
        &p.main,
        &main_shapes,
        &p.var_consts,
        &p.def_spans,
        None,
    ));
    for f in p.functions.values() {
        let f_shapes = oracle::refined_shapes(&f.body, &f.var_shapes, &f.var_consts);
        report.warnings.extend(shape::lint_scope(
            &f.body,
            &f_shapes,
            &f.var_consts,
            &f.def_spans,
            Some(&f.name),
        ));
    }
    report.warnings.sort_by(|a, b| {
        (a.span.line, a.span.col, &a.message).cmp(&(b.span.line, b.span.col, &b.message))
    });
    report
}

#[allow(clippy::too_many_arguments)]
fn lint_scope(
    body: &[otter_ir::Instr],
    ranks: &BTreeMap<String, VarRank>,
    def_spans: &BTreeMap<String, Span>,
    params: &[String],
    live_out: &[String],
    func: Option<&IrFunction>,
    raw: &mut Vec<(Finding, Span)>,
    report: &mut LintReport,
) {
    let mut findings = dist::lint_scope(body, ranks, live_out);
    let (div_findings, free) = divergence::lint_scope(body, params);
    findings.extend(div_findings);
    report.divergence_free &= free;

    let sites = divergence::count_sites(body);
    report.p2p_sites += sites.point_to_point;
    report.collective_sites += sites.collective;

    for mut f in findings {
        if f.message.starts_with("send/recv mismatch") {
            report.sendrecv_matched = false;
        }
        let span = def_spans.get(&f.anchor).copied().unwrap_or(Span::DUMMY);
        if let Some(func) = func {
            f.message = format!("{} (in function `{}`)", f.message, func.name);
        }
        raw.push((f, span));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_ir::*;

    fn rand_mat(dst: &str) -> Instr {
        Instr::InitMatrix {
            dst: dst.into(),
            init: MatInit::Rand {
                rows: SExpr::c(4.0),
                cols: SExpr::c(4.0),
            },
        }
    }

    #[test]
    fn clean_program_reports_clean() {
        let mut p = IrProgram {
            main: vec![
                rand_mat("a"),
                Instr::Reduce {
                    dst: "s".into(),
                    op: RedOp::SumAll,
                    m: "a".into(),
                },
                Instr::Print {
                    name: "s".into(),
                    target: PrintTarget::Scalar(SExpr::var("s")),
                },
            ],
            ..Default::default()
        };
        p.var_ranks.insert("a".into(), VarRank::Matrix);
        p.var_ranks.insert("s".into(), VarRank::Scalar);
        let r = lint_program(&p);
        assert!(r.is_clean(), "{:?}", r.warnings);
        assert!(r.divergence_free);
        assert!(r.sendrecv_matched);
        assert_eq!(r.collective_sites, 1);
        assert_eq!(r.p2p_sites, 0);
    }

    #[test]
    fn warnings_carry_def_spans_and_sorted_order() {
        let mut p = IrProgram {
            main: vec![
                rand_mat("a"),
                Instr::BroadcastElem {
                    dst: "x".into(),
                    m: "a".into(),
                    i: SExpr::c(1.0),
                    j: Some(SExpr::c(2.0)),
                },
                Instr::BroadcastElem {
                    dst: "y".into(),
                    m: "a".into(),
                    i: SExpr::c(1.0),
                    j: Some(SExpr::c(2.0)),
                },
                Instr::Print {
                    name: "a".into(),
                    target: PrintTarget::Matrix("a".into()),
                },
            ],
            ..Default::default()
        };
        for (n, r) in [
            ("a", VarRank::Matrix),
            ("x", VarRank::Scalar),
            ("y", VarRank::Scalar),
        ] {
            p.var_ranks.insert(n.into(), r);
        }
        p.def_spans.insert("y".into(), Span::new(0, 0, 3, 1));
        let r = lint_program(&p);
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        let w = r.warnings[0].to_string();
        assert!(
            w.starts_with("warning[lint] 3:1: redundant broadcast"),
            "{w}"
        );
    }

    #[test]
    fn function_findings_name_their_scope() {
        let mut f = IrFunction {
            name: "helper".into(),
            params: vec![("m".into(), VarRank::Matrix)],
            outs: vec![("s".into(), VarRank::Scalar)],
            body: vec![
                Instr::BroadcastElem {
                    dst: "t".into(),
                    m: "m".into(),
                    i: SExpr::c(1.0),
                    j: Some(SExpr::c(1.0)),
                },
                Instr::BroadcastElem {
                    dst: "u".into(),
                    m: "m".into(),
                    i: SExpr::c(1.0),
                    j: Some(SExpr::c(1.0)),
                },
                Instr::AssignScalar {
                    dst: "s".into(),
                    src: SExpr::bin(SBinOp::Add, SExpr::var("t"), SExpr::var("u")),
                },
            ],
            ..Default::default()
        };
        f.var_ranks.insert("m".into(), VarRank::Matrix);
        let mut p = IrProgram::default();
        p.functions.insert("helper".into(), f);
        let r = lint_program(&p);
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert!(r.warnings[0].message.contains("(in function `helper`)"));
    }

    #[test]
    fn duplicate_findings_from_fixpoint_deduplicated() {
        // A loop-invariant redundant broadcast inside a `for` is
        // visited on every fixpoint iteration; the report must carry
        // it once.
        let mut p = IrProgram {
            main: vec![
                rand_mat("a"),
                Instr::BroadcastElem {
                    dst: "x0".into(),
                    m: "a".into(),
                    i: SExpr::c(1.0),
                    j: Some(SExpr::c(1.0)),
                },
                Instr::For {
                    var: "k".into(),
                    start: SExpr::c(1.0),
                    step: SExpr::c(1.0),
                    stop: SExpr::c(9.0),
                    body: vec![Instr::BroadcastElem {
                        dst: "x".into(),
                        m: "a".into(),
                        i: SExpr::c(1.0),
                        j: Some(SExpr::c(1.0)),
                    }],
                },
                Instr::Print {
                    name: "a".into(),
                    target: PrintTarget::Matrix("a".into()),
                },
            ],
            ..Default::default()
        };
        for (n, r) in [
            ("a", VarRank::Matrix),
            ("x0", VarRank::Scalar),
            ("x", VarRank::Scalar),
            ("k", VarRank::Scalar),
        ] {
            p.var_ranks.insert(n.into(), r);
        }
        let r = lint_program(&p);
        let redundant: Vec<_> = r
            .warnings
            .iter()
            .filter(|w| w.message.starts_with("redundant broadcast"))
            .collect();
        assert_eq!(redundant.len(), 1, "{redundant:?}");
    }
}
