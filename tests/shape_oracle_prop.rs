//! Property tests for the static-analysis tentpole: the symbolic
//! shape layer and the communication-volume oracle, checked against
//! independent ground truth on all four benchmark applications.
//!
//! Two contracts:
//!
//! * **Oracle exactness** — for every leaf site of every app, at every
//!   p ∈ {1, 2, 4, 8}, the compile-time model evaluated at the sample
//!   dimensions times the measured execution count equals the
//!   instrumented modeled run's per-site message and byte totals
//!   *exactly* (no tolerance), and statically predicted trip products
//!   equal measured execution counts.
//! * **Shape fidelity** — the symbolic shapes inference and the
//!   structural temp-refinement derive, evaluated at the sample
//!   dimensions, equal the shapes the reference interpreter actually
//!   produces for every surviving workspace matrix.

mod common;

use otter_core::analysis::{refined_shapes, Execs};
use otter_core::{compile, EngineOptions};
use otter_machine::meiko_cs2;

#[test]
fn oracle_is_exact_for_every_app_and_rank_count() {
    for app in otter_apps::test_apps() {
        let opts = EngineOptions::builder().analyze(true).build();
        let artifact = compile(&app.script, &opts).expect("app compiles");
        let predictions = &artifact.compiled().analysis;
        assert!(!predictions.is_empty(), "{}: no predictions", app.id);

        for p in [1usize, 2, 4, 8] {
            let report = common::run_compiled(&artifact, &meiko_cs2(), p)
                .unwrap_or_else(|e| panic!("{} at p={p}: {e}", app.id));
            assert_eq!(
                report.comm_sites.len(),
                predictions.len(),
                "{} at p={p}: oracle and executor disagree on the site list",
                app.id
            );
            for (pred, site) in predictions.iter().zip(&report.comm_sites) {
                assert_eq!(pred.site, site.site, "{}: site order", app.id);
                if let Execs::Static(k) = pred.execs {
                    assert_eq!(
                        k, site.execs,
                        "{} site {} ({}) at p={p}: static trip product",
                        app.id, site.site, site.opcode
                    );
                }
                let per = pred.model.per_exec(p).unwrap_or_else(|| {
                    panic!(
                        "{} site {} ({}): model did not resolve at p={p}",
                        app.id, site.site, site.opcode
                    )
                });
                assert_eq!(
                    per.messages * site.execs,
                    site.messages,
                    "{} site {} ({}) at p={p}: messages",
                    app.id,
                    site.site,
                    site.opcode
                );
                assert_eq!(
                    per.bytes * site.execs,
                    site.bytes,
                    "{} site {} ({}) at p={p}: bytes",
                    app.id,
                    site.site,
                    site.opcode
                );
            }
        }
    }
}

/// The final SSA version of source variable `base` (`x`, `x__1`, …)
/// in the shape map, if any version is recorded.
fn final_version<'a>(
    shapes: &'a std::collections::BTreeMap<String, otter_analysis::Shape>,
    base: &str,
) -> Option<&'a otter_analysis::Shape> {
    let mut best: Option<(u64, &otter_analysis::Shape)> = None;
    for (name, shape) in shapes {
        let idx = if name == base {
            Some(0)
        } else {
            name.strip_prefix(base)
                .and_then(|rest| rest.strip_prefix("__"))
                .and_then(|digits| digits.parse::<u64>().ok())
                .map(|k| k + 1)
        };
        if let Some(idx) = idx {
            if best.is_none_or(|(b, _)| idx >= b) {
                best = Some((idx, shape));
            }
        }
    }
    best.map(|(_, s)| s)
}

#[test]
fn symbolic_shapes_match_interpreter_shapes() {
    for app in otter_apps::test_apps() {
        let artifact = compile(&app.script, &EngineOptions::default()).expect("app compiles");
        let ir = &artifact.compiled().ir;
        let shapes = refined_shapes(&ir.main, &ir.var_shapes, &ir.var_consts);

        let outcome =
            otter_interp::run_script(&app.script, None).expect("interpreter runs the app");
        let mut checked = 0usize;
        for (name, value) in &outcome.workspace {
            let otter_interp::Value::Matrix(m) = value else {
                continue;
            };
            // The interpreter's final value corresponds to the last
            // SSA version; compare whenever that shape is statically
            // concrete (symbolic-only shapes are legal, wrong concrete
            // ones are not).
            if let Some((r, c)) = final_version(&shapes, name).and_then(|s| s.concrete()) {
                assert_eq!(
                    (r, c),
                    (m.rows(), m.cols()),
                    "{}: static shape of `{name}` disagrees with the interpreter",
                    app.id
                );
                checked += 1;
            }
        }
        assert!(
            checked >= 2,
            "{}: only {checked} concrete shapes checked — inference lost coverage",
            app.id
        );
    }
}
