//! Linear (non-tree) collective implementations — the naive schedules
//! a first-cut 1998 run-time library might have used, kept as the
//! baseline for the collectives ablation: `O(p)` latency terms instead
//! of the binomial trees' `O(log p)`.

use crate::collectives::ReduceOp;
use crate::comm::Comm;

impl Comm {
    /// Broadcast with a linear schedule: the root sends to every other
    /// rank in turn. `O(p)` sends on the root's critical path.
    pub fn broadcast_linear(&mut self, root: usize, data: &[f64]) -> Vec<f64> {
        let p = self.size();
        assert!(root < p, "broadcast root {root} out of range");
        if self.rank() == root {
            for r in 0..p {
                if r != root {
                    self.send(r, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root)
        }
    }

    /// Reduce with a linear schedule: every rank sends to the root,
    /// which folds in rank order. Deterministic and `O(p)` on the
    /// root.
    pub fn reduce_linear(&mut self, root: usize, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        let p = self.size();
        assert!(root < p, "reduce root {root} out of range");
        if self.rank() == root {
            let mut acc = data.to_vec();
            for r in 0..p {
                if r != root {
                    let incoming = self.recv(r);
                    op.fold(&mut acc, &incoming);
                    self.compute(incoming.len() as f64);
                }
            }
            Some(acc)
        } else {
            self.send(root, data);
            None
        }
    }

    /// Linear allreduce: linear reduce + linear broadcast.
    pub fn allreduce_linear(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        match self.reduce_linear(0, data, op) {
            Some(v) => self.broadcast_linear(0, &v),
            None => self.broadcast_linear(0, &[]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_spmd;
    use otter_machine::meiko_cs2;

    #[test]
    fn linear_broadcast_delivers() {
        for p in [1usize, 2, 5, 8] {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                let data = if c.rank() == 0 {
                    vec![3.0, 4.0]
                } else {
                    vec![]
                };
                c.broadcast_linear(0, &data)
            });
            for r in &res {
                assert_eq!(r.value, vec![3.0, 4.0], "p={p}");
            }
        }
    }

    #[test]
    fn linear_reduce_matches_tree_reduce() {
        for p in [1usize, 3, 8, 16] {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                let mine = vec![c.rank() as f64 + 1.0];
                let lin = c.allreduce_linear(&mine, ReduceOp::Sum);
                let tree = c.allreduce(&mine, ReduceOp::Sum);
                (lin, tree)
            });
            for r in &res {
                // Values agree to FP-reassociation tolerance.
                assert!((r.value.0[0] - r.value.1[0]).abs() < 1e-12, "p={p}");
            }
        }
    }

    #[test]
    fn tree_beats_linear_in_modeled_latency_at_scale() {
        let time = |linear: bool| {
            let res = run_spmd(&meiko_cs2(), 16, move |c| {
                for _ in 0..10 {
                    if linear {
                        c.broadcast_linear(0, &[1.0]);
                    } else {
                        c.broadcast(0, &[1.0]);
                    }
                }
                c.clock()
            });
            res.iter().map(|r| r.clock).fold(0.0, f64::max)
        };
        let t_tree = time(false);
        let t_linear = time(true);
        assert!(
            t_linear > 2.0 * t_tree,
            "linear {t_linear} should be much slower than tree {t_tree} at p=16"
        );
    }
}
