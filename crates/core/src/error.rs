//! Unified driver error type.
//!
//! Every failure along the compile-or-execute path is an
//! [`otter_frontend::Diagnostic`] — span, message, and the name of the
//! pipeline stage that raised it — so `otterc` and the benchmark
//! harness print one consistent `error[<pass>] <loc>: <message>`
//! format regardless of which crate the error started in. The
//! per-crate error types keep their own shapes; the `From` impls here
//! (and the `Diagnostic` conversions they build on) do the lifting,
//! and the pass manager re-labels `pass` with the concrete stage name.

use otter_frontend::Diagnostic;
use std::fmt;

/// Any failure along the compile-or-execute path, carrying the shared
/// diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct OtterError(pub Diagnostic);

impl OtterError {
    /// A front-end (scan/parse) failure with no richer source.
    pub fn frontend(message: impl Into<String>) -> Self {
        OtterError(Diagnostic::new("parse", message))
    }

    /// An analysis failure with no richer source.
    pub fn analysis(message: impl Into<String>) -> Self {
        OtterError(Diagnostic::new("analysis", message))
    }

    /// A codegen failure with no richer source.
    pub fn codegen(message: impl Into<String>) -> Self {
        OtterError(Diagnostic::new("codegen", message))
    }

    /// A run-time (executor/interpreter) failure.
    pub fn execution(message: impl Into<String>) -> Self {
        OtterError(Diagnostic::new("execution", message))
    }

    /// The underlying diagnostic.
    pub fn diagnostic(&self) -> &Diagnostic {
        &self.0
    }

    /// Re-label the originating pass.
    pub fn with_pass(self, pass: impl Into<String>) -> Self {
        OtterError(self.0.with_pass(pass))
    }
}

impl fmt::Display for OtterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for OtterError {}

impl From<Diagnostic> for OtterError {
    fn from(d: Diagnostic) -> Self {
        OtterError(d)
    }
}

impl From<otter_frontend::FrontendError> for OtterError {
    fn from(e: otter_frontend::FrontendError) -> Self {
        OtterError(e.into())
    }
}

impl From<otter_analysis::AnalysisError> for OtterError {
    fn from(e: otter_analysis::AnalysisError) -> Self {
        OtterError(e.into())
    }
}

impl From<otter_codegen::CodegenError> for OtterError {
    fn from(e: otter_codegen::CodegenError) -> Self {
        OtterError(e.into())
    }
}

impl From<otter_interp::InterpError> for OtterError {
    fn from(e: otter_interp::InterpError) -> Self {
        OtterError(e.into())
    }
}

impl From<otter_mpi::CommError> for OtterError {
    fn from(e: otter_mpi::CommError) -> Self {
        OtterError(Diagnostic::new("comm", e.to_string()))
    }
}

impl From<otter_mpi::FailureReport> for OtterError {
    fn from(r: otter_mpi::FailureReport) -> Self {
        OtterError(Diagnostic::new("comm", r.to_string()))
    }
}

pub type Result<T> = std::result::Result<T, OtterError>;

#[cfg(test)]
mod tests {
    use super::*;
    use otter_frontend::Span;

    #[test]
    fn constructors_set_the_pass() {
        assert_eq!(
            OtterError::execution("boom").to_string(),
            "error[execution]: boom"
        );
        assert_eq!(
            OtterError::analysis("nope")
                .with_pass("resolve")
                .to_string(),
            "error[resolve]: nope"
        );
    }

    #[test]
    fn conversions_preserve_spans() {
        let src = otter_analysis::AnalysisError::new("rank conflict", Span::new(2, 3, 4, 5));
        let e: OtterError = src.into();
        assert_eq!(e.diagnostic().span.line, 4);
        assert_eq!(e.to_string(), "error[analysis] 4:5: rank conflict");
    }
}
