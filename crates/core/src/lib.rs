//! # otter-core
//!
//! The Otter compiler driver and execution engines — the paper's
//! primary contribution assembled from the substrate crates:
//!
//! ```text
//! MATLAB script ──► otter-frontend (scan/parse)
//!                ──► otter-analysis (resolve, SSA, inference)
//!                ──► otter-codegen (rewrite → IR, peephole, C text)
//!                ──► otter-core::exec (SPMD execution over otter-rt / otter-mpi)
//! ```
//!
//! The driver is an instrumented [`pass::PassManager`] (per-pass wall
//! time, size statistics, artifact dumps, optional-pass toggles), and
//! the paper's three evaluation systems run behind the
//! [`engines::Engine`] trait: [`InterpreterEngine`] (the MathWorks
//! baseline), [`MatcomEngine`] (the commercial sequential compiler
//! baseline), and [`OtterEngine`] (compile + SPMD execution on a
//! modeled machine). Every engine reports through one
//! [`EngineReport`] schema.
//!
//! The compile side and the run side are split: [`compile`] turns a
//! script plus [`EngineOptions`] into a [`CompiledArtifact`] — an
//! immutable, cheaply cloneable snapshot keyed by `(source hash,
//! option fingerprint)` — and [`run`] executes an artifact on a
//! machine described by a [`RunRequest`]. Long-lived services cache
//! artifacts by [`CompiledArtifact::cache_key`] so repeat jobs skip
//! passes 1–6 entirely.
//!
//! ```
//! use otter_core::{compile, run, EngineOptions, RunRequest};
//! use otter_machine::meiko_cs2;
//!
//! let artifact = compile(
//!     "a = [1, 2; 3, 4];\nb = a * a;\ns = sum(b(:, 1));",
//!     &EngineOptions::default(),
//! )
//! .unwrap();
//! assert!(artifact.compiled().c_source.contains("ML_matrix_multiply"));
//! let report = run(&artifact, &RunRequest::on(meiko_cs2(), 4)).unwrap();
//! assert_eq!(report.scalar("s"), Some(22.0));
//! ```

pub mod artifact;
pub mod compile;
pub mod engines;
pub mod error;
pub mod exec;
pub mod pass;
pub mod postmortem;

pub use artifact::{
    compile, compile_managed, run, source_hash, try_run, CompiledArtifact, RunRequest,
};
pub use compile::{compile_program, compile_str, CompileOptions, Compiled};
pub use engines::{
    run_engine, standard_engines, Engine, EngineOptions, EngineReport, InterpreterEngine,
    MatcomEngine, OtterEngine, RankCounters, SpmdJobFailure,
};
pub use error::OtterError;
pub use exec::{ExecError, ExecOptions, Executor, XVal};
/// The static communication-volume oracle (re-exported so drivers can
/// evaluate [`Compiled::analysis`] predictions without a direct
/// `otter-lint` dependency).
pub use otter_lint::oracle as analysis;
pub use otter_lint::{lint_program, LintMode, LintReport};
pub use pass::{
    pass_metrics, CompileReport, DumpRequest, GuardStats, Pass, PassDump, PassManager, PassStats,
    PipelineState,
};
pub use postmortem::{
    build_postmortem, parse_postmortem, write_postmortem, PostmortemSummary, POSTMORTEM_SCHEMA,
};

#[cfg(test)]
mod tests;
