//! A blocking client for the `otter-serve/v1` socket.
//!
//! One [`ServeClient`] is one session: a `UnixStream` carrying
//! newline-delimited request/response pairs. The harness load
//! generator, the CI smoke test, and ad-hoc scripting all go through
//! this; anything it can do, a `printf | nc -U` one-liner can do too.

use crate::proto::{JobOptions, Request};
use otter_metrics::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A connected serve session.
pub struct ServeClient {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

/// One job's client-visible result (a decoded `compile`/`run`
/// response).
#[derive(Debug, Clone)]
pub struct JobReply {
    /// The daemon-minted correlation key: the same id appears in the
    /// `GET /jobs` table, any retained trace, and any postmortem
    /// bundle of this job. Empty only against pre-`job_id` daemons.
    pub job_id: String,
    /// Whether the daemon served the compile from its artifact cache.
    pub cache_hit: bool,
    /// Daemon-side seconds spent in (or skipping) compilation.
    pub compile_seconds: f64,
    /// Daemon-side seconds spent running (0 for `compile` jobs).
    pub run_seconds: f64,
    /// The full response object for op-specific fields.
    pub body: Json,
}

impl ServeClient {
    /// Connect to a daemon's job socket.
    pub fn connect(socket: &Path) -> std::io::Result<ServeClient> {
        let stream = UnixStream::connect(socket)?;
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Connect, retrying until the socket appears (for tests and
    /// scripts racing a daemon they just spawned).
    pub fn connect_with_retry(socket: &Path, timeout: Duration) -> std::io::Result<ServeClient> {
        let deadline = Instant::now() + timeout;
        loop {
            match ServeClient::connect(socket) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Send one request, read one response. Protocol-level failures
    /// (`ok: false`) are returned as `Err` with the daemon's message.
    pub fn request(&mut self, req: &Request) -> Result<Json, String> {
        let json = self.request_raw(req)?;
        match json.get("ok") {
            Some(Json::Bool(true)) => Ok(json),
            _ => Err(json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("server reported failure with no error message")
                .to_string()),
        }
    }

    /// Send one request, read one response, and return the response
    /// object whether or not the daemon reported success — for callers
    /// that need the correlation fields (`job_id`, `postmortem`) an
    /// error response still carries. Only transport-level problems are
    /// `Err`.
    pub fn request_raw(&mut self, req: &Request) -> Result<Json, String> {
        let mut line = req.to_json().to_string();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv failed: {e}"))?;
        if reply.is_empty() {
            return Err("server closed the connection".to_string());
        }
        Json::parse(&reply).map_err(|e| format!("bad response JSON: {e}"))
    }

    /// Round-trip liveness check.
    pub fn ping(&mut self) -> Result<(), String> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Compile (or re-use) `source`; no run.
    pub fn compile(&mut self, source: &str, options: JobOptions) -> Result<JobReply, String> {
        let body = self.request(&Request::Compile {
            source: source.to_string(),
            options,
        })?;
        Ok(decode_job(body))
    }

    /// Compile-and-run `source` on `machine` with `ranks` logical
    /// ranks (and an optional worker override).
    pub fn run(
        &mut self,
        source: &str,
        options: JobOptions,
        machine: &str,
        ranks: usize,
        workers: Option<usize>,
    ) -> Result<JobReply, String> {
        let body = self.request(&Request::Run {
            source: source.to_string(),
            options,
            machine: machine.to_string(),
            ranks,
            workers,
        })?;
        Ok(decode_job(body))
    }

    /// Cache and worker-gate counters.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.request(&Request::Stats)
    }

    /// The Prometheus text exposition, fetched over the job socket.
    pub fn metrics_text(&mut self) -> Result<String, String> {
        let body = self.request(&Request::Metrics)?;
        body.get("text")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "metrics response missing `text`".to_string())
    }

    /// Recent daemon flight-recorder events at or above `level`
    /// (`"error"`/`"warn"`/`"info"`/`"debug"`).
    pub fn logs(&mut self, level: &str) -> Result<Vec<Json>, String> {
        let level = otter_log::LogLevel::parse(level)
            .ok_or_else(|| format!("bad level `{level}` (expected error|warn|info|debug)"))?;
        let body = self.request(&Request::Logs { level })?;
        match body.get("events") {
            Some(Json::Arr(events)) => Ok(events.clone()),
            _ => Err("logs response missing `events`".to_string()),
        }
    }

    /// Ask the daemon to stop accepting and exit.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

fn decode_job(body: Json) -> JobReply {
    let num = |k: &str| body.get(k).and_then(Json::as_num).unwrap_or(0.0);
    JobReply {
        job_id: body
            .get("job_id")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        cache_hit: matches!(body.get("cache_hit"), Some(Json::Bool(true))),
        compile_seconds: num("compile_seconds"),
        run_seconds: num("run_seconds"),
        body,
    }
}
