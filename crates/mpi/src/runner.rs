//! SPMD job launcher: builds the channel mesh and runs one closure per
//! rank on its own OS thread.

use crate::collectives::CollectiveAlgo;
use crate::comm::{Comm, Packet};
use otter_machine::Machine;
use otter_metrics::MetricsSnapshot;
use otter_trace::{NoopSink, TraceSink};
use std::sync::mpsc;
use std::sync::Arc;

/// What one rank produced: its return value, final virtual clock, and
/// communication counters.
#[derive(Debug, Clone)]
pub struct RankResult<R> {
    pub rank: usize,
    pub value: R,
    pub clock: f64,
    pub stats: crate::comm::CommStats,
    /// Frozen per-rank metric registry; `None` unless the job ran with
    /// [`SpmdOptions::metrics`] on.
    pub metrics: Option<MetricsSnapshot>,
}

/// Launch-time configuration for an SPMD job.
#[derive(Clone, Default)]
pub struct SpmdOptions {
    /// Schedule the un-suffixed collective methods use on every rank.
    pub algo: CollectiveAlgo,
    /// Event sink shared by every rank; `None` means tracing is off
    /// (ranks get a no-op sink and skip event construction entirely).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Give every rank its own metric registry, snapshotted into
    /// [`RankResult::metrics`] when the rank finishes. Off by default:
    /// the disabled path never constructs a registry or a key.
    pub metrics: bool,
}

/// Run `body` on `p` ranks over the given machine model with default
/// options (tree collectives, no tracing); results ordered by rank.
///
/// The modeled parallel execution time of the job is the maximum final
/// clock over ranks — loosely synchronous SPMD programs end when their
/// slowest rank does.
///
/// Panics in any rank propagate (the whole job aborts), matching
/// `MPI_Abort` semantics closely enough for test purposes.
pub fn run_spmd<R, F>(machine: &Machine, p: usize, body: F) -> Vec<RankResult<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_spmd_with(machine, p, SpmdOptions::default(), body)
}

/// [`run_spmd`] with explicit [`SpmdOptions`].
pub fn run_spmd_with<R, F>(
    machine: &Machine,
    p: usize,
    opts: SpmdOptions,
    body: F,
) -> Vec<RankResult<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    assert!(p >= 1, "need at least one rank");
    assert!(
        p <= machine.max_cpus,
        "{} has only {} CPUs, requested {p}",
        machine.name,
        machine.max_cpus
    );
    let machine = Arc::new(machine.clone());
    let sink: Arc<dyn TraceSink> = opts.trace.clone().unwrap_or_else(|| Arc::new(NoopSink));

    // Build the p×p channel mesh: edges[s][d] connects rank s to rank d.
    let mut senders: Vec<Vec<Option<mpsc::Sender<Packet>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<mpsc::Receiver<Packet>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for s in 0..p {
        for d in 0..p {
            let (tx, rx) = mpsc::channel();
            senders[s][d] = Some(tx);
            receivers[d][s] = Some(rx);
        }
    }

    // Hand each rank its endpoints.
    let mut comms: Vec<Comm> = Vec::with_capacity(p);
    for (r, (srow, rrow)) in senders.into_iter().zip(receivers).enumerate() {
        let tx: Vec<_> = srow.into_iter().map(Option::unwrap).collect();
        let rx: Vec<_> = rrow.into_iter().map(Option::unwrap).collect();
        comms.push(Comm::new(
            r,
            p,
            Arc::clone(&machine),
            tx,
            rx,
            &opts,
            Arc::clone(&sink),
        ));
    }

    let body = &body;
    let mut out: Vec<Option<RankResult<R>>> = (0..p).map(|_| None).collect();
    if p == 1 {
        // Single rank: run inline, no thread overhead.
        let mut comm = comms.pop().unwrap();
        let value = body(&mut comm);
        out[0] = Some(RankResult {
            rank: 0,
            value,
            clock: comm.clock(),
            stats: comm.stats(),
            metrics: comm.take_metrics().map(|r| r.snapshot()),
        });
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| {
                    scope.spawn(move || {
                        let rank = comm.rank();
                        let value = body(&mut comm);
                        RankResult {
                            rank,
                            value,
                            clock: comm.clock(),
                            stats: comm.stats(),
                            metrics: comm.take_metrics().map(|r| r.snapshot()),
                        }
                    })
                })
                .collect();
            for h in handles {
                let r = h.join().expect("rank panicked");
                let i = r.rank;
                out[i] = Some(r);
            }
        });
    }
    out.into_iter().map(Option::unwrap).collect()
}

/// The modeled parallel runtime of a finished job: max final clock.
pub fn job_time<R>(results: &[RankResult<R>]) -> f64 {
    results.iter().map(|r| r.clock).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_machine::meiko_cs2;
    use otter_trace::{critical_path, timelines, MemorySink};

    #[test]
    fn ranks_are_ordered_and_complete() {
        let res = run_spmd(&meiko_cs2(), 8, |c| c.rank() * 10);
        assert_eq!(res.len(), 8);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(r.rank, i);
            assert_eq!(r.value, i * 10);
        }
    }

    #[test]
    fn single_rank_runs_inline() {
        let res = run_spmd(&meiko_cs2(), 1, |c| {
            assert_eq!(c.size(), 1);
            "done"
        });
        assert_eq!(res[0].value, "done");
    }

    #[test]
    #[should_panic(expected = "has only")]
    fn too_many_ranks_rejected() {
        run_spmd(&meiko_cs2(), 17, |_| ());
    }

    #[test]
    fn job_time_is_max_clock() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            c.compute((c.rank() as f64 + 1.0) * 1e6);
        });
        let t = job_time(&res);
        assert!((t - res[3].clock).abs() < 1e-15);
        assert!(t > res[0].clock);
    }

    #[test]
    fn traced_job_critical_path_matches_job_time() {
        let sink = Arc::new(MemorySink::new());
        let opts = SpmdOptions {
            trace: Some(sink.clone() as Arc<dyn TraceSink>),
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), 4, opts, |c| {
            c.compute((c.rank() as f64 + 1.0) * 1e6);
            c.allreduce_scalar(1.0, crate::ReduceOp::Sum);
        });
        let events = sink.snapshot().unwrap();
        let cp = critical_path(&events);
        let t = job_time(&res);
        assert!((cp.total - t).abs() < 1e-12, "cp={} job={t}", cp.total);
        // The chain decomposes into compute + transfer time exactly.
        assert!((cp.compute + cp.comm - cp.total).abs() < 1e-9);
        // Every rank's timeline tiles its clock.
        for tl in timelines(&events) {
            let r = &res[tl.rank];
            assert!(
                (tl.compute + tl.comm + tl.idle - r.clock).abs() < 1e-9,
                "rank {}",
                tl.rank
            );
        }
    }
}
