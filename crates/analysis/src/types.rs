//! The type/rank/shape lattice of the paper's third pass.
//!
//! "Variables may have one of four types: literal, integer, real, and
//! complex. ... A variable may have either scalar or matrix rank. Each
//! matrix variable has an associated shape, i.e., the number of rows
//! and columns. As much as possible, type and rank information is
//! determined at compile time."
//!
//! Inference additionally tracks *known constant values* of integer
//! scalars, which is how shapes like `zeros(n, n)` become static when
//! `n = 2048` appears earlier in the script — the paper's
//! "static inference mechanism extracts information about variables
//! from ... constants".

use std::fmt;

/// Base (element) type lattice: `Bottom < Integer < Real < Complex`,
/// with `Literal` (strings) incomparable to the numeric chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BaseTy {
    /// No information yet (unreached code).
    Bottom,
    Integer,
    Real,
    /// Supported by the lattice for completeness; no construct in the
    /// accepted subset produces complex values, so inferring it is a
    /// compile error downstream.
    Complex,
    /// Character string.
    Literal,
}

impl BaseTy {
    /// Least upper bound.
    pub fn join(self, other: BaseTy) -> BaseTy {
        use BaseTy::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (Literal, Literal) => Literal,
            (Literal, _) | (_, Literal) => {
                // Mixing strings and numbers: treat as string-ish
                // error-carrier; callers reject it.
                Literal
            }
            (a, b) => a.max(b),
        }
    }

    pub fn is_numeric(self) -> bool {
        matches!(self, BaseTy::Integer | BaseTy::Real | BaseTy::Complex)
    }
}

/// Rank lattice: scalar vs matrix (vectors are matrices with a
/// unit dimension, as in the paper's run-time representation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankTy {
    Bottom,
    Scalar,
    Matrix,
}

impl RankTy {
    /// Least upper bound; `Scalar ⊔ Matrix` is a *conflict* the caller
    /// must handle (the paper handles it via SSA renaming).
    pub fn join(self, other: RankTy) -> Result<RankTy, RankConflict> {
        use RankTy::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => Ok(x),
            (Scalar, Scalar) => Ok(Scalar),
            (Matrix, Matrix) => Ok(Matrix),
            (Scalar, Matrix) | (Matrix, Scalar) => Err(RankConflict),
        }
    }
}

/// Marker for a scalar/matrix merge, resolved by SSA-based renaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankConflict;

/// One dimension of a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    Known(usize),
    Unknown,
}

impl Dim {
    pub fn join(self, other: Dim) -> Dim {
        match (self, other) {
            (Dim::Known(a), Dim::Known(b)) if a == b => Dim::Known(a),
            _ => Dim::Unknown,
        }
    }

    pub fn as_known(self) -> Option<usize> {
        match self {
            Dim::Known(n) => Some(n),
            Dim::Unknown => None,
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Known(n) => write!(f, "{n}"),
            Dim::Unknown => write!(f, "?"),
        }
    }
}

/// Matrix shape (rows × cols); scalars carry `(1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    pub rows: Dim,
    pub cols: Dim,
}

impl Shape {
    pub const SCALAR: Shape = Shape {
        rows: Dim::Known(1),
        cols: Dim::Known(1),
    };
    pub const UNKNOWN: Shape = Shape {
        rows: Dim::Unknown,
        cols: Dim::Unknown,
    };

    pub fn known(rows: usize, cols: usize) -> Shape {
        Shape {
            rows: Dim::Known(rows),
            cols: Dim::Known(cols),
        }
    }

    pub fn join(self, other: Shape) -> Shape {
        Shape {
            rows: self.rows.join(other.rows),
            cols: self.cols.join(other.cols),
        }
    }

    pub fn transposed(self) -> Shape {
        Shape {
            rows: self.cols,
            cols: self.rows,
        }
    }

    /// Definitely a vector (one known-unit dimension)?
    pub fn is_vector(self) -> bool {
        self.rows == Dim::Known(1) || self.cols == Dim::Known(1)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// The full inferred attribute bundle for one variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarTy {
    pub base: BaseTy,
    pub rank: RankTy,
    pub shape: Shape,
    /// Statically known numeric value, when the variable is a
    /// compile-time constant scalar (drives static shapes).
    pub konst: Option<f64>,
}

impl VarTy {
    pub const BOTTOM: VarTy = VarTy {
        base: BaseTy::Bottom,
        rank: RankTy::Bottom,
        shape: Shape::UNKNOWN,
        konst: None,
    };

    /// An integer-valued scalar constant.
    pub fn int_const(v: f64) -> VarTy {
        VarTy {
            base: if v.fract() == 0.0 {
                BaseTy::Integer
            } else {
                BaseTy::Real
            },
            rank: RankTy::Scalar,
            shape: Shape::SCALAR,
            konst: Some(v),
        }
    }

    /// A scalar of the given base type, value unknown.
    pub fn scalar(base: BaseTy) -> VarTy {
        VarTy {
            base,
            rank: RankTy::Scalar,
            shape: Shape::SCALAR,
            konst: None,
        }
    }

    /// A matrix of the given base type and shape.
    pub fn matrix(base: BaseTy, shape: Shape) -> VarTy {
        VarTy {
            base,
            rank: RankTy::Matrix,
            shape,
            konst: None,
        }
    }

    /// A string literal.
    pub fn string() -> VarTy {
        VarTy {
            base: BaseTy::Literal,
            rank: RankTy::Scalar,
            shape: Shape::SCALAR,
            konst: None,
        }
    }

    /// Least upper bound; rank conflicts bubble up.
    pub fn join(self, other: VarTy) -> Result<VarTy, RankConflict> {
        if self == VarTy::BOTTOM {
            return Ok(other);
        }
        if other == VarTy::BOTTOM {
            return Ok(self);
        }
        Ok(VarTy {
            base: self.base.join(other.base),
            rank: self.rank.join(other.rank)?,
            shape: self.shape.join(other.shape),
            konst: match (self.konst, other.konst) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        })
    }

    pub fn is_scalar(&self) -> bool {
        self.rank == RankTy::Scalar
    }

    pub fn is_matrix(&self) -> bool {
        self.rank == RankTy::Matrix
    }
}

impl fmt::Display for VarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match self.base {
            BaseTy::Bottom => "⊥",
            BaseTy::Integer => "integer",
            BaseTy::Real => "real",
            BaseTy::Complex => "complex",
            BaseTy::Literal => "literal",
        };
        match self.rank {
            RankTy::Scalar => write!(f, "{base} scalar"),
            RankTy::Matrix => write!(f, "{base} matrix {}", self.shape),
            RankTy::Bottom => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_lattice_order() {
        assert_eq!(BaseTy::Integer.join(BaseTy::Real), BaseTy::Real);
        assert_eq!(BaseTy::Real.join(BaseTy::Integer), BaseTy::Real);
        assert_eq!(BaseTy::Bottom.join(BaseTy::Integer), BaseTy::Integer);
        assert_eq!(BaseTy::Integer.join(BaseTy::Integer), BaseTy::Integer);
        assert_eq!(BaseTy::Real.join(BaseTy::Complex), BaseTy::Complex);
    }

    #[test]
    fn rank_conflict_detected() {
        assert_eq!(RankTy::Scalar.join(RankTy::Scalar), Ok(RankTy::Scalar));
        assert_eq!(RankTy::Bottom.join(RankTy::Matrix), Ok(RankTy::Matrix));
        assert!(RankTy::Scalar.join(RankTy::Matrix).is_err());
    }

    #[test]
    fn shape_join_degrades_gracefully() {
        let a = Shape::known(3, 4);
        assert_eq!(a.join(a), a);
        let b = Shape::known(3, 5);
        let j = a.join(b);
        assert_eq!(j.rows, Dim::Known(3));
        assert_eq!(j.cols, Dim::Unknown);
    }

    #[test]
    fn transpose_swaps_dims() {
        let s = Shape::known(2, 7).transposed();
        assert_eq!(s, Shape::known(7, 2));
    }

    #[test]
    fn const_tracking_through_join() {
        let a = VarTy::int_const(5.0);
        let same = a.join(a).unwrap();
        assert_eq!(same.konst, Some(5.0));
        let b = VarTy::int_const(6.0);
        let merged = a.join(b).unwrap();
        assert_eq!(merged.konst, None);
        assert_eq!(merged.base, BaseTy::Integer);
    }

    #[test]
    fn int_const_classifies_fraction() {
        assert_eq!(VarTy::int_const(2.0).base, BaseTy::Integer);
        assert_eq!(VarTy::int_const(2.5).base, BaseTy::Real);
    }

    #[test]
    fn bottom_is_identity() {
        let m = VarTy::matrix(BaseTy::Real, Shape::known(2, 2));
        assert_eq!(VarTy::BOTTOM.join(m).unwrap(), m);
        assert_eq!(m.join(VarTy::BOTTOM).unwrap(), m);
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        let v = VarTy::matrix(BaseTy::Real, Shape::known(2048, 1));
        assert_eq!(v.to_string(), "real matrix 2048x1");
        assert_eq!(VarTy::scalar(BaseTy::Integer).to_string(), "integer scalar");
    }
}
