//! Sinks that receive the event stream.

use crate::TraceEvent;
use std::sync::Mutex;

/// Destination for trace events. Shared by every rank thread, so
/// implementations must be `Send + Sync`.
///
/// The no-op-sink guarantee: emitters cache `enabled()` once and skip event
/// construction entirely when it is false, so a disabled sink costs one
/// branch per would-be event and perturbs no modeled numbers.
pub trait TraceSink: Send + Sync {
    /// Whether emitters should bother constructing events.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event. May be called concurrently from rank threads.
    fn record(&self, ev: TraceEvent);

    /// A copy of everything recorded so far, if this sink retains events.
    /// Sinks that stream events elsewhere return `None` (the default).
    fn snapshot(&self) -> Option<Vec<TraceEvent>> {
        None
    }
}

/// The disabled sink: reports `enabled() == false` and drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _ev: TraceEvent) {}
}

/// Retains every event in memory; the sink used by `harness trace`,
/// `otterc --trace` and the test suite.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain and return all recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }
}

impl TraceSink for MemorySink {
    fn record(&self, ev: TraceEvent) {
        self.events.lock().unwrap().push(ev);
    }

    fn snapshot(&self) -> Option<Vec<TraceEvent>> {
        Some(self.events.lock().unwrap().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(rank: usize, a: f64, b: f64) -> TraceEvent {
        TraceEvent {
            rank,
            t_start: a,
            t_end: b,
            kind: EventKind::Compute,
        }
    }

    #[test]
    fn noop_sink_reports_disabled() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.record(ev(0, 0.0, 1.0));
        assert!(s.snapshot().is_none());
    }

    #[test]
    fn memory_sink_retains_in_order() {
        let s = MemorySink::new();
        assert!(s.enabled());
        s.record(ev(0, 0.0, 1.0));
        s.record(ev(1, 0.5, 2.0));
        let evs = s.snapshot().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].rank, 0);
        assert_eq!(evs[1].rank, 1);
        assert_eq!(s.take().len(), 2);
        assert!(s.is_empty());
    }
}
