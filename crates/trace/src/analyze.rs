//! Timeline accounting and critical-path analysis over an event stream.

use crate::{EventKind, TraceEvent};
use std::collections::HashMap;

/// Where one rank's simulated time went.
///
/// The primitives tile the rank's clock, so `compute + comm + idle == clock`
/// (up to floating-point summation order).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankTimeline {
    pub rank: usize,
    /// Seconds spent in local floating-point work.
    pub compute: f64,
    /// Seconds spent launching messages (the sender-side transfer charge).
    pub comm: f64,
    /// Seconds spent blocked in `recv` waiting for a message to arrive.
    pub idle: f64,
    /// The rank's final virtual clock.
    pub clock: f64,
}

/// Per-rank compute/comm/idle totals from the primitive events.
///
/// Ranks are inferred from the events; a rank that emitted nothing still
/// appears (zeroed) if a higher rank did.
pub fn timelines(events: &[TraceEvent]) -> Vec<RankTimeline> {
    let ranks = events.iter().map(|e| e.rank + 1).max().unwrap_or(0);
    let mut out: Vec<RankTimeline> = (0..ranks)
        .map(|rank| RankTimeline {
            rank,
            ..RankTimeline::default()
        })
        .collect();
    for ev in events {
        let t = &mut out[ev.rank];
        match ev.kind {
            EventKind::Compute => t.compute += ev.duration(),
            EventKind::Send { .. } => t.comm += ev.duration(),
            EventKind::Recv { .. } => t.idle += ev.duration(),
            _ => continue,
        }
        t.clock = t.clock.max(ev.t_end);
    }
    out
}

/// The longest dependency chain through the send/recv graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalPath {
    /// End of the chain: the maximum virtual clock over all ranks.
    pub total: f64,
    /// Seconds of local compute on the chain.
    pub compute: f64,
    /// Seconds of message-transfer time on the chain.
    pub comm: f64,
    /// Cross-rank hops: how many times the chain jumps from a waited-on
    /// `recv` back to the matching `send` on another rank.
    pub hops: usize,
    /// Number of primitive events on the chain.
    pub events: usize,
}

impl CriticalPath {
    /// Fraction of the chain spent in communication.
    pub fn comm_share(&self) -> f64 {
        if self.total > 0.0 {
            self.comm / self.total
        } else {
            0.0
        }
    }
}

/// Walk the send/recv dependency graph backwards from the rank that finished
/// last and report the longest dependency chain.
///
/// Within a rank, an event depends on the event before it (program order).
/// A `recv` that actually *waited* (its interval is non-empty) was instead
/// bound by the sender: its end clock was set to the matching send's end
/// clock, so the walk hops to that send — matched by the per-edge FIFO
/// sequence number — and continues on the sender's rank. Because primitives
/// tile each rank's clock and a hop lands on an event ending at the same
/// instant, the chain covers `[0, total]` with compute and transfer time:
/// `compute + comm == total` up to rounding.
pub fn critical_path(events: &[TraceEvent]) -> CriticalPath {
    // Per-rank primitive events, in recorded (chronological) order, as
    // indices into `events`.
    let ranks = events.iter().map(|e| e.rank + 1).max().unwrap_or(0);
    let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); ranks];
    // (from, to, seq) -> (rank position index) of the Send event.
    let mut sends: HashMap<(usize, usize, u64), (usize, usize)> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        if !ev.kind.is_primitive() {
            continue;
        }
        if let EventKind::Send { to, seq, .. } = ev.kind {
            sends.insert((ev.rank, to, seq), (ev.rank, per_rank[ev.rank].len()));
        }
        per_rank[ev.rank].push(i);
    }

    let mut cp = CriticalPath {
        total: 0.0,
        compute: 0.0,
        comm: 0.0,
        hops: 0,
        events: 0,
    };

    // Start from the last event on the rank with the largest final clock.
    let mut cur: Option<(usize, usize)> = None;
    for (rank, idxs) in per_rank.iter().enumerate() {
        if let Some(&last) = idxs.last() {
            let end = events[last].t_end;
            if end > cp.total || cur.is_none() {
                cp.total = cp.total.max(end);
                cur = Some((rank, idxs.len() - 1));
            }
        }
    }

    while let Some((rank, pos)) = cur {
        let ev = &events[per_rank[rank][pos]];
        cp.events += 1;
        match ev.kind {
            EventKind::Compute => {
                cp.compute += ev.duration();
            }
            EventKind::Send { .. } => {
                cp.comm += ev.duration();
            }
            EventKind::Recv { from, seq, .. } => {
                if ev.duration() > 0.0 {
                    // The wait was bound by the sender; hop to the matching
                    // send. Its transfer time (counted when we visit it)
                    // covers this interval — do not also count the wait.
                    if let Some(&(srank, spos)) = sends.get(&(from, ev.rank, seq)) {
                        cp.hops += 1;
                        cur = Some((srank, spos));
                        continue;
                    }
                }
            }
            _ => unreachable!("non-primitive events are filtered out"),
        }
        cur = if pos > 0 { Some((rank, pos - 1)) } else { None };
    }
    cp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(rank: usize, a: f64, b: f64) -> TraceEvent {
        TraceEvent {
            rank,
            t_start: a,
            t_end: b,
            kind: EventKind::Compute,
        }
    }

    fn send(rank: usize, to: usize, a: f64, b: f64, seq: u64) -> TraceEvent {
        TraceEvent {
            rank,
            t_start: a,
            t_end: b,
            kind: EventKind::Send { to, bytes: 8, seq },
        }
    }

    fn recv(rank: usize, from: usize, a: f64, b: f64, seq: u64) -> TraceEvent {
        TraceEvent {
            rank,
            t_start: a,
            t_end: b,
            kind: EventKind::Recv {
                from,
                bytes: 8,
                seq,
            },
        }
    }

    /// Rank 0 computes 3s then sends (1s transfer); rank 1 computes 1s and
    /// waits from t=1 to t=4 for the message, then computes 2s more.
    fn two_rank_stream() -> Vec<TraceEvent> {
        vec![
            compute(0, 0.0, 3.0),
            send(0, 1, 3.0, 4.0, 0),
            compute(1, 0.0, 1.0),
            recv(1, 0, 1.0, 4.0, 0),
            compute(1, 4.0, 6.0),
        ]
    }

    #[test]
    fn timelines_account_every_second() {
        let t = timelines(&two_rank_stream());
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].compute, 3.0);
        assert_eq!(t[0].comm, 1.0);
        assert_eq!(t[0].idle, 0.0);
        assert_eq!(t[0].clock, 4.0);
        assert_eq!(t[1].compute, 3.0);
        assert_eq!(t[1].idle, 3.0);
        assert!((t[1].compute + t[1].comm + t[1].idle - t[1].clock).abs() < 1e-12);
    }

    #[test]
    fn critical_path_hops_through_the_waited_recv() {
        let cp = critical_path(&two_rank_stream());
        assert_eq!(cp.total, 6.0);
        // Chain: rank1 compute [4,6] <- recv (waited) <- hop to rank0 send
        // [3,4] <- rank0 compute [0,3]. Rank 1's early compute is off-path.
        assert_eq!(cp.hops, 1);
        assert_eq!(cp.compute, 5.0);
        assert_eq!(cp.comm, 1.0);
        assert!((cp.compute + cp.comm - cp.total).abs() < 1e-12);
        assert!((cp.comm_share() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn unwaited_recv_stays_on_rank() {
        // Message already there: recv interval is empty, no hop.
        let events = vec![
            send(0, 1, 0.0, 1.0, 0),
            compute(1, 0.0, 5.0),
            recv(1, 0, 5.0, 5.0, 0),
            compute(1, 5.0, 6.0),
        ];
        let cp = critical_path(&events);
        assert_eq!(cp.hops, 0);
        assert_eq!(cp.total, 6.0);
        assert_eq!(cp.compute, 6.0);
        assert_eq!(cp.comm, 0.0);
    }

    #[test]
    fn empty_stream_is_benign() {
        assert!(timelines(&[]).is_empty());
        let cp = critical_path(&[]);
        assert_eq!(cp.total, 0.0);
        assert_eq!(cp.events, 0);
    }

    #[test]
    fn span_events_do_not_affect_accounting() {
        let mut events = two_rank_stream();
        events.push(TraceEvent {
            rank: 0,
            t_start: 0.0,
            t_end: 4.0,
            kind: EventKind::Phase { name: "ML_matmul" },
        });
        let t = timelines(&events);
        assert_eq!(t[0].compute, 3.0);
        let cp = critical_path(&events);
        assert_eq!(cp.total, 6.0);
    }
}
