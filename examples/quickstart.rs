//! Quickstart: compile a MATLAB script with the Otter pipeline, look
//! at the generated SPMD C, and execute it on a modeled 16-CPU Meiko
//! CS-2.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use otter_core::{compile, run, run_engine, EngineOptions, InterpreterEngine, RunRequest};
use otter_machine::{meiko_cs2, workstation};

fn main() {
    // A small MATLAB script: build a system, take a few Jacobi steps.
    let script = "\
n = 64;
A = ones(n, n) / n + n * eye(n);
b = A * ones(n, 1);
x = zeros(n, 1);
for it = 1:20
  r = b - A * x;
  x = x + r / n;
end
resid = norm(b - A * x);
";

    println!("== MATLAB source ==\n{script}");

    // Compile: scan → parse → resolve → SSA → infer → rewrite → peephole → C.
    // The artifact is immutable and cheaply cloneable — compile once,
    // run at any rank count.
    let artifact = compile(script, &EngineOptions::default()).expect("compiles");
    let compiled = artifact.compiled();
    println!("== Compiler statistics ==");
    println!("  IR instructions : {}", compiled.ir.instr_count());
    println!("  peephole        : {:?}", compiled.peephole_stats);
    println!();

    // A taste of the generated SPMD C (the paper's §3 idiom).
    println!("== Generated C (excerpt) ==");
    for line in compiled.c_source.lines().filter(|l| {
        l.contains("ML_matrix_vector_multiply")
            || l.contains("ML_norm2")
            || l.contains("for (ML_tmp")
    }) {
        println!("{line}");
    }
    println!();

    // Run on 1 and 16 CPUs of a modeled Meiko CS-2 — same artifact.
    let machine = meiko_cs2();
    let t1 = run(&artifact, &RunRequest::on(machine.clone(), 1)).expect("p=1 runs");
    let t16 = run(&artifact, &RunRequest::on(machine.clone(), 16)).expect("p=16 runs");
    let interp = run_engine(
        &mut InterpreterEngine::new(EngineOptions::default()),
        script,
        &workstation(),
        1,
    )
    .expect("interp");

    println!("== Results ==");
    println!(
        "  residual (p=16)      : {:.3e}",
        t16.scalar("resid").unwrap()
    );
    println!(
        "  interpreter result    : {:.3e}",
        interp.scalar("resid").unwrap()
    );
    println!();
    println!("== Modeled times on the Meiko CS-2 ==");
    println!("  1 CPU  : {:.4} s", t1.modeled_seconds);
    println!(
        "  16 CPUs: {:.4} s  (speedup {:.1}x)",
        t16.modeled_seconds,
        t1.modeled_seconds / t16.modeled_seconds
    );
    println!("  messages at p=16: {}, bytes: {}", t16.messages, t16.bytes);
}
