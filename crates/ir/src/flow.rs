//! Dataflow facts about IR instructions: what each instruction reads,
//! what it writes, and what communication it performs.
//!
//! These used to live inside the peephole pass; they are shared here
//! because three consumers need identical answers — the peephole
//! rewrites (pass 6), the temporary de-allocation pass, and the lint
//! analyses — and a disagreement between them would be a miscompile
//! or a false diagnostic.

use crate::instr::*;

/// Collect every variable a scalar expression reads, including the
/// matrices whose dimensions it queries via [`SExpr::DimOf`].
pub fn sexpr_reads(e: &SExpr, out: &mut Vec<String>) {
    e.vars(out);
    collect_dimof(e, out);
}

fn collect_dimof(e: &SExpr, out: &mut Vec<String>) {
    match e {
        SExpr::DimOf { var, .. } => out.push(var.clone()),
        SExpr::Neg(x) | SExpr::Not(x) => collect_dimof(x, out),
        SExpr::Bin(_, a, b) => {
            collect_dimof(a, out);
            collect_dimof(b, out);
        }
        SExpr::Call(_, args) => {
            for a in args {
                collect_dimof(a, out);
            }
        }
        SExpr::Const(_) | SExpr::Var(_) | SExpr::OwnElem => {}
    }
}

/// Reads of a fused element-wise epilogue: every matrix operand and
/// scalar input *except* the eliminated temporary `tmp`, which exists
/// only inside the fused instruction and is never a live variable.
fn ew_reads_except(expr: &EwExpr, tmp: &str, out: &mut Vec<String>) {
    let mut mats = Vec::new();
    expr.mat_operands(&mut mats);
    out.extend(mats.into_iter().filter(|m| m != tmp));
    collect_ew_scalars(expr, out);
}

fn collect_ew_scalars(e: &EwExpr, out: &mut Vec<String>) {
    match e {
        EwExpr::Scalar(s) => sexpr_reads(s, out),
        EwExpr::Neg(x) | EwExpr::Not(x) => collect_ew_scalars(x, out),
        EwExpr::Bin(_, a, b) => {
            collect_ew_scalars(a, out);
            collect_ew_scalars(b, out);
        }
        EwExpr::Call(_, args) => {
            for a in args {
                collect_ew_scalars(a, out);
            }
        }
        EwExpr::Mat(_) => {}
    }
}

/// What communication an instruction performs when executed, matching
/// the run-time library's implementation of each `ML_*` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommProfile {
    /// All ranks enter a collective (broadcast, gather, allreduce,
    /// scatter). Every rank must reach the call or the rest hang.
    pub collective: bool,
    /// The op emits matched point-to-point sends/receives between
    /// rank pairs (transpose, circular shift, range redistribution,
    /// the matmul ring).
    pub point_to_point: bool,
}

impl CommProfile {
    pub const LOCAL: CommProfile = CommProfile {
        collective: false,
        point_to_point: false,
    };
    pub const COLLECTIVE: CommProfile = CommProfile {
        collective: true,
        point_to_point: false,
    };
    pub const POINT_TO_POINT: CommProfile = CommProfile {
        collective: false,
        point_to_point: true,
    };

    /// Does the op communicate at all?
    pub fn communicates(&self) -> bool {
        self.collective || self.point_to_point
    }
}

impl Instr {
    /// The variable a simple instruction writes (its sole
    /// destination), if any. In-place mutations (`StoreElem`,
    /// `AssignRow`, fills) are *not* destinations — see
    /// [`Instr::defs`].
    pub fn dst(&self) -> Option<&str> {
        match self {
            Instr::InitMatrix { dst, .. }
            | Instr::CopyMatrix { dst, .. }
            | Instr::LoadFile { dst, .. }
            | Instr::ElemWise { dst, .. }
            | Instr::MatMul { dst, .. }
            | Instr::MatVec { dst, .. }
            | Instr::Outer { dst, .. }
            | Instr::Transpose { dst, .. }
            | Instr::BroadcastElem { dst, .. }
            | Instr::Reduce { dst, .. }
            | Instr::Dot { dst, .. }
            | Instr::TrapzXY { dst, .. }
            | Instr::ColReduce { dst, .. }
            | Instr::Shift { dst, .. }
            | Instr::ExtractRow { dst, .. }
            | Instr::ExtractCol { dst, .. }
            | Instr::ExtractRange { dst, .. }
            | Instr::ExtractStrided { dst, .. }
            | Instr::AssignScalar { dst, .. }
            | Instr::MatMulEw { dst, .. }
            | Instr::MatVecEw { dst, .. }
            | Instr::ReduceEw { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Mutable access to the destination, for retargeting rewrites.
    pub fn dst_mut(&mut self) -> Option<&mut String> {
        match self {
            Instr::InitMatrix { dst, .. }
            | Instr::CopyMatrix { dst, .. }
            | Instr::LoadFile { dst, .. }
            | Instr::ElemWise { dst, .. }
            | Instr::MatMul { dst, .. }
            | Instr::MatVec { dst, .. }
            | Instr::Outer { dst, .. }
            | Instr::Transpose { dst, .. }
            | Instr::BroadcastElem { dst, .. }
            | Instr::Reduce { dst, .. }
            | Instr::Dot { dst, .. }
            | Instr::TrapzXY { dst, .. }
            | Instr::ColReduce { dst, .. }
            | Instr::Shift { dst, .. }
            | Instr::ExtractRow { dst, .. }
            | Instr::ExtractCol { dst, .. }
            | Instr::ExtractRange { dst, .. }
            | Instr::ExtractStrided { dst, .. }
            | Instr::AssignScalar { dst, .. }
            | Instr::MatMulEw { dst, .. }
            | Instr::MatVecEw { dst, .. }
            | Instr::ReduceEw { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Every variable this instruction (re)defines or mutates at this
    /// level: the plain destination, in-place targets (`m(i,j) = v`
    /// writes into `m`), loop induction variables, and call outputs.
    /// Does *not* recurse into nested bodies.
    pub fn defs(&self, out: &mut Vec<String>) {
        if let Some(d) = self.dst() {
            out.push(d.to_string());
        }
        match self {
            Instr::StoreElem { m, .. }
            | Instr::AssignRow { m, .. }
            | Instr::AssignCol { m, .. }
            | Instr::FillRow { m, .. }
            | Instr::FillCol { m, .. }
            | Instr::FillRange { m, .. }
            | Instr::AssignRange { m, .. } => out.push(m.clone()),
            Instr::For { var, .. } => out.push(var.clone()),
            Instr::Call { outs, .. } => out.extend(outs.iter().cloned()),
            _ => {}
        }
    }

    /// All variable names this instruction *reads* (conservatively
    /// includes nested blocks).
    pub fn reads(&self, out: &mut Vec<String>) {
        let sexpr = sexpr_reads;
        match self {
            Instr::AssignScalar { src, .. } => sexpr(src, out),
            Instr::InitMatrix { init, .. } => match init {
                MatInit::Zeros { rows, cols }
                | MatInit::Ones { rows, cols }
                | MatInit::Rand { rows, cols } => {
                    sexpr(rows, out);
                    sexpr(cols, out);
                }
                MatInit::Eye { n } => sexpr(n, out),
                MatInit::Range { start, step, stop } => {
                    sexpr(start, out);
                    sexpr(step, out);
                    sexpr(stop, out);
                }
                MatInit::Literal { rows } => {
                    for r in rows {
                        for c in r {
                            sexpr(c, out);
                        }
                    }
                }
                MatInit::Linspace { a, b, n } => {
                    sexpr(a, out);
                    sexpr(b, out);
                    sexpr(n, out);
                }
            },
            Instr::CopyMatrix { src, .. } => out.push(src.clone()),
            Instr::LoadFile { .. } => {}
            Instr::ElemWise { expr, .. } => {
                expr.mat_operands(out);
                collect_ew_scalars(expr, out);
            }
            Instr::MatMul { a, b, .. } | Instr::Dot { a, b, .. } => {
                out.push(a.clone());
                out.push(b.clone());
            }
            Instr::MatVec { a, x, .. } => {
                out.push(a.clone());
                out.push(x.clone());
            }
            Instr::MatMulEw {
                a, b, tmp, expr, ..
            } => {
                out.push(a.clone());
                out.push(b.clone());
                ew_reads_except(expr, tmp, out);
            }
            Instr::MatVecEw {
                a, x, tmp, expr, ..
            } => {
                out.push(a.clone());
                out.push(x.clone());
                ew_reads_except(expr, tmp, out);
            }
            Instr::ReduceEw { tmp, expr, .. } => {
                ew_reads_except(expr, tmp, out);
            }
            Instr::Outer { u, v, .. } => {
                out.push(u.clone());
                out.push(v.clone());
            }
            Instr::Transpose { a, .. } => out.push(a.clone()),
            Instr::BroadcastElem { m, i, j, .. } => {
                out.push(m.clone());
                sexpr(i, out);
                if let Some(j) = j {
                    sexpr(j, out);
                }
            }
            Instr::StoreElem { m, i, j, val } => {
                out.push(m.clone());
                sexpr(i, out);
                if let Some(j) = j {
                    sexpr(j, out);
                }
                sexpr(val, out);
            }
            Instr::Reduce { m, .. } | Instr::ColReduce { m, .. } => out.push(m.clone()),
            Instr::TrapzXY { x, y, .. } => {
                out.push(x.clone());
                out.push(y.clone());
            }
            Instr::Shift { v, k, .. } => {
                out.push(v.clone());
                sexpr(k, out);
            }
            Instr::ExtractRow { m, i, .. } => {
                out.push(m.clone());
                sexpr(i, out);
            }
            Instr::ExtractCol { m, j, .. } => {
                out.push(m.clone());
                sexpr(j, out);
            }
            Instr::AssignRow { m, i, v } => {
                out.push(m.clone());
                sexpr(i, out);
                out.push(v.clone());
            }
            Instr::AssignCol { m, j, v } => {
                out.push(m.clone());
                sexpr(j, out);
                out.push(v.clone());
            }
            Instr::ExtractRange { v, lo, hi, .. } => {
                out.push(v.clone());
                sexpr(lo, out);
                sexpr(hi, out);
            }
            Instr::ExtractStrided {
                v, lo, step, hi, ..
            } => {
                out.push(v.clone());
                sexpr(lo, out);
                sexpr(step, out);
                sexpr(hi, out);
            }
            Instr::FillRow { m, i, val } => {
                out.push(m.clone());
                sexpr(i, out);
                sexpr(val, out);
            }
            Instr::FillCol { m, j, val } => {
                out.push(m.clone());
                sexpr(j, out);
                sexpr(val, out);
            }
            Instr::FillRange { m, lo, hi, val } => {
                out.push(m.clone());
                sexpr(lo, out);
                sexpr(hi, out);
                sexpr(val, out);
            }
            Instr::AssignRange { m, lo, hi, v } => {
                out.push(m.clone());
                sexpr(lo, out);
                sexpr(hi, out);
                out.push(v.clone());
            }
            Instr::If {
                cond,
                then_body,
                else_body,
            } => {
                sexpr(cond, out);
                for i in then_body.iter().chain(else_body) {
                    i.reads(out);
                }
            }
            Instr::While { pre, cond, body } => {
                sexpr(cond, out);
                for i in pre.iter().chain(body) {
                    i.reads(out);
                }
            }
            Instr::For {
                start,
                step,
                stop,
                body,
                ..
            } => {
                sexpr(start, out);
                sexpr(step, out);
                sexpr(stop, out);
                for i in body {
                    i.reads(out);
                }
            }
            Instr::Free { .. } | Instr::Break | Instr::Continue => {}
            Instr::Call { args, .. } => {
                for a in args {
                    match a {
                        Arg::Scalar(s) => sexpr(s, out),
                        Arg::Matrix(m) => out.push(m.clone()),
                    }
                }
            }
            Instr::Print { target, .. } => match target {
                PrintTarget::Scalar(s) => sexpr(s, out),
                PrintTarget::Matrix(m) => out.push(m.clone()),
            },
        }
    }

    /// Communication class of this single instruction (ignores nested
    /// bodies — control flow itself is replicated and communication
    /// free). The table mirrors `otter-rt`: which `ML_*` entry points
    /// call `broadcast`/`gather`/`allreduce`/`scatter` (collective)
    /// versus raw rank-pair `send`/`recv` (point-to-point).
    pub fn comm_profile(&self) -> CommProfile {
        match self {
            // Collectives: owner broadcast of an element or row,
            // allreduce-backed reductions, gather-backed vector ops,
            // scatter-backed file loads, gather-to-rank-0 printing.
            Instr::BroadcastElem { .. }
            | Instr::Reduce { .. }
            | Instr::Dot { .. }
            | Instr::TrapzXY { .. }
            | Instr::ColReduce { .. }
            | Instr::MatVec { .. }
            | Instr::MatVecEw { .. }
            | Instr::ReduceEw { .. }
            | Instr::Outer { .. }
            | Instr::ExtractRow { .. }
            | Instr::ExtractStrided { .. }
            | Instr::AssignRow { .. }
            | Instr::LoadFile { .. } => CommProfile::COLLECTIVE,
            Instr::Print {
                target: PrintTarget::Matrix(_),
                ..
            } => CommProfile::COLLECTIVE,
            // Point-to-point redistribution between rank pairs.
            Instr::Transpose { .. } | Instr::Shift { .. } | Instr::ExtractRange { .. } => {
                CommProfile::POINT_TO_POINT
            }
            // Matmul allreduces partial tiles on one path and runs a
            // send/recv ring on the other; the fused epilogue adds
            // only local element-wise work on top.
            Instr::MatMul { .. } | Instr::MatMulEw { .. } => CommProfile {
                collective: true,
                point_to_point: true,
            },
            _ => CommProfile::LOCAL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_and_defs_cover_inplace_targets() {
        let store = Instr::StoreElem {
            m: "a".into(),
            i: SExpr::c(1.0),
            j: Some(SExpr::c(2.0)),
            val: SExpr::c(7.0),
        };
        assert_eq!(store.dst(), None);
        let mut defs = Vec::new();
        store.defs(&mut defs);
        assert_eq!(defs, vec!["a"]);

        let mm = Instr::MatMul {
            dst: "c".into(),
            a: "a".into(),
            b: "b".into(),
        };
        assert_eq!(mm.dst(), Some("c"));
    }

    #[test]
    fn reads_include_dimof_and_ew_scalars() {
        let i = Instr::ElemWise {
            dst: "d".into(),
            expr: EwExpr::bin(
                EwOp::Mul,
                EwExpr::mat("x"),
                EwExpr::Scalar(SExpr::bin(
                    SBinOp::Add,
                    SExpr::var("s"),
                    SExpr::DimOf {
                        var: "m".into(),
                        sel: DimSel::Rows,
                    },
                )),
            ),
        };
        let mut reads = Vec::new();
        i.reads(&mut reads);
        assert_eq!(reads, vec!["x", "s", "m"]);
    }

    #[test]
    fn comm_profile_classification() {
        let reduce = Instr::Reduce {
            dst: "s".into(),
            op: RedOp::SumAll,
            m: "a".into(),
        };
        assert!(reduce.comm_profile().collective);
        let shift = Instr::Shift {
            dst: "d".into(),
            v: "v".into(),
            k: SExpr::c(1.0),
        };
        assert!(shift.comm_profile().point_to_point);
        assert!(!shift.comm_profile().collective);
        let ew = Instr::ElemWise {
            dst: "d".into(),
            expr: EwExpr::mat("a"),
        };
        assert!(!ew.comm_profile().communicates());
        let mm = Instr::MatMul {
            dst: "c".into(),
            a: "a".into(),
            b: "b".into(),
        };
        assert!(mm.comm_profile().collective && mm.comm_profile().point_to_point);
    }
}
