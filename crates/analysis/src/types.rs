//! The type/rank/shape lattice of the paper's third pass.
//!
//! "Variables may have one of four types: literal, integer, real, and
//! complex. ... A variable may have either scalar or matrix rank. Each
//! matrix variable has an associated shape, i.e., the number of rows
//! and columns. As much as possible, type and rank information is
//! determined at compile time."
//!
//! Inference additionally tracks *known constant values* of integer
//! scalars, which is how shapes like `zeros(n, n)` become static when
//! `n = 2048` appears earlier in the script — the paper's
//! "static inference mechanism extracts information about variables
//! from ... constants".

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Base (element) type lattice: `Bottom < Integer < Real < Complex`,
/// with `Literal` (strings) incomparable to the numeric chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BaseTy {
    /// No information yet (unreached code).
    Bottom,
    Integer,
    Real,
    /// Supported by the lattice for completeness; no construct in the
    /// accepted subset produces complex values, so inferring it is a
    /// compile error downstream.
    Complex,
    /// Character string.
    Literal,
}

impl BaseTy {
    /// Least upper bound.
    pub fn join(self, other: BaseTy) -> BaseTy {
        use BaseTy::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (Literal, Literal) => Literal,
            (Literal, _) | (_, Literal) => {
                // Mixing strings and numbers: treat as string-ish
                // error-carrier; callers reject it.
                Literal
            }
            (a, b) => a.max(b),
        }
    }

    pub fn is_numeric(self) -> bool {
        matches!(self, BaseTy::Integer | BaseTy::Real | BaseTy::Complex)
    }
}

/// Rank lattice: scalar vs matrix (vectors are matrices with a
/// unit dimension, as in the paper's run-time representation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankTy {
    Bottom,
    Scalar,
    Matrix,
}

impl RankTy {
    /// Least upper bound; `Scalar ⊔ Matrix` is a *conflict* the caller
    /// must handle (the paper handles it via SSA renaming).
    pub fn join(self, other: RankTy) -> Result<RankTy, RankConflict> {
        use RankTy::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => Ok(x),
            (Scalar, Scalar) => Ok(Scalar),
            (Matrix, Matrix) => Ok(Matrix),
            (Scalar, Matrix) | (Matrix, Scalar) => Err(RankConflict),
        }
    }
}

/// Marker for a scalar/matrix merge, resolved by SSA-based renaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankConflict;

/// A symbolic dimension expression: the affine vocabulary the paper's
/// sample-file mechanism needs. Symbols are minted from sample-file
/// dimensions (`"cg.dat:rows"`) and M-file parameters; sums, products
/// and ceil-divisions arise from concatenation, flattening (`v(:)`),
/// and block distribution (`⌈n/p⌉`).
///
/// Expressions are hash-consed into a process-global interner, so a
/// [`Dim`] stays `Copy`/`Eq`/`Hash` and id-equality *is* structural
/// equality — the inference fixpoint loops compare whole environments
/// by `==` and must stay cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DimExpr {
    /// A named symbol, with the concrete value observed in the sample
    /// environment (`None` for parameters with no sample binding).
    Sym { name: String, sample: Option<usize> },
    /// `a + b`, operands canonically ordered.
    Add(Dim, Dim),
    /// `a * b`, operands canonically ordered.
    Mul(Dim, Dim),
    /// `ceil(a / k)` — block-distribution arithmetic.
    CeilDiv(Dim, usize),
}

/// Handle of an interned [`DimExpr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimExprId(u32);

#[derive(Default)]
struct DimInterner {
    exprs: Vec<DimExpr>,
    ids: HashMap<DimExpr, u32>,
}

fn interner() -> &'static Mutex<DimInterner> {
    static INTERNER: OnceLock<Mutex<DimInterner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(DimInterner::default()))
}

fn intern(e: DimExpr) -> DimExprId {
    let mut t = interner().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&id) = t.ids.get(&e) {
        return DimExprId(id);
    }
    let id = t.exprs.len() as u32;
    t.exprs.push(e.clone());
    t.ids.insert(e, id);
    DimExprId(id)
}

/// One dimension of a shape: a known constant, a symbolic expression
/// over minted dimension symbols, or nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    Known(usize),
    Sym(DimExprId),
    Unknown,
}

impl Dim {
    /// Mint (or re-intern) a named dimension symbol.
    pub fn sym(name: &str, sample: Option<usize>) -> Dim {
        Dim::Sym(intern(DimExpr::Sym {
            name: name.to_string(),
            sample,
        }))
    }

    /// Symbolic sum, constant-folded. `Unknown` absorbs.
    #[allow(clippy::should_implement_trait)] // associated fn over the lattice, not `self + rhs`
    pub fn add(a: Dim, b: Dim) -> Dim {
        match (a, b) {
            (Dim::Unknown, _) | (_, Dim::Unknown) => Dim::Unknown,
            (Dim::Known(x), Dim::Known(y)) => Dim::Known(x + y),
            (Dim::Known(0), d) | (d, Dim::Known(0)) => d,
            (a, b) => {
                let (a, b) = canonical_pair(a, b);
                Dim::Sym(intern(DimExpr::Add(a, b)))
            }
        }
    }

    /// Symbolic product, constant-folded. Zero annihilates even
    /// `Unknown`; one is the identity.
    #[allow(clippy::should_implement_trait)] // associated fn over the lattice, not `self * rhs`
    pub fn mul(a: Dim, b: Dim) -> Dim {
        match (a, b) {
            (Dim::Known(0), _) | (_, Dim::Known(0)) => Dim::Known(0),
            (Dim::Unknown, _) | (_, Dim::Unknown) => Dim::Unknown,
            (Dim::Known(x), Dim::Known(y)) => Dim::Known(x * y),
            (Dim::Known(1), d) | (d, Dim::Known(1)) => d,
            (a, b) => {
                let (a, b) = canonical_pair(a, b);
                Dim::Sym(intern(DimExpr::Mul(a, b)))
            }
        }
    }

    /// `ceil(a / k)`, constant-folded; `k` must be positive.
    pub fn ceil_div(a: Dim, k: usize) -> Dim {
        match (a, k) {
            (_, 0) => Dim::Unknown,
            (d, 1) => d,
            (Dim::Known(n), k) => Dim::Known(n.div_ceil(k)),
            (Dim::Unknown, _) => Dim::Unknown,
            (d, k) => Dim::Sym(intern(DimExpr::CeilDiv(d, k))),
        }
    }

    pub fn join(self, other: Dim) -> Dim {
        if self == other {
            self
        } else {
            Dim::Unknown
        }
    }

    /// Statically known constant value (symbolic dims return `None`;
    /// see [`Dim::concrete`] for the sample-evaluated variant).
    pub fn as_known(self) -> Option<usize> {
        match self {
            Dim::Known(n) => Some(n),
            _ => None,
        }
    }

    /// Is this dimension a symbolic expression?
    pub fn is_symbolic(self) -> bool {
        matches!(self, Dim::Sym(_))
    }

    /// The interned expression behind a symbolic dim.
    pub fn expr(self) -> Option<DimExpr> {
        match self {
            Dim::Sym(id) => {
                let t = interner().lock().unwrap_or_else(|p| p.into_inner());
                Some(t.exprs[id.0 as usize].clone())
            }
            _ => None,
        }
    }

    /// Evaluate the dimension against the sample environment every
    /// symbol was minted with: the value the compile actually saw.
    pub fn eval_sample(self) -> Option<usize> {
        match self {
            Dim::Known(n) => Some(n),
            Dim::Unknown => None,
            Dim::Sym(_) => match self.expr()? {
                DimExpr::Sym { sample, .. } => sample,
                DimExpr::Add(a, b) => Some(a.eval_sample()? + b.eval_sample()?),
                DimExpr::Mul(a, b) => Some(a.eval_sample()? * b.eval_sample()?),
                DimExpr::CeilDiv(a, k) => Some(a.eval_sample()?.div_ceil(k)),
            },
        }
    }

    /// Known constant or sample-evaluated symbolic value. Within one
    /// compile this is exact: symbols were minted from the same files
    /// the run will load.
    pub fn concrete(self) -> Option<usize> {
        self.as_known().or_else(|| self.eval_sample())
    }
}

/// Canonical operand order for commutative nodes so `a+b` and `b+a`
/// intern to the same expression. The order compares the rendered
/// text — deterministic across runs, unlike interner ids.
fn canonical_pair(a: Dim, b: Dim) -> (Dim, Dim) {
    if b.to_string() < a.to_string() {
        (b, a)
    } else {
        (a, b)
    }
}

/// Whether a dim renders as a sum (needs parens inside a product).
fn is_sum(d: Dim) -> bool {
    matches!(d.expr(), Some(DimExpr::Add(..)))
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Known(n) => write!(f, "{n}"),
            Dim::Unknown => write!(f, "?"),
            Dim::Sym(_) => match self.expr().expect("interned") {
                DimExpr::Sym { name, .. } => write!(f, "{name}"),
                DimExpr::Add(a, b) => write!(f, "{a}+{b}"),
                DimExpr::Mul(a, b) => {
                    if is_sum(a) {
                        write!(f, "({a})")?;
                    } else {
                        write!(f, "{a}")?;
                    }
                    write!(f, "*")?;
                    if is_sum(b) {
                        write!(f, "({b})")
                    } else {
                        write!(f, "{b}")
                    }
                }
                DimExpr::CeilDiv(a, k) => write!(f, "ceil({a}/{k})"),
            },
        }
    }
}

/// Matrix shape (rows × cols); scalars carry `(1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    pub rows: Dim,
    pub cols: Dim,
}

impl Shape {
    pub const SCALAR: Shape = Shape {
        rows: Dim::Known(1),
        cols: Dim::Known(1),
    };
    pub const UNKNOWN: Shape = Shape {
        rows: Dim::Unknown,
        cols: Dim::Unknown,
    };

    pub fn known(rows: usize, cols: usize) -> Shape {
        Shape {
            rows: Dim::Known(rows),
            cols: Dim::Known(cols),
        }
    }

    pub fn join(self, other: Shape) -> Shape {
        Shape {
            rows: self.rows.join(other.rows),
            cols: self.cols.join(other.cols),
        }
    }

    pub fn transposed(self) -> Shape {
        Shape {
            rows: self.cols,
            cols: self.rows,
        }
    }

    /// Definitely a vector (one known-unit dimension)?
    pub fn is_vector(self) -> bool {
        self.rows == Dim::Known(1) || self.cols == Dim::Known(1)
    }

    /// Both dimensions resolved to concrete values (constants or
    /// sample-evaluated symbols).
    pub fn concrete(self) -> Option<(usize, usize)> {
        Some((self.rows.concrete()?, self.cols.concrete()?))
    }

    /// Total element count, symbolically.
    pub fn numel(self) -> Dim {
        Dim::mul(self.rows, self.cols)
    }

    /// Does either dimension carry a symbolic expression?
    pub fn is_symbolic(self) -> bool {
        self.rows.is_symbolic() || self.cols.is_symbolic()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// The full inferred attribute bundle for one variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarTy {
    pub base: BaseTy,
    pub rank: RankTy,
    pub shape: Shape,
    /// Statically known numeric value, when the variable is a
    /// compile-time constant scalar (drives static shapes).
    pub konst: Option<f64>,
    /// When this scalar provably equals a (possibly symbolic)
    /// dimension — `n = size(a, 1)` — the expression it equals, so
    /// shapes like `zeros(n, 1)` stay symbolic instead of collapsing
    /// to `Unknown`.
    pub dim_of: Option<Dim>,
}

impl VarTy {
    pub const BOTTOM: VarTy = VarTy {
        base: BaseTy::Bottom,
        rank: RankTy::Bottom,
        shape: Shape::UNKNOWN,
        konst: None,
        dim_of: None,
    };

    /// An integer-valued scalar constant.
    pub fn int_const(v: f64) -> VarTy {
        VarTy {
            base: if v.fract() == 0.0 {
                BaseTy::Integer
            } else {
                BaseTy::Real
            },
            rank: RankTy::Scalar,
            shape: Shape::SCALAR,
            konst: Some(v),
            dim_of: None,
        }
    }

    /// A scalar of the given base type, value unknown.
    pub fn scalar(base: BaseTy) -> VarTy {
        VarTy {
            base,
            rank: RankTy::Scalar,
            shape: Shape::SCALAR,
            konst: None,
            dim_of: None,
        }
    }

    /// An integer scalar known to equal a dimension expression.
    /// `Dim::Unknown` normalizes to no fact at all, so fixpoint
    /// comparisons never distinguish "unknown dim" from "no dim".
    pub fn dim_scalar(dim: Dim) -> VarTy {
        VarTy {
            base: BaseTy::Integer,
            rank: RankTy::Scalar,
            shape: Shape::SCALAR,
            konst: dim.as_known().map(|n| n as f64),
            dim_of: if dim == Dim::Unknown { None } else { Some(dim) },
        }
    }

    /// A matrix of the given base type and shape.
    pub fn matrix(base: BaseTy, shape: Shape) -> VarTy {
        VarTy {
            base,
            rank: RankTy::Matrix,
            shape,
            konst: None,
            dim_of: None,
        }
    }

    /// A string literal.
    pub fn string() -> VarTy {
        VarTy {
            base: BaseTy::Literal,
            rank: RankTy::Scalar,
            shape: Shape::SCALAR,
            konst: None,
            dim_of: None,
        }
    }

    /// The dimension expression this scalar denotes, when known: an
    /// explicit `dim_of` fact, or a non-negative integral constant.
    pub fn as_dim(&self) -> Option<Dim> {
        if let Some(d) = self.dim_of {
            return Some(d);
        }
        match self.konst {
            Some(v) if v >= 0.0 && v.fract() == 0.0 => Some(Dim::Known(v as usize)),
            _ => None,
        }
    }

    /// Least upper bound; rank conflicts bubble up.
    pub fn join(self, other: VarTy) -> Result<VarTy, RankConflict> {
        if self == VarTy::BOTTOM {
            return Ok(other);
        }
        if other == VarTy::BOTTOM {
            return Ok(self);
        }
        Ok(VarTy {
            base: self.base.join(other.base),
            rank: self.rank.join(other.rank)?,
            shape: self.shape.join(other.shape),
            konst: match (self.konst, other.konst) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            dim_of: match (self.dim_of, other.dim_of) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        })
    }

    pub fn is_scalar(&self) -> bool {
        self.rank == RankTy::Scalar
    }

    pub fn is_matrix(&self) -> bool {
        self.rank == RankTy::Matrix
    }
}

impl fmt::Display for VarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match self.base {
            BaseTy::Bottom => "⊥",
            BaseTy::Integer => "integer",
            BaseTy::Real => "real",
            BaseTy::Complex => "complex",
            BaseTy::Literal => "literal",
        };
        match self.rank {
            RankTy::Scalar => write!(f, "{base} scalar"),
            RankTy::Matrix => write!(f, "{base} matrix {}", self.shape),
            RankTy::Bottom => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_lattice_order() {
        assert_eq!(BaseTy::Integer.join(BaseTy::Real), BaseTy::Real);
        assert_eq!(BaseTy::Real.join(BaseTy::Integer), BaseTy::Real);
        assert_eq!(BaseTy::Bottom.join(BaseTy::Integer), BaseTy::Integer);
        assert_eq!(BaseTy::Integer.join(BaseTy::Integer), BaseTy::Integer);
        assert_eq!(BaseTy::Real.join(BaseTy::Complex), BaseTy::Complex);
    }

    #[test]
    fn rank_conflict_detected() {
        assert_eq!(RankTy::Scalar.join(RankTy::Scalar), Ok(RankTy::Scalar));
        assert_eq!(RankTy::Bottom.join(RankTy::Matrix), Ok(RankTy::Matrix));
        assert!(RankTy::Scalar.join(RankTy::Matrix).is_err());
    }

    #[test]
    fn shape_join_degrades_gracefully() {
        let a = Shape::known(3, 4);
        assert_eq!(a.join(a), a);
        let b = Shape::known(3, 5);
        let j = a.join(b);
        assert_eq!(j.rows, Dim::Known(3));
        assert_eq!(j.cols, Dim::Unknown);
    }

    #[test]
    fn transpose_swaps_dims() {
        let s = Shape::known(2, 7).transposed();
        assert_eq!(s, Shape::known(7, 2));
    }

    #[test]
    fn const_tracking_through_join() {
        let a = VarTy::int_const(5.0);
        let same = a.join(a).unwrap();
        assert_eq!(same.konst, Some(5.0));
        let b = VarTy::int_const(6.0);
        let merged = a.join(b).unwrap();
        assert_eq!(merged.konst, None);
        assert_eq!(merged.base, BaseTy::Integer);
    }

    #[test]
    fn int_const_classifies_fraction() {
        assert_eq!(VarTy::int_const(2.0).base, BaseTy::Integer);
        assert_eq!(VarTy::int_const(2.5).base, BaseTy::Real);
    }

    #[test]
    fn bottom_is_identity() {
        let m = VarTy::matrix(BaseTy::Real, Shape::known(2, 2));
        assert_eq!(VarTy::BOTTOM.join(m).unwrap(), m);
        assert_eq!(m.join(VarTy::BOTTOM).unwrap(), m);
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        let v = VarTy::matrix(BaseTy::Real, Shape::known(2048, 1));
        assert_eq!(v.to_string(), "real matrix 2048x1");
        assert_eq!(VarTy::scalar(BaseTy::Integer).to_string(), "integer scalar");
    }

    #[test]
    fn symbolic_dims_hash_cons_to_structural_equality() {
        let n = Dim::sym("cg.dat:rows", Some(96));
        let n2 = Dim::sym("cg.dat:rows", Some(96));
        assert_eq!(n, n2);
        // Different sample value ⇒ a different symbol.
        assert_ne!(n, Dim::sym("cg.dat:rows", Some(48)));
        // Commutative nodes canonicalize: a+b == b+a, a*b == b*a.
        let m = Dim::sym("cg.dat:cols", Some(96));
        assert_eq!(Dim::add(n, m), Dim::add(m, n));
        assert_eq!(Dim::mul(n, m), Dim::mul(m, n));
        assert_ne!(Dim::add(n, m), Dim::mul(n, m));
    }

    #[test]
    fn symbolic_constructors_fold_constants() {
        let n = Dim::sym("n", Some(10));
        assert_eq!(Dim::add(Dim::Known(2), Dim::Known(3)), Dim::Known(5));
        assert_eq!(Dim::add(n, Dim::Known(0)), n);
        assert_eq!(Dim::mul(n, Dim::Known(1)), n);
        assert_eq!(Dim::mul(n, Dim::Known(0)), Dim::Known(0));
        assert_eq!(Dim::mul(Dim::Unknown, Dim::Known(0)), Dim::Known(0));
        assert_eq!(Dim::add(n, Dim::Unknown), Dim::Unknown);
        assert_eq!(Dim::ceil_div(Dim::Known(10), 4), Dim::Known(3));
        assert_eq!(Dim::ceil_div(n, 1), n);
    }

    #[test]
    fn symbolic_eval_against_sample() {
        let r = Dim::sym("f.dat:rows", Some(12));
        let c = Dim::sym("f.dat:cols", Some(5));
        assert_eq!(r.eval_sample(), Some(12));
        assert_eq!(Dim::mul(r, c).eval_sample(), Some(60));
        assert_eq!(Dim::add(r, Dim::Known(1)).eval_sample(), Some(13));
        assert_eq!(Dim::ceil_div(r, 8).eval_sample(), Some(2));
        // A parameter symbol with no sample cannot evaluate.
        let p = Dim::sym("f.param:x", None);
        assert_eq!(p.eval_sample(), None);
        assert_eq!(Dim::add(r, p).eval_sample(), None);
        // `concrete` unifies the two paths.
        assert_eq!(Dim::Known(7).concrete(), Some(7));
        assert_eq!(r.concrete(), Some(12));
    }

    #[test]
    fn symbolic_display_renders_expressions() {
        let r = Dim::sym("a:rows", Some(4));
        let c = Dim::sym("a:cols", Some(2));
        assert_eq!(r.to_string(), "a:rows");
        assert_eq!(Dim::mul(r, c).to_string(), "a:cols*a:rows");
        assert_eq!(Dim::add(r, Dim::Known(3)).to_string(), "3+a:rows");
        assert_eq!(
            Dim::mul(Dim::add(r, Dim::Known(1)), c).to_string(),
            "(1+a:rows)*a:cols"
        );
        assert_eq!(Dim::ceil_div(r, 8).to_string(), "ceil(a:rows/8)");
    }

    #[test]
    fn symbolic_join_keeps_equal_dims() {
        let n = Dim::sym("n", Some(8));
        assert_eq!(n.join(n), n);
        assert_eq!(n.join(Dim::Known(8)), Dim::Unknown);
        assert_eq!(n.join(Dim::sym("m", Some(8))), Dim::Unknown);
        assert!(n.as_known().is_none());
        assert!(n.is_symbolic());
    }

    #[test]
    fn dim_scalar_carries_the_fact_through_join() {
        let n = Dim::sym("n", Some(8));
        let a = VarTy::dim_scalar(n);
        assert_eq!(a.as_dim(), Some(n));
        assert_eq!(a.konst, None);
        let same = a.join(a).unwrap();
        assert_eq!(same.dim_of, Some(n));
        let other = VarTy::dim_scalar(Dim::sym("m", Some(9)));
        assert_eq!(a.join(other).unwrap().dim_of, None);
        // Plain integral constants also denote dims.
        assert_eq!(VarTy::int_const(5.0).as_dim(), Some(Dim::Known(5)));
        assert_eq!(VarTy::int_const(5.5).as_dim(), None);
        // A known-constant dim scalar still folds.
        assert_eq!(VarTy::dim_scalar(Dim::Known(4)).konst, Some(4.0));
    }
}
