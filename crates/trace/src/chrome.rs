//! Chrome `trace_event` JSON export (viewable in `chrome://tracing` or
//! Perfetto). Hand-rolled — the workspace has no JSON dependency.

use crate::{EventKind, TraceEvent};
use std::fmt::Write as _;

const US_PER_S: f64 = 1e6;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push('"');
    escape(key, out);
    out.push_str("\":\"");
    escape(val, out);
    out.push('"');
}

/// Render the event stream as a Chrome `trace_event` JSON document.
///
/// Each event becomes a complete (`"ph":"X"`) event with `ts`/`dur` in
/// microseconds of *simulated* time, `pid` 0, and `tid` = rank. Kind details
/// (peer, bytes, sequence number, algorithm, operator) land in `args`.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(&mut out, "name", ev.kind.label());
        let cat = match ev.kind {
            EventKind::Compute => "compute",
            EventKind::Send { .. } | EventKind::Recv { .. } => "comm",
            EventKind::Collective { .. } | EventKind::Barrier => "collective",
            EventKind::Phase { .. } => "phase",
            EventKind::Statement { .. } => "statement",
        };
        out.push(',');
        push_str_field(&mut out, "cat", cat);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{}",
            ev.t_start * US_PER_S,
            ev.duration() * US_PER_S,
            ev.rank
        );
        out.push_str(",\"args\":{");
        match &ev.kind {
            EventKind::Send { to, bytes, seq } => {
                let _ = write!(out, "\"to\":{to},\"bytes\":{bytes},\"seq\":{seq}");
            }
            EventKind::Recv { from, bytes, seq } => {
                let _ = write!(out, "\"from\":{from},\"bytes\":{bytes},\"seq\":{seq}");
            }
            EventKind::Collective { algo, op, .. } => {
                push_str_field(&mut out, "algo", algo);
                if let Some(op) = op {
                    out.push(',');
                    push_str_field(&mut out, "op", op);
                }
            }
            _ => {}
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_wellformed_json() {
        let events = vec![
            TraceEvent {
                rank: 0,
                t_start: 0.0,
                t_end: 1e-3,
                kind: EventKind::Compute,
            },
            TraceEvent {
                rank: 0,
                t_start: 1e-3,
                t_end: 2e-3,
                kind: EventKind::Send {
                    to: 1,
                    bytes: 800,
                    seq: 0,
                },
            },
            TraceEvent {
                rank: 1,
                t_start: 0.0,
                t_end: 2e-3,
                kind: EventKind::Collective {
                    name: "allreduce",
                    algo: "tree",
                    op: Some("sum"),
                },
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("}"));
        assert!(json.contains("\"name\":\"send\""));
        assert!(json.contains("\"to\":1,\"bytes\":800,\"seq\":0"));
        assert!(json.contains("\"algo\":\"tree\""));
        assert!(json.contains("\"op\":\"sum\""));
        assert!(json.contains("\"ts\":1000.000"));
        // Balanced braces/brackets — cheap well-formedness check.
        let braces = json.matches('{').count() as i64 - json.matches('}').count() as i64;
        let brackets = json.matches('[').count() as i64 - json.matches(']').count() as i64;
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
    }

    #[test]
    fn empty_stream_still_valid() {
        let json = chrome_trace(&[]);
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
