//! Failure-path fixtures: SPMD jobs that misuse the communication
//! layer (mismatched collectives, unpaired point-to-point traffic,
//! wrong payload shapes) and jobs under injected faults, asserting the
//! exact typed [`JobFailure`] contents — which rank failed, why, and
//! which peers were blocked on it — at p ∈ {2, 4, 8}.
//!
//! Each dynamic fixture has a static twin: the lint divergence
//! analysis flags the same misuse pattern on hand-built IR (compiled
//! `.m` programs are divergence-free after resolution, so the IR is
//! constructed directly, exactly as the fixture's closure diverges on
//! `rank()`).

use otter_core::{compile, try_run, Engine, EngineOptions, OtterEngine, RunRequest};
use otter_ir::{Instr, MatInit, RedOp, SExpr};
use otter_lint::divergence::lint_scope;
use otter_machine::meiko_cs2;
use otter_mpi::{run_spmd_with, CommError, FaultPlan, ReduceOp, SpmdOptions, WaitEdge};

/// Mismatched collective: even ranks enter an allreduce, odd ranks
/// skip it and finish. The participating ranks each learn which dead
/// peer they were waiting on; the skippers survive with their values.
#[test]
fn mismatched_collective_reports_terminated_peers() {
    for p in [2usize, 4, 8] {
        let job = run_spmd_with(&meiko_cs2(), p, SpmdOptions::default(), |c| {
            if c.rank() % 2 == 0 {
                c.allreduce_scalar(c.rank() as f64, ReduceOp::Sum)?;
            }
            Ok(c.rank())
        });
        let failure = job.expect_err("even ranks must fail");
        let failed: Vec<usize> = failure.report.failures.iter().map(|f| f.rank).collect();
        let even: Vec<usize> = (0..p).filter(|r| r % 2 == 0).collect();
        let odd: Vec<usize> = (0..p).filter(|r| r % 2 == 1).collect();
        assert_eq!(failed, even, "p={p}");
        assert_eq!(failure.report.survivor_ranks, odd, "p={p}");
        for f in &failure.report.failures {
            assert_eq!(f.error.code(), "peer_terminated", "p={p} rank {}", f.rank);
            assert_eq!(f.error.rank(), f.rank, "p={p}");
        }
        // Survivors keep their results and partial counters.
        for (s, want) in failure.survivors.iter().zip(&odd) {
            assert_eq!(s.rank, *want, "p={p}");
            assert_eq!(s.value, *want, "p={p}");
        }
        // At p = 2 the whole report is pinned down exactly.
        if p == 2 {
            assert_eq!(
                failure.report.failures[0].error,
                CommError::PeerTerminated { rank: 0, peer: 1 },
            );
            assert_eq!(
                failure.report.failures[0].error.to_string(),
                "rank 1 terminated while rank 0 awaited its message",
            );
        }
    }
}

/// Static twin: a collective (`Reduce`) under rank-divergent control
/// flow — the lint flags it as a collective-divergence site, the same
/// defect the dynamic fixture above exhibits at run time.
#[test]
fn lint_flags_the_mismatched_collective_statically() {
    let body = vec![
        Instr::InitMatrix {
            dst: "a".into(),
            init: MatInit::Rand {
                rows: SExpr::c(4.0),
                cols: SExpr::c(4.0),
            },
        },
        // `r` is read before any definition: the lint's stand-in for a
        // per-rank value (exactly how the closure branches on rank()).
        Instr::If {
            cond: SExpr::var("r"),
            then_body: vec![Instr::Reduce {
                dst: "s".into(),
                op: RedOp::SumAll,
                m: "a".into(),
            }],
            else_body: vec![],
        },
    ];
    let (findings, divergence_free) = lint_scope(&body, &[]);
    assert!(!divergence_free);
    assert!(
        findings
            .iter()
            .any(|f| f.anchor == "s" && f.message.contains("collective divergence")),
        "{findings:?}"
    );
}

/// Send without a matching receive: rank 0 sends once but rank 1
/// receives twice, so the second receive finds its peer already
/// finished. The exact error is identical at every p.
#[test]
fn send_without_matching_recv_reports_dead_peer() {
    for p in [2usize, 4, 8] {
        let job = run_spmd_with(&meiko_cs2(), p, SpmdOptions::default(), |c| {
            match c.rank() {
                0 => c.send_scalar(1, 42.0)?,
                1 => {
                    let a = c.recv_scalar(0)?;
                    let b = c.recv_scalar(0)?; // never sent
                    assert_eq!((a, b), (42.0, 42.0));
                }
                _ => {}
            }
            Ok(())
        });
        let failure = job.expect_err("rank 1 must fail");
        assert_eq!(failure.report.failures.len(), 1, "p={p}");
        let f = &failure.report.failures[0];
        assert_eq!(f.rank, 1, "p={p}");
        assert_eq!(f.error, CommError::PeerTerminated { rank: 1, peer: 0 });
        assert!(f.blocked_peers.is_empty(), "p={p}: {:?}", f.blocked_peers);
        assert_eq!(failure.report.root_cause().rank, 1, "p={p}");
        let survivors: Vec<usize> = (0..p).filter(|&r| r != 1).collect();
        assert_eq!(failure.report.survivor_ranks, survivors, "p={p}");
        // The sender's partial stats survive: its one message is
        // counted even though the job failed.
        let rank0 = &failure.survivors[0];
        assert_eq!(rank0.rank, 0);
        assert_eq!(rank0.stats.messages_sent, 1, "p={p}");
    }
}

/// Static twin: a point-to-point instruction (`Shift`) under
/// rank-divergent control flow — flagged as a send/recv mismatch.
#[test]
fn lint_flags_the_unpaired_p2p_statically() {
    let body = vec![
        Instr::InitMatrix {
            dst: "v".into(),
            init: MatInit::Rand {
                rows: SExpr::c(1.0),
                cols: SExpr::c(8.0),
            },
        },
        Instr::If {
            cond: SExpr::var("r"),
            then_body: vec![Instr::Shift {
                dst: "w".into(),
                v: "v".into(),
                k: SExpr::c(1.0),
            }],
            else_body: vec![],
        },
    ];
    let (findings, divergence_free) = lint_scope(&body, &[]);
    assert!(!divergence_free);
    assert!(
        findings
            .iter()
            .any(|f| f.anchor == "w" && f.message.contains("send/recv mismatch")),
        "{findings:?}"
    );
}

/// Two ranks blocked on each other receive the canonical deadlock
/// verdict — the confirmed wait-for cycle, byte-for-byte identical on
/// both members — while uninvolved ranks finish normally. No 60-second
/// timeout is involved: the whole diagnosis is wait-for-graph based.
#[test]
fn recv_recv_cycle_yields_exact_deadlock_cycle() {
    for p in [2usize, 4, 8] {
        let t0 = std::time::Instant::now();
        let job = run_spmd_with(&meiko_cs2(), p, SpmdOptions::default(), |c| {
            match c.rank() {
                0 => {
                    c.recv_scalar(1)?;
                }
                1 => {
                    c.recv_scalar(0)?;
                }
                _ => {}
            }
            Ok(())
        });
        let elapsed = t0.elapsed();
        let failure = job.expect_err("the cycle must be diagnosed");
        let cycle = vec![
            WaitEdge {
                waiter: 0,
                waiting_on: 1,
            },
            WaitEdge {
                waiter: 1,
                waiting_on: 0,
            },
        ];
        assert_eq!(failure.report.failures.len(), 2, "p={p}");
        assert_eq!(
            failure.report.failures[0].error,
            CommError::Deadlock {
                rank: 0,
                waiting_on: 1,
                cycle: cycle.clone(),
            },
            "p={p}"
        );
        assert_eq!(
            failure.report.failures[1].error,
            CommError::Deadlock {
                rank: 1,
                waiting_on: 0,
                cycle,
            },
            "p={p}"
        );
        assert_eq!(failure.report.failures[0].blocked_peers, vec![1], "p={p}");
        assert_eq!(failure.report.failures[1].blocked_peers, vec![0], "p={p}");
        let rest: Vec<usize> = (2..p).collect();
        assert_eq!(failure.report.survivor_ranks, rest, "p={p}");
        // Diagnosis is wait-for based, well under the old 60 s timeout.
        assert!(
            elapsed < std::time::Duration::from_secs(20),
            "p={p}: deadlock diagnosis took {elapsed:?}"
        );
    }
}

/// Wrong payload shape is a typed error on the receiver, not a panic.
#[test]
fn payload_mismatch_is_typed() {
    let job = run_spmd_with(&meiko_cs2(), 2, SpmdOptions::default(), |c| {
        if c.rank() == 0 {
            c.send(1, &[1.0, 2.0, 3.0])?;
        } else {
            c.recv_scalar(0)?;
        }
        Ok(())
    });
    let failure = job.expect_err("rank 1 must reject the payload");
    assert_eq!(failure.report.failures.len(), 1);
    assert_eq!(
        failure.report.failures[0].error,
        CommError::PayloadMismatch {
            rank: 1,
            from: 0,
            expected: 1,
            got: 3,
        }
    );
    assert_eq!(failure.report.survivor_ranks, vec![0]);
}

/// The headline acceptance scenario: a compiled benchmark app at
/// p = 8 with an injected rank crash. The job result names the dead
/// rank, the peers blocked on it appear in its failure entry, the
/// surviving/cascade ranks keep their partial counters, and no thread
/// panics anywhere (the error arrives as data through `try_run`).
#[test]
fn injected_crash_at_p8_names_dead_rank_and_blocked_peers() {
    let app = otter_apps::test_apps()
        .into_iter()
        .find(|a| a.id == "cg")
        .expect("cg app");
    let victim = 3usize;
    let mut opts = EngineOptions::builder()
        .faults(FaultPlan::new().crash(victim, 2))
        .build();
    opts.data_dir = None;
    let artifact = compile(&app.script, &opts).expect("compiles");
    let outcome = try_run(&artifact, &RunRequest::on(meiko_cs2(), 8)).expect("no driver error");
    let failure = outcome.expect_err("the injected crash must surface");

    let root = failure.report.root_cause();
    assert_eq!(root.rank, victim);
    assert_eq!(
        root.error,
        CommError::InjectedCrash {
            rank: victim,
            op_index: 2,
        }
    );
    // Every rank listed as blocked on the victim cascaded into a
    // peer-terminated failure of its own.
    let victim_entry = failure
        .report
        .failures
        .iter()
        .find(|f| f.rank == victim)
        .expect("victim entry");
    for blocked in &victim_entry.blocked_peers {
        assert!(
            failure
                .report
                .failures
                .iter()
                .any(|f| f.rank == *blocked && matches!(f.error, CommError::PeerTerminated { .. })),
            "blocked peer {blocked} should have failed as peer-terminated"
        );
    }
    // Partial per-rank state is intact: every failed rank reports the
    // clock and counters it had accumulated, and nothing panicked.
    for f in &failure.report.failures {
        assert!(f.clock >= 0.0);
        assert_ne!(f.error.code(), "panicked", "rank {}: {}", f.rank, f.error);
    }
    assert_eq!(
        failure.report.failures.len() + failure.survivors.len(),
        8,
        "every rank is accounted for"
    );
}

/// The engine's string-error path still works: `Engine::run` folds the
/// failure report into an `OtterError` whose message names the root
/// cause, so callers that never opted into `try_run` keep working.
#[test]
fn engine_run_formats_the_failure_report() {
    let app = otter_apps::test_apps()
        .into_iter()
        .find(|a| a.id == "cg")
        .expect("cg app");
    let opts = EngineOptions::builder()
        .faults(FaultPlan::new().crash(1, 1))
        .build();
    let mut engine = OtterEngine::new(opts);
    engine.prepare(&app.script).expect("compiles");
    let err = engine
        .run(&meiko_cs2(), 4)
        .expect_err("the crash must surface");
    let msg = err.to_string();
    assert!(msg.contains("SPMD job failed"), "{msg}");
    assert!(msg.contains("crashed by fault plan"), "{msg}");
}
