//! # otter-rt
//!
//! The run-time library of the Otter parallel MATLAB compiler
//! reproduction — the `ML_*` layer of the paper's Figure 1 stack.
//!
//! Responsibilities (paper §4):
//!
//! * allocation and layout of distributed vectors and matrices
//!   ([`DistMatrix`]: row-contiguous matrix blocks, element-block
//!   vectors, replicated scalars);
//! * every matrix/vector operation that requires interprocessor
//!   communication (`matmul`, `matvec`, transpose, outer products,
//!   reductions, shifts, slicing, element broadcast);
//! * ownership tests (`is_owner`) and local addressing
//!   (`local_offset`) used by the owner-computes guards the compiler
//!   emits;
//! * coordinated I/O through rank 0.
//!
//! Element-wise loops stay in the generated code (here: the `map`/
//! `zip` helpers), exactly as in the paper, because they never
//! communicate: identically shaped objects are identically
//! distributed.
//!
//! The [`Dense`] type is the purely local matrix kernel, shared by the
//! interpreter baseline and used as the oracle in this crate's tests.

pub mod alloc;
pub mod dense;
pub mod dist;
pub mod io;
pub mod kernels;
pub mod linalg;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod reduce;

pub use dense::Dense;
pub use dist::Block;
pub use io::LoadError;
pub use matrix::DistMatrix;
pub use otter_mpi::CommError;

/// Record one finished `ML_*` library call as an
/// `rt_op_seconds{op=...}` observation of modeled virtual seconds.
/// No-op (and no key construction) when the rank runs without metrics.
pub(crate) fn note_rt_op(comm: &mut otter_mpi::Comm, op: &'static str, t0: f64) {
    let dt = comm.clock() - t0;
    if let Some(m) = comm.metrics() {
        m.observe("rt_op_seconds", &[("op", op)], dt);
    }
}
