//! `harness analyze` — the static communication-volume oracle against
//! the modeled run.
//!
//! For each benchmark app this compiles once with the analyze knob on,
//! reads the oracle's per-site `messages(p)` / `bytes(p)` predictions
//! off the artifact, then executes the deterministic modeled run at
//! each requested rank count and compares *exactly*: at every leaf
//! site, `per-exec model × measured execution count` must equal the
//! executor's instrumented totals, message for message and byte for
//! byte. There is no tolerance anywhere — the oracle's claim is
//! identity, not approximation. Statically provable trip counts are
//! additionally checked against the measured counts.
//!
//! The report renders as a per-site table and exports as
//! [`ANALYZE_SCHEMA`] JSON for CI smoke checks.

use crate::figures::Scale;
use otter_core::analysis::{Execs, SitePrediction};
use otter_core::{compile, run, EngineOptions, OtterError, RunRequest};
use otter_machine::meiko_cs2;
use otter_metrics::Json;

/// Schema tag on every JSON export of an [`AnalyzeReport`].
pub const ANALYZE_SCHEMA: &str = "otter-analyze/v1";

/// What to analyze.
#[derive(Debug, Clone)]
pub struct AnalyzeSpec {
    pub scale: Scale,
    /// `cg|ocean|nbody|tc|all`.
    pub app_id: String,
    /// Rank counts to evaluate and verify at.
    pub ranks: Vec<usize>,
}

impl Default for AnalyzeSpec {
    fn default() -> Self {
        AnalyzeSpec {
            scale: Scale::Test,
            app_id: "all".to_string(),
            ranks: vec![1, 2, 4, 8],
        }
    }
}

/// The oracle's verdict for one site at one rank count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteCheck {
    pub ranks: usize,
    /// Measured executions of the site (rank 0's count).
    pub execs: u64,
    /// Predicted totals: per-exec model × measured execs. `None` when
    /// the model could not resolve (no such site exists today — kept
    /// honest in the schema).
    pub predicted_messages: Option<u64>,
    pub predicted_bytes: Option<u64>,
    /// Instrumented totals from the modeled run.
    pub measured_messages: u64,
    pub measured_bytes: u64,
}

impl SiteCheck {
    /// Exact equality — the oracle's contract.
    pub fn matched(&self) -> bool {
        self.predicted_messages == Some(self.measured_messages)
            && self.predicted_bytes == Some(self.measured_bytes)
    }
}

/// One leaf site: the static prediction plus its per-p verification.
#[derive(Debug, Clone)]
pub struct SiteRow {
    pub prediction: SitePrediction,
    pub checks: Vec<SiteCheck>,
}

/// One app's full analysis.
#[derive(Debug, Clone)]
pub struct AppAnalysis {
    pub app: String,
    pub sites: Vec<SiteRow>,
    /// Variables the SSA-web interference analysis proved in-place
    /// updatable, scope-qualified (`main: x` / `f: y`).
    pub in_place: Vec<String>,
    /// Compile-time shape-safety errors (must be 0 for the paper apps).
    pub shape_errors: usize,
}

impl AppAnalysis {
    /// Every site matched at every rank count.
    pub fn matched(&self) -> bool {
        self.sites
            .iter()
            .all(|s| s.checks.iter().all(SiteCheck::matched))
    }
}

/// The full `harness analyze` result.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    pub scale: String,
    pub machine: String,
    pub ranks: Vec<usize>,
    pub apps: Vec<AppAnalysis>,
}

impl AnalyzeReport {
    pub fn matched(&self) -> bool {
        self.apps.iter().all(AppAnalysis::matched)
    }

    /// Render the per-site tables.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for app in &self.apps {
            let _ = writeln!(
                out,
                "== {} — {} site(s), {} shape error(s), oracle {} ==",
                app.app,
                app.sites.len(),
                app.shape_errors,
                if app.matched() { "EXACT" } else { "MISMATCH" },
            );
            let _ = writeln!(
                out,
                "{:>4} {:<8} {:<15} {:>6} {:>24} {:>24}  checks",
                "site", "scope", "opcode", "execs", "messages(p)", "bytes(p)"
            );
            for row in &app.sites {
                let p = &row.prediction;
                let execs = match p.execs {
                    Execs::Static(n) => n.to_string(),
                    Execs::Dynamic => "dyn".to_string(),
                };
                let checks: Vec<String> = row
                    .checks
                    .iter()
                    .map(|c| format!("p{}:{}", c.ranks, if c.matched() { "ok" } else { "FAIL" }))
                    .collect();
                let _ = writeln!(
                    out,
                    "{:>4} {:<8} {:<15} {:>6} {:>24} {:>24}  {}",
                    p.site,
                    p.func.as_deref().unwrap_or("main"),
                    p.opcode,
                    execs,
                    p.model.messages_formula(),
                    p.model.bytes_formula(),
                    checks.join(" "),
                );
            }
            if !app.in_place.is_empty() {
                let _ = writeln!(out, "in-place updatable: {}", app.in_place.join(", "));
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(
            out,
            "analyze: {} app(s) at p={{{}}}: oracle {}",
            self.apps.len(),
            self.ranks
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
            if self.matched() { "EXACT" } else { "MISMATCH" },
        );
        out
    }

    /// Export as [`ANALYZE_SCHEMA`] JSON.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(ANALYZE_SCHEMA.to_string())),
            ("scale".to_string(), Json::Str(self.scale.clone())),
            ("machine".to_string(), Json::Str(self.machine.clone())),
            (
                "ranks".to_string(),
                Json::Arr(self.ranks.iter().map(|&p| Json::Num(p as f64)).collect()),
            ),
            ("matched".to_string(), Json::Bool(self.matched())),
            (
                "apps".to_string(),
                Json::Arr(self.apps.iter().map(app_json).collect()),
            ),
        ])
    }
}

fn app_json(app: &AppAnalysis) -> Json {
    Json::Obj(vec![
        ("app".to_string(), Json::Str(app.app.clone())),
        ("matched".to_string(), Json::Bool(app.matched())),
        (
            "shape_errors".to_string(),
            Json::Num(app.shape_errors as f64),
        ),
        (
            "in_place".to_string(),
            Json::Arr(app.in_place.iter().map(|v| Json::Str(v.clone())).collect()),
        ),
        (
            "sites".to_string(),
            Json::Arr(
                app.sites
                    .iter()
                    .map(|row| {
                        let p = &row.prediction;
                        Json::Obj(vec![
                            ("site".to_string(), Json::Num(f64::from(p.site))),
                            (
                                "scope".to_string(),
                                Json::Str(p.func.clone().unwrap_or_else(|| "main".to_string())),
                            ),
                            ("opcode".to_string(), Json::Str(p.opcode.to_string())),
                            ("loop_depth".to_string(), Json::Num(f64::from(p.loop_depth))),
                            (
                                "static_execs".to_string(),
                                match p.execs {
                                    Execs::Static(n) => Json::Num(n as f64),
                                    Execs::Dynamic => Json::Null,
                                },
                            ),
                            (
                                "messages_formula".to_string(),
                                Json::Str(p.model.messages_formula()),
                            ),
                            (
                                "bytes_formula".to_string(),
                                Json::Str(p.model.bytes_formula()),
                            ),
                            (
                                "checks".to_string(),
                                Json::Arr(row.checks.iter().map(check_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn check_json(c: &SiteCheck) -> Json {
    let opt = |v: Option<u64>| v.map_or(Json::Null, |n| Json::Num(n as f64));
    Json::Obj(vec![
        ("ranks".to_string(), Json::Num(c.ranks as f64)),
        ("execs".to_string(), Json::Num(c.execs as f64)),
        ("predicted_messages".to_string(), opt(c.predicted_messages)),
        ("predicted_bytes".to_string(), opt(c.predicted_bytes)),
        (
            "measured_messages".to_string(),
            Json::Num(c.measured_messages as f64),
        ),
        (
            "measured_bytes".to_string(),
            Json::Num(c.measured_bytes as f64),
        ),
        ("matched".to_string(), Json::Bool(c.matched())),
    ])
}

/// Compile each selected app with the oracle on, run the modeled
/// execution at every requested rank count, and verify site by site.
pub fn run_analyze(spec: &AnalyzeSpec) -> Result<AnalyzeReport, OtterError> {
    let machine = meiko_cs2();
    let apps: Vec<_> = spec
        .scale
        .apps()
        .into_iter()
        .filter(|a| spec.app_id == "all" || a.id == spec.app_id)
        .collect();

    let mut out = Vec::with_capacity(apps.len());
    for app in &apps {
        let opts = EngineOptions::builder().analyze(true).build();
        let artifact = compile(&app.script, &opts)?;
        let compiled = artifact.compiled();

        let mut sites: Vec<SiteRow> = compiled
            .analysis
            .iter()
            .map(|p| SiteRow {
                prediction: p.clone(),
                checks: Vec::with_capacity(spec.ranks.len()),
            })
            .collect();

        for &p in &spec.ranks {
            let report = run(&artifact, &RunRequest::on(machine.clone(), p))?;
            assert_eq!(
                report.comm_sites.len(),
                sites.len(),
                "{}: executor and oracle disagree on the site count",
                app.id
            );
            for (row, measured) in sites.iter_mut().zip(&report.comm_sites) {
                let per_exec = row.prediction.model.per_exec(p);
                row.checks.push(SiteCheck {
                    ranks: p,
                    execs: measured.execs,
                    predicted_messages: per_exec.map(|c| c.messages * measured.execs),
                    predicted_bytes: per_exec.map(|c| c.bytes * measured.execs),
                    measured_messages: measured.messages,
                    measured_bytes: measured.bytes,
                });
            }
        }

        let mut in_place: Vec<String> = compiled
            .ir
            .in_place
            .iter()
            .map(|v| format!("main: {v}"))
            .collect();
        for (name, f) in &compiled.ir.functions {
            in_place.extend(f.in_place.iter().map(|v| format!("{name}: {v}")));
        }
        let shape_errors = compiled
            .lint
            .warnings
            .iter()
            .filter(|w| w.pass == "shape")
            .count();

        out.push(AppAnalysis {
            app: app.id.to_string(),
            sites,
            in_place,
            shape_errors,
        });
    }

    Ok(AnalyzeReport {
        scale: match spec.scale {
            Scale::Paper => "paper".to_string(),
            Scale::Test => "test".to_string(),
            Scale::Large => "large".to_string(),
        },
        machine: machine.name.to_string(),
        ranks: spec.ranks.clone(),
        apps: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_oracle_is_exact_and_exports_schema() {
        let spec = AnalyzeSpec {
            app_id: "cg".to_string(),
            ranks: vec![1, 4],
            ..AnalyzeSpec::default()
        };
        let report = run_analyze(&spec).expect("analyze runs");
        assert_eq!(report.apps.len(), 1);
        assert!(report.matched(), "{}", report.render());
        assert_eq!(report.apps[0].shape_errors, 0);
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some(ANALYZE_SCHEMA)
        );
        assert_eq!(json.get("matched").and_then(Json::as_bool), Some(true));
    }
}
