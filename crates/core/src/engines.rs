//! The three execution engines the paper's evaluation compares,
//! unified behind the [`Engine`] trait: prepare a MATLAB script, run
//! it on a modeled machine, and get back an [`EngineReport`] — the
//! one schema every figure, ablation, and future backend reports
//! through.
//!
//! * [`InterpreterEngine`] — the MathWorks-interpreter stand-in (the
//!   baseline of every figure).
//! * [`MatcomEngine`] — MATCOM-style sequential compiled code: same
//!   evaluator, compiled-code cost coefficients.
//! * [`OtterEngine`] — the real pipeline: compile to SPMD IR, execute
//!   on `p` ranks over the machine model; modeled time = slowest
//!   rank's virtual clock.

use crate::artifact::{compile, run, CompiledArtifact, Fingerprint, RunRequest};
use crate::error::{OtterError, Result};
use otter_interp::{assemble_program, Interp, Value};
use otter_lint::LintMode;
use otter_log::{FlightEvent, JobId};
use otter_machine::{ExecutionStyle, Machine};
use otter_metrics::{MetricsRegistry, MetricsSnapshot};
use otter_mpi::{CollectiveAlgo, FailureReport, FaultAction, FaultPlan, SpmdOptions};
use otter_rt::Dense;
use otter_trace::{CriticalPath, TraceSink};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Uniform per-rank communication counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankCounters {
    pub rank: usize,
    /// Messages this rank sent.
    pub messages: u64,
    /// Bytes this rank sent.
    pub bytes: u64,
    /// The rank's final virtual clock (seconds).
    pub clock: f64,
    /// High-water mark of the rank's live matrix bytes (allocator
    /// view, temporaries included).
    pub peak_bytes: usize,
    /// Seconds of the clock spent in modeled computation.
    pub compute_seconds: f64,
    /// Seconds spent driving sends (sender-side transfer charges).
    pub comm_seconds: f64,
    /// Seconds spent blocked in `recv` waiting on a message.
    pub idle_seconds: f64,
}

/// Realized communication at one leaf site, summed across every rank
/// and every execution of the site. Populated only by the Otter engine
/// when [`EngineOptions::analyze`] is on; the static oracle
/// (`otter-lint::oracle`) predicts exactly these totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSiteReport {
    /// Site index in [`otter_ir::leaf_sites`] order.
    pub site: u32,
    /// Enclosing function, or `None` for the script body.
    pub func: Option<String>,
    /// The site's instruction opcode.
    pub opcode: String,
    /// Times rank 0 executed the site (SPMD: identical on all ranks).
    pub execs: u64,
    /// Messages all ranks sent from this site.
    pub messages: u64,
    /// Bytes all ranks sent from this site.
    pub bytes: u64,
}

/// What every engine reports: results plus uniform counters, so
/// Figure 2–6 comparisons and future backends share one schema.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Which engine produced this (`interpreter`, `matcom`, `otter`).
    pub engine: &'static str,
    /// Correlation key of the run that produced this report.
    /// [`crate::try_run`] mints one when the [`RunRequest`] does not
    /// carry one; sequential engines report `JobId(0)` (uncorrelated).
    pub job_id: JobId,
    /// Final workspace (fully gathered — machine-independent).
    pub workspace: HashMap<String, Value>,
    /// Captured display output.
    pub output: String,
    /// Modeled execution time in seconds.
    pub modeled_seconds: f64,
    /// Executed-operation counts. The Otter engine counts per IR
    /// opcode; the sequential engines count per scalar op class plus
    /// `statement`/`matmul`/`matvec`. Keys are stable lowercase names.
    pub op_counts: BTreeMap<String, u64>,
    /// Total messages sent across ranks (0 for sequential engines).
    pub messages: u64,
    /// Total bytes sent across ranks (0 for sequential engines).
    pub bytes: u64,
    /// Largest per-rank high-water mark of live *named* matrix memory
    /// (the paper's §7 claim: distributed blocks shrink per-CPU
    /// memory, so bigger problems fit).
    pub peak_rank_bytes: usize,
    /// Largest per-rank high-water mark counting *all* matrix
    /// allocations, compiler temporaries included (run-time allocator
    /// view; equals the workspace peak for sequential engines).
    pub peak_temp_bytes: usize,
    /// Per-rank breakdown (one entry, rank 0, for sequential engines).
    pub per_rank: Vec<RankCounters>,
    /// Longest send/recv dependency chain through the traced run.
    /// `Some` only when the engine ran with a retaining trace sink
    /// (see [`EngineOptions::builder`]).
    pub critical_path: Option<CriticalPath>,
    /// Job-level metric snapshot: every rank's registry merged
    /// (counters added, gauges maxed, histograms merged bucket-wise)
    /// plus job-wide series like `rank_clock_seconds`. `Some` only
    /// when the engine ran with [`EngineOptions::metrics`] on.
    pub metrics: Option<MetricsSnapshot>,
    /// Per-leaf-site realized communication, in
    /// [`otter_ir::leaf_sites`] order. Empty unless the run executed
    /// with [`EngineOptions::analyze`] on (sequential engines never
    /// fill it).
    pub comm_sites: Vec<CommSiteReport>,
}

impl EngineReport {
    /// The report shape shared by single-CPU engines: one rank, no
    /// traffic, every second of the clock is compute, and the
    /// workspace peak doubles as the allocator peak.
    pub fn sequential(
        engine: &'static str,
        workspace: HashMap<String, Value>,
        output: String,
        modeled_seconds: f64,
        op_counts: BTreeMap<String, u64>,
        peak_bytes: usize,
    ) -> EngineReport {
        EngineReport {
            engine,
            job_id: JobId(0),
            workspace,
            output,
            modeled_seconds,
            op_counts,
            messages: 0,
            bytes: 0,
            peak_rank_bytes: peak_bytes,
            peak_temp_bytes: peak_bytes,
            per_rank: vec![RankCounters {
                rank: 0,
                messages: 0,
                bytes: 0,
                clock: modeled_seconds,
                peak_bytes,
                compute_seconds: modeled_seconds,
                comm_seconds: 0.0,
                idle_seconds: 0.0,
            }],
            critical_path: None,
            metrics: None,
            comm_sites: Vec::new(),
        }
    }

    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.workspace.get(name).and_then(|v| v.as_scalar())
    }

    pub fn matrix(&self, name: &str) -> Option<Dense> {
        self.workspace.get(name).and_then(|v| v.to_matrix())
    }

    /// Total executed operations over all opcodes.
    pub fn total_ops(&self) -> u64 {
        self.op_counts.values().sum()
    }
}

/// Common engine configuration.
///
/// Construct with [`EngineOptions::builder`] (or `Default`): the
/// struct is `#[non_exhaustive]` so future knobs — like the trace sink
/// added in this revision — stop being breaking struct-literal
/// changes.
#[derive(Clone)]
#[non_exhaustive]
pub struct EngineOptions {
    /// Directory `load` resolves data files against.
    pub data_dir: Option<PathBuf>,
    /// M-file provider for user function files.
    pub m_files: Option<otter_frontend::MapProvider>,
    /// Optional passes the Otter engine skips (ablations).
    pub disabled_passes: Vec<String>,
    /// Schedule the SPMD collectives use (tree by default).
    pub collective_algo: CollectiveAlgo,
    /// Event sink every engine layer records into; `None` disables
    /// tracing (the zero-cost default).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Collect per-rank metric registries and merge them into
    /// [`EngineReport::metrics`]. Off by default: disabled runs never
    /// construct a registry, a key, or an observation.
    pub metrics: bool,
    /// Deterministic fault-injection schedule for the SPMD run; `None`
    /// (the default) perturbs nothing and the virtual-time results are
    /// byte-identical to a build without the fault subsystem.
    pub faults: Option<FaultPlan>,
    /// Worker-pool size for the SPMD scheduler: how many logical
    /// ranks may execute at once. `None` (the default) uses the host's
    /// parallelism; deterministic outputs are identical for any value.
    pub workers: Option<usize>,
    /// How the compile pipeline's lint pass treats its findings
    /// ([`LintMode::Warn`] collects, [`LintMode::Deny`] fails the
    /// compile on the first warning).
    pub lint: LintMode,
    /// Run the static-analysis pass at compile time (symbolic shapes,
    /// shape-safety lints, in-place legality, the communication-volume
    /// oracle) and record per-site realized traffic at run time so the
    /// two can be cross-validated. Off by default: analysis costs
    /// compile time and a stats snapshot per executed instruction.
    pub analyze: bool,
    /// Run the loop-fusion pass (on by default). Fused and unfused
    /// programs produce bit-identical results; fusion only removes
    /// temporaries and loop passes. Equivalent to disabling the
    /// `fusion` pass, but keyed separately so artifact caches
    /// distinguish the two pipelines.
    pub fusion: bool,
    /// k-tile of the cache-blocked runtime kernels (see
    /// [`otter_rt::kernels`]). Any tile yields bit-identical results;
    /// the knob is baked into the artifact so cached runs honor it.
    pub tile_size: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            data_dir: None,
            m_files: None,
            disabled_passes: Vec::new(),
            collective_algo: CollectiveAlgo::default(),
            trace: None,
            metrics: false,
            faults: None,
            workers: None,
            lint: LintMode::default(),
            analyze: false,
            fusion: true,
            tile_size: otter_rt::kernels::DEFAULT_TILE,
        }
    }
}

impl fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineOptions")
            .field("data_dir", &self.data_dir)
            .field("m_files", &self.m_files)
            .field("disabled_passes", &self.disabled_passes)
            .field("collective_algo", &self.collective_algo)
            .field("trace", &self.trace.as_ref().map(|_| "<sink>"))
            .field("metrics", &self.metrics)
            .field("faults", &self.faults)
            .field("workers", &self.workers)
            .field("lint", &self.lint)
            .field("analyze", &self.analyze)
            .field("fusion", &self.fusion)
            .field("tile_size", &self.tile_size)
            .finish()
    }
}

impl EngineOptions {
    pub fn builder() -> EngineOptionsBuilder {
        EngineOptionsBuilder::default()
    }

    /// A stable 64-bit fingerprint of every option that can change
    /// what [`crate::compile`] produces or what a run of the artifact
    /// deterministically reports: the data directory, the registered
    /// M-files, disabled passes, the lint mode, the collective
    /// schedule, the metrics switch, the fault plan, and the analyze
    /// switch.
    ///
    /// **Excluded** as run-time-only: `workers` (the scheduler's pool
    /// size is invisible to every deterministic output) and the trace
    /// sink (observation, not behavior). The fingerprint is half of
    /// the artifact-cache key — see
    /// [`CompiledArtifact::cache_key`] — so it is FNV-1a over
    /// explicitly serialized fields, stable across platforms and
    /// releases, never `std::hash`.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.tag(b'd');
        match &self.data_dir {
            Some(dir) => fp.str(&dir.display().to_string()),
            None => fp.tag(0),
        };
        fp.tag(b'm');
        if let Some(provider) = &self.m_files {
            for (name, src) in provider.entries() {
                fp.str(name).str(src);
            }
        }
        fp.tag(b'p');
        let mut disabled: Vec<&str> = self.disabled_passes.iter().map(String::as_str).collect();
        disabled.sort_unstable();
        disabled.dedup();
        for pass in disabled {
            fp.str(pass);
        }
        fp.tag(b'l').tag(match self.lint {
            LintMode::Warn => 0,
            LintMode::Deny => 1,
        });
        fp.tag(b'c').str(self.collective_algo.label());
        fp.tag(b's').tag(self.metrics as u8);
        fp.tag(b'f');
        if let Some(plan) = &self.faults {
            fp.u64(plan.seed.map_or(0, |s| s.wrapping_add(1)));
            for action in &plan.actions {
                match *action {
                    FaultAction::Drop { from, to, nth } => {
                        fp.tag(1).u64(from as u64).u64(to as u64).u64(nth);
                    }
                    FaultAction::Delay {
                        from,
                        to,
                        nth,
                        seconds,
                    } => {
                        fp.tag(2)
                            .u64(from as u64)
                            .u64(to as u64)
                            .u64(nth)
                            .u64(seconds.to_bits());
                    }
                    FaultAction::Crash { rank, at_op } => {
                        fp.tag(3).u64(rank as u64).u64(at_op);
                    }
                }
            }
        }
        fp.tag(b'a').tag(self.analyze as u8);
        fp.tag(b'u').tag(self.fusion as u8);
        fp.tag(b't').u64(self.tile_size as u64);
        fp.finish()
    }

    /// The SPMD launch options these engine options imply.
    pub(crate) fn spmd_options(&self) -> SpmdOptions {
        SpmdOptions {
            algo: self.collective_algo,
            trace: self.trace.clone(),
            metrics: self.metrics,
            faults: self.faults.clone(),
            workers: self.workers,
            ..SpmdOptions::default()
        }
    }
}

/// Builder for [`EngineOptions`].
///
/// ```
/// use otter_core::engines::EngineOptions;
/// use otter_trace::MemorySink;
/// use std::sync::Arc;
///
/// let sink = Arc::new(MemorySink::new());
/// let opts = EngineOptions::builder()
///     .data_dir("data")
///     .trace(sink)
///     .build();
/// assert!(opts.trace.is_some());
/// ```
#[derive(Debug, Default)]
pub struct EngineOptionsBuilder {
    opts: EngineOptions,
}

impl EngineOptionsBuilder {
    /// Directory `load` resolves data files against.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.opts.data_dir = Some(dir.into());
        self
    }

    /// M-file provider for user function files.
    pub fn m_files(mut self, provider: otter_frontend::MapProvider) -> Self {
        self.opts.m_files = Some(provider);
        self
    }

    /// Skip an optional compiler pass (may be called repeatedly).
    pub fn disable_pass(mut self, name: impl Into<String>) -> Self {
        self.opts.disabled_passes.push(name.into());
        self
    }

    /// Collective schedule for the SPMD engine.
    pub fn collective_algo(mut self, algo: CollectiveAlgo) -> Self {
        self.opts.collective_algo = algo;
        self
    }

    /// Record trace events into `sink`. Pass an
    /// `Arc<otter_trace::MemorySink>` to retain events for analysis.
    pub fn trace(mut self, sink: Arc<impl TraceSink + 'static>) -> Self {
        self.opts.trace = Some(sink);
        self
    }

    /// Collect and merge per-rank metrics into the report.
    pub fn metrics(mut self, on: bool) -> Self {
        self.opts.metrics = on;
        self
    }

    /// Inject a deterministic fault schedule into the SPMD run (see
    /// [`otter_mpi::FaultPlan`]). Use [`crate::try_run`] to get the
    /// resulting failure report as data.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.opts.faults = Some(plan);
        self
    }

    /// Treat lint warnings as compile errors.
    pub fn deny_lints(mut self) -> Self {
        self.opts.lint = LintMode::Deny;
        self
    }

    /// Run the static-analysis pass at compile time and record
    /// per-site realized communication at run time (see
    /// [`EngineOptions::analyze`]).
    pub fn analyze(mut self, on: bool) -> Self {
        self.opts.analyze = on;
        self
    }

    /// Fix the SPMD worker-pool size instead of using the host's
    /// parallelism. Any value yields identical deterministic outputs;
    /// small pools let many more ranks than cores run.
    pub fn workers(mut self, n: usize) -> Self {
        self.opts.workers = Some(n);
        self
    }

    /// Toggle the loop-fusion pass (see [`EngineOptions::fusion`]).
    pub fn fusion(mut self, on: bool) -> Self {
        self.opts.fusion = on;
        self
    }

    /// k-tile for the cache-blocked runtime kernels (see
    /// [`EngineOptions::tile_size`]).
    pub fn tile_size(mut self, tile: usize) -> Self {
        self.opts.tile_size = tile;
        self
    }

    pub fn build(self) -> EngineOptions {
        self.opts
    }
}

/// One execution backend. `prepare` does the engine's compile-time
/// work (parse/assemble or the full Otter pipeline); `run` executes
/// on a machine model and reports through the uniform schema.
pub trait Engine {
    /// Stable engine name used in report rows (`interpreter`,
    /// `matcom`, `otter`).
    fn name(&self) -> &'static str;

    /// Ingest and prepare a script. Must be called before `run`.
    fn prepare(&mut self, src: &str) -> Result<()>;

    /// Execute the prepared script on `p` CPUs of `machine`.
    /// Sequential engines model a single CPU and ignore `p`.
    fn run(&mut self, machine: &Machine, p: usize) -> Result<EngineReport>;
}

/// Prepare and run in one call.
pub fn run_engine(
    engine: &mut dyn Engine,
    src: &str,
    machine: &Machine,
    p: usize,
) -> Result<EngineReport> {
    engine.prepare(src)?;
    engine.run(machine, p)
}

/// All three paper engines, ready to prepare.
pub fn standard_engines(opts: &EngineOptions) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(InterpreterEngine::new(opts.clone())),
        Box::new(MatcomEngine::new(opts.clone())),
        Box::new(OtterEngine::new(opts.clone())),
    ]
}

// ---- sequential engines ---------------------------------------------------

fn run_sequential(
    name: &'static str,
    style: ExecutionStyle,
    program: Option<&otter_frontend::Program>,
    machine: &Machine,
    opts: &EngineOptions,
) -> Result<EngineReport> {
    let program =
        program.ok_or_else(|| OtterError::execution(format!("{name}: prepare() not called")))?;
    let mut interp = Interp::with_style(program.clone(), style);
    interp.data_dir = opts.data_dir.clone();
    if let Some(sink) = &opts.trace {
        // Sequential engines emit per-statement spans (rank 0), scaled
        // from meter units to the machine's modeled seconds.
        interp.set_trace(Arc::clone(sink), machine.cpu.flop_time());
    }
    interp.run()?;
    let modeled = interp.meter.seconds_on(&machine.cpu);
    // The sequential peak: high-water mark of the named workspace on
    // one CPU (expression temporaries excluded on both sides' "named
    // values" views; the SPMD executor's compiler temporaries ARE
    // named, so its figure is the more conservative one).
    let peak: usize = interp.peak_workspace_bytes;
    let op_counts: BTreeMap<String, u64> = interp
        .meter
        .op_counts()
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    let mut report = EngineReport::sequential(
        name,
        interp.workspace(),
        interp.output.clone(),
        modeled,
        op_counts,
        peak,
    );
    if opts.metrics {
        let mut reg = MetricsRegistry::new();
        for (op, n) in &report.op_counts {
            reg.inc("ops_total", &[("op", op)], *n);
        }
        reg.gauge_max("workspace_peak_bytes", &[], peak as f64);
        reg.observe("rank_clock_seconds", &[], modeled);
        report.metrics = Some(reg.snapshot());
    }
    Ok(report)
}

fn assemble(src: &str, opts: &EngineOptions) -> Result<otter_frontend::Program> {
    let empty = otter_frontend::MapProvider::new();
    let provider = opts.m_files.as_ref().unwrap_or(&empty);
    Ok(assemble_program(src, provider)?)
}

/// The MathWorks-interpreter baseline (one CPU).
pub struct InterpreterEngine {
    opts: EngineOptions,
    program: Option<otter_frontend::Program>,
}

impl InterpreterEngine {
    pub fn new(opts: EngineOptions) -> Self {
        InterpreterEngine {
            opts,
            program: None,
        }
    }
}

impl Engine for InterpreterEngine {
    fn name(&self) -> &'static str {
        "interpreter"
    }

    fn prepare(&mut self, src: &str) -> Result<()> {
        self.program = Some(assemble(src, &self.opts)?);
        Ok(())
    }

    fn run(&mut self, machine: &Machine, _p: usize) -> Result<EngineReport> {
        run_sequential(
            self.name(),
            ExecutionStyle::Interpreter,
            self.program.as_ref(),
            machine,
            &self.opts,
        )
    }
}

/// The MATCOM sequential-compiler baseline (one CPU).
pub struct MatcomEngine {
    opts: EngineOptions,
    program: Option<otter_frontend::Program>,
}

impl MatcomEngine {
    pub fn new(opts: EngineOptions) -> Self {
        MatcomEngine {
            opts,
            program: None,
        }
    }
}

impl Engine for MatcomEngine {
    fn name(&self) -> &'static str {
        "matcom"
    }

    fn prepare(&mut self, src: &str) -> Result<()> {
        self.program = Some(assemble(src, &self.opts)?);
        Ok(())
    }

    fn run(&mut self, machine: &Machine, _p: usize) -> Result<EngineReport> {
        run_sequential(
            self.name(),
            ExecutionStyle::Matcom,
            self.program.as_ref(),
            machine,
            &self.opts,
        )
    }
}

// ---- the Otter SPMD engine ------------------------------------------------

/// The real pipeline behind the [`Engine`] trait: a thin wrapper over
/// the compile/run split. `prepare` is [`crate::compile`] (producing a
/// cacheable [`CompiledArtifact`]); `run` is [`crate::run`] on that
/// artifact, plus the compile-side pass timings merged back into the
/// metrics snapshot (the engine owns its compile, so its report covers
/// both halves — a cache-served `otterd` job, which only runs, shows
/// no pass time at all).
pub struct OtterEngine {
    opts: EngineOptions,
    artifact: Option<CompiledArtifact>,
}

impl OtterEngine {
    pub fn new(opts: EngineOptions) -> Self {
        OtterEngine {
            opts,
            artifact: None,
        }
    }

    /// Wrap an already-compiled artifact (skips `prepare`). The
    /// artifact's compiled-in options drive the run.
    pub fn with_artifact(artifact: CompiledArtifact) -> Self {
        OtterEngine {
            opts: artifact.options().clone(),
            artifact: Some(artifact),
        }
    }

    /// The compiled artifact, if `prepare` ran (or the engine was
    /// built with [`OtterEngine::with_artifact`]).
    pub fn artifact(&self) -> Option<&CompiledArtifact> {
        self.artifact.as_ref()
    }
}

/// A failed SPMD run as data: which ranks failed and why (with the
/// wait-for information behind each), plus the counters of the ranks
/// that completed the program.
#[derive(Debug, Clone)]
pub struct SpmdJobFailure {
    /// Correlation key of the failed run (same id its trace events,
    /// flight events, and metrics carry).
    pub job_id: JobId,
    /// The typed per-rank failure report.
    pub report: FailureReport,
    /// Counters of the surviving ranks, ordered by rank id.
    pub survivors: Vec<RankCounters>,
    /// Flight-recorder tails of every rank in the job — failed ranks
    /// and survivors alike — ordered by rank id. This is the event
    /// context a postmortem bundle serializes.
    pub flight: Vec<(usize, Vec<FlightEvent>)>,
    /// Every rank's metric registry merged (failed ranks' partial
    /// registries included); `None` when metrics were off.
    pub metrics: Option<MetricsSnapshot>,
}

impl fmt::Display for SpmdJobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report.fmt(f)
    }
}

impl std::error::Error for SpmdJobFailure {}

impl Engine for OtterEngine {
    fn name(&self) -> &'static str {
        "otter"
    }

    fn prepare(&mut self, src: &str) -> Result<()> {
        self.artifact = Some(compile(src, &self.opts)?);
        Ok(())
    }

    fn run(&mut self, machine: &Machine, p: usize) -> Result<EngineReport> {
        let artifact = self
            .artifact
            .as_ref()
            .ok_or_else(|| OtterError::execution("otter: prepare() not called"))?;
        let mut report = run(artifact, &RunRequest::on(machine.clone(), p))?;
        // The engine compiled this artifact itself, so its report
        // accounts for the compile too: merge the per-pass timings
        // into the job snapshot (run() alone reports none — that
        // absence is how a cache hit proves passes 1-6 were skipped).
        if let Some(job) = report.metrics.as_mut() {
            job.merge_from(&crate::pass::pass_metrics(artifact.pass_stats()));
        }
        Ok(report)
    }
}
