//! Show the complete SPMD C translation of a MATLAB script — the
//! artifact the real Otter compiler hands to `mpicc`.
//!
//! ```text
//! cargo run --example compile_to_c            # the paper's §3 examples
//! cargo run --example compile_to_c -- cg      # a whole benchmark app
//! cargo run --example compile_to_c -- <file.m>
//! ```

use otter_core::compile_str;

fn main() {
    let arg = std::env::args().nth(1);
    let (label, source) = match arg.as_deref() {
        None => (
            "paper §3 examples".to_string(),
            "\
n = 8;
b = ones(n, n);
c = ones(n, n);
d = eye(n);
i = 2;
j = 3;
a = b * c + d(i, j);
a(i, j) = a(i, j) / b(j, i);
s = sum(sum(a));
"
            .to_string(),
        ),
        Some(id @ ("cg" | "ocean" | "nbody" | "tc")) => {
            let app = otter_apps::test_apps()
                .into_iter()
                .find(|a| a.id == id)
                .expect("known app id");
            (app.name.to_string(), app.script)
        }
        Some(path) => {
            let src =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            (path.to_string(), src)
        }
    };

    eprintln!("Compiling: {label}\n");
    match compile_str(&source) {
        Ok(compiled) => {
            println!("/* ===== IR ===== ");
            print!("{}", compiled.ir_text());
            println!("*/");
            println!();
            print!("{}", compiled.c_source);
        }
        Err(e) => {
            eprintln!("compile error: {e}");
            std::process::exit(1);
        }
    }
}
