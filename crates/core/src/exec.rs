//! SPMD execution of compiled IR.
//!
//! One [`Executor`] runs per rank, exactly like the generated C
//! program would run per MPI process: replicated scalars live in a
//! per-rank environment, distributed matrices are `otter-rt`
//! [`DistMatrix`] objects, and every communication-bearing instruction
//! calls the run-time library, which talks MPI (here: `otter-mpi`).
//!
//! The executor charges compiled-code ("Otter") cost coefficients to
//! the rank's virtual clock: a tiny dispatch charge per instruction
//! plus a run-time-library call overhead, with element work charged
//! inside the run-time library itself.

use crate::error::{OtterError, Result};
use otter_det::DetRng;
use otter_ir::*;
use otter_machine::{ExecutionStyle, StyleCosts};
use otter_mpi::{Comm, CommError, ReduceOp};
use otter_rt::{io as rtio, Dense, DistMatrix, LoadError};
use otter_trace::EventKind;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

/// Why one rank's execution stopped early: an application-level error
/// (undefined variable, bad index — the same on every rank, SPMD) or a
/// communication failure that must abort the whole job and reach the
/// launcher as typed data, not a formatted string.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// Program-level failure; every rank raises the identical one.
    App(OtterError),
    /// Communication failure (deadlock, dead peer, injected fault).
    Comm(CommError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::App(e) => e.fmt(f),
            ExecError::Comm(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<OtterError> for ExecError {
    fn from(e: OtterError) -> Self {
        ExecError::App(e)
    }
}

impl From<CommError> for ExecError {
    fn from(e: CommError) -> Self {
        ExecError::Comm(e)
    }
}

impl From<LoadError> for ExecError {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::App(msg) => ExecError::App(OtterError::execution(msg)),
            LoadError::Comm(c) => ExecError::Comm(c),
        }
    }
}

impl From<ExecError> for OtterError {
    fn from(e: ExecError) -> Self {
        match e {
            ExecError::App(e) => e,
            ExecError::Comm(c) => c.into(),
        }
    }
}

/// Result of the fallible executor paths (instructions that may hit a
/// communication failure in addition to application errors).
pub type ExecResult<T> = std::result::Result<T, ExecError>;

/// A run-time value: replicated scalar or distributed matrix.
#[derive(Debug, Clone)]
pub enum XVal {
    S(f64),
    M(DistMatrix),
}

impl XVal {
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            XVal::S(v) => Some(*v),
            XVal::M(_) => None,
        }
    }

    pub fn as_matrix(&self) -> Option<&DistMatrix> {
        match self {
            XVal::M(m) => Some(m),
            XVal::S(_) => None,
        }
    }
}

/// Why a block stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Break,
    Continue,
}

/// Options controlling one SPMD execution.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    pub data_dir: Option<PathBuf>,
    /// Seed for `rand` matrix initializers (replicated across ranks so
    /// every rank agrees on the data).
    pub rand_seed: u64,
    /// Record per-site communication (messages/bytes/executions per
    /// leaf instruction in [`otter_ir::leaf_sites`] order) so the
    /// static oracle's predictions can be cross-validated against the
    /// realized traffic.
    pub analyze: bool,
    /// k-tile of the cache-blocked kernels this rank runs
    /// (see [`otter_rt::kernels`]). Never changes results — the
    /// kernels accumulate in ascending k for every tile size.
    pub tile_size: usize,
    /// Intra-rank kernel threads (the hybrid ranks × threads level).
    /// Never changes results — threads split disjoint output rows.
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            data_dir: None,
            rand_seed: 0x07732,
            analyze: false,
            tile_size: otter_rt::kernels::DEFAULT_TILE,
            threads: 1,
        }
    }
}

/// Realized communication at one leaf site, accumulated over every
/// execution of that instruction on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteComm {
    /// Messages this rank sent from this site.
    pub messages: u64,
    /// Bytes this rank sent from this site.
    pub bytes: u64,
    /// Times this rank executed the site.
    pub execs: u64,
}

/// Per-rank executor state.
pub struct Executor<'a> {
    program: &'a IrProgram,
    comm: &'a mut Comm,
    costs: StyleCosts,
    opts: ExecOptions,
    /// Scope stack; last is current. Scope 0 is the script workspace.
    scopes: Vec<HashMap<String, XVal>>,
    /// Output the root rank accumulates (None elsewhere).
    pub output: String,
    /// Monotone counter making successive `rand` calls draw different
    /// (but rank-replicated) streams.
    rand_calls: u64,
    /// High-water mark of live distributed-matrix bytes on this rank
    /// (the paper's §7 memory argument: each rank holds only its
    /// blocks, so the aggregate machine admits problems a single
    /// workstation cannot hold).
    peak_local_bytes: usize,
    /// Executed-instruction counts by opcode (`EngineReport`'s
    /// per-opcode counters).
    op_counts: BTreeMap<&'static str, u64>,
    /// Opcode → pre-registered `op_seconds` histogram handle, so the
    /// metric record path does no key construction per instruction.
    op_ids: HashMap<&'static str, otter_metrics::MetricId>,
    /// Leaf-instruction address → site id (only when `opts.analyze`).
    /// Function bodies run by reference, so an instruction's address is
    /// a stable identity for the whole run.
    site_of: Option<HashMap<usize, u32>>,
    /// Per-site realized communication, indexed by site id.
    site_comm: Vec<SiteComm>,
}

impl<'a> Executor<'a> {
    pub fn new(program: &'a IrProgram, comm: &'a mut Comm, opts: ExecOptions) -> Self {
        let site_of = opts.analyze.then(|| {
            otter_ir::leaf_sites(program)
                .iter()
                .map(|s| (s.instr as *const Instr as usize, s.id))
                .collect::<HashMap<usize, u32>>()
        });
        let site_comm = vec![SiteComm::default(); site_of.as_ref().map_or(0, |m| m.len())];
        Executor {
            program,
            comm,
            costs: ExecutionStyle::Otter.costs(),
            opts,
            scopes: vec![HashMap::new()],
            output: String::new(),
            rand_calls: 0,
            peak_local_bytes: 0,
            op_counts: BTreeMap::new(),
            op_ids: HashMap::new(),
            site_of,
            site_comm,
        }
    }

    /// Run the whole program; returns the final script workspace.
    pub fn run(mut self) -> ExecResult<ExecOutcome> {
        otter_rt::alloc::reset();
        // Each rank is an OS thread; give it its kernel budget.
        otter_rt::kernels::configure(self.opts.tile_size, self.opts.threads);
        self.comm.log(
            otter_log::LogLevel::Info,
            "exec.start",
            self.program.main.len() as u64,
            0,
        );
        let main = &self.program.main;
        if let Err(e) = self.exec_block(main) {
            // Comm failures logged their own terminal event inside
            // `Comm`; application errors get theirs here so a rank's
            // flight tail always ends with *why* it stopped.
            if matches!(e, ExecError::App(_)) {
                self.comm
                    .log(otter_log::LogLevel::Error, "exec.app_error", 0, 0);
            }
            return Err(e);
        }
        self.note_memory();
        let peak_local = self.peak_local_bytes;
        // Fold the always-on opcode tallies and allocator high-water
        // marks into this rank's registry (one pass at end of run, not
        // one increment per instruction).
        if let Some(m) = self.comm.metrics() {
            for (op, n) in &self.op_counts {
                m.inc("ops_total", &[("op", op)], *n);
            }
            m.gauge_max(
                "alloc_peak_bytes",
                &[],
                otter_rt::alloc::peak_bytes() as f64,
            );
            m.gauge_max("workspace_peak_bytes", &[], peak_local as f64);
        }
        let workspace = self.scopes.pop().expect("script scope");
        Ok(ExecOutcome {
            workspace,
            output: self.output,
            peak_local_bytes: self.peak_local_bytes,
            peak_temp_bytes: otter_rt::alloc::peak_bytes(),
            op_counts: self.op_counts,
            site_comm: self.site_comm,
        })
    }

    /// Update the local-memory high-water mark from the live scopes.
    fn note_memory(&mut self) {
        let live: usize = self
            .scopes
            .iter()
            .flat_map(|env| env.values())
            .map(|v| match v {
                XVal::M(m) => m.local_els() * std::mem::size_of::<f64>(),
                XVal::S(_) => std::mem::size_of::<f64>(),
            })
            .sum();
        self.peak_local_bytes = self.peak_local_bytes.max(live);
    }

    fn env(&mut self) -> &mut HashMap<String, XVal> {
        self.scopes.last_mut().expect("scope stack never empty")
    }

    fn get(&self, name: &str) -> Result<&XVal> {
        self.scopes
            .last()
            .unwrap()
            .get(name)
            .ok_or_else(|| OtterError::execution(format!("undefined IR variable `{name}`")))
    }

    fn get_mat(&self, name: &str) -> Result<&DistMatrix> {
        self.get(name)?
            .as_matrix()
            .ok_or_else(|| OtterError::execution(format!("IR variable `{name}` is not a matrix")))
    }

    /// Move a matrix out of the innermost scope (for mutate-in-place
    /// handlers that re-insert it when done — no copy of the payload).
    fn take_mat(&mut self, name: &str) -> Result<DistMatrix> {
        match self.env().remove(name) {
            Some(XVal::M(m)) => Ok(m),
            Some(v) => {
                self.env().insert(name.to_string(), v);
                Err(OtterError::execution(format!(
                    "IR variable `{name}` is not a matrix"
                )))
            }
            None => Err(OtterError::execution(format!(
                "undefined IR variable `{name}`"
            ))),
        }
    }

    fn get_scalar(&self, name: &str) -> Result<f64> {
        self.get(name)?
            .as_scalar()
            .ok_or_else(|| OtterError::execution(format!("IR variable `{name}` is not a scalar")))
    }

    // ---- scalar expressions ---------------------------------------------

    fn eval_s(&self, e: &SExpr) -> Result<f64> {
        self.eval_s_own(e, None)
    }

    fn eval_s_own(&self, e: &SExpr, own: Option<f64>) -> Result<f64> {
        Ok(match e {
            SExpr::Const(v) => *v,
            SExpr::Var(n) => self.get_scalar(n)?,
            SExpr::DimOf { var, sel } => {
                let m = self.get_mat(var)?;
                match sel {
                    DimSel::Rows => m.rows() as f64,
                    DimSel::Cols => m.cols() as f64,
                    DimSel::Length => m.rows().max(m.cols()) as f64,
                    DimSel::Numel => m.len() as f64,
                }
            }
            SExpr::OwnElem => {
                own.ok_or_else(|| OtterError::execution("OwnElem outside an owner guard"))?
            }
            SExpr::Neg(x) => -self.eval_s_own(x, own)?,
            SExpr::Not(x) => f64::from(self.eval_s_own(x, own)? == 0.0),
            SExpr::Bin(op, a, b) => op.eval(self.eval_s_own(a, own)?, self.eval_s_own(b, own)?),
            SExpr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_s_own(a, own)?);
                }
                f.eval(&vals)
            }
        })
    }

    /// A 1-based MATLAB index to 0-based usize.
    fn eval_index(&self, e: &SExpr) -> Result<usize> {
        let v = self.eval_s(e)?;
        if v < 1.0 || v.fract() != 0.0 {
            return Err(OtterError::execution(format!(
                "index {v} is not a positive integer"
            )));
        }
        Ok(v as usize - 1)
    }

    // ---- element-wise loops ------------------------------------------------

    /// Dedup operand names (first occurrence wins) and check that every
    /// operand is aligned with the first. Returns the operand list.
    fn ew_operands(&self, expr: &EwExpr, skip: Option<&str>) -> Result<Vec<String>> {
        let mut names = Vec::new();
        expr.mat_operands(&mut names);
        let mut ops: Vec<String> = Vec::new();
        for n in names {
            if Some(n.as_str()) != skip && !ops.contains(&n) {
                ops.push(n);
            }
        }
        Ok(ops)
    }

    fn check_ew_alignment(&self, first: &str, model: &DistMatrix, others: &[String]) -> Result<()> {
        for n in others {
            let m = env_mat(&self.scopes, n)?;
            if !m.aligned_with(model) {
                return Err(OtterError::execution(format!(
                    "element-wise operands `{first}` and `{n}` are not aligned \
                     ({}x{} vs {}x{})",
                    model.rows(),
                    model.cols(),
                    m.rows(),
                    m.cols()
                )));
            }
        }
        Ok(())
    }

    /// Compile an element-wise expression against an operand list:
    /// scalar subtrees fold to constants once (the environment cannot
    /// change mid-loop) and matrix leaves resolve to slice indices, so
    /// the per-element loop does no name lookups or scalar re-evaluation.
    /// `dst_alias` maps one matrix name to [`CEw::Dst`] — the buffer the
    /// loop writes (in-place destination or fused product).
    fn compile_ew(&self, e: &EwExpr, slices: &[String], dst_alias: Option<&str>) -> Result<CEw> {
        Ok(match e {
            EwExpr::Mat(m) => {
                if Some(m.as_str()) == dst_alias {
                    CEw::Dst
                } else {
                    CEw::Slice(
                        slices
                            .iter()
                            .position(|n| n == m)
                            .expect("every matrix operand is in the slice list"),
                    )
                }
            }
            EwExpr::Scalar(s) => CEw::Const(self.eval_s(s)?),
            EwExpr::Neg(x) => CEw::Neg(Box::new(self.compile_ew(x, slices, dst_alias)?)),
            EwExpr::Not(x) => CEw::Not(Box::new(self.compile_ew(x, slices, dst_alias)?)),
            EwExpr::Bin(op, a, b) => CEw::Bin(
                *op,
                Box::new(self.compile_ew(a, slices, dst_alias)?),
                Box::new(self.compile_ew(b, slices, dst_alias)?),
            ),
            EwExpr::Call(f, args) => {
                let mut compiled = Vec::with_capacity(args.len());
                for a in args {
                    compiled.push(self.compile_ew(a, slices, dst_alias)?);
                }
                CEw::Call(*f, compiled)
            }
        })
    }

    fn exec_elemwise(&mut self, dst: &str, expr: &EwExpr) -> Result<()> {
        let ops = self.ew_operands(expr, None)?;
        let first = ops
            .first()
            .cloned()
            .ok_or_else(|| OtterError::execution("element-wise loop without matrix operands"))?;
        // Reuse the destination's buffer when it is already an aligned
        // matrix: no allocation, and reads of the old value (`Dst`
        // leaves) happen before the write of each element.
        let inplace = {
            let model = env_mat(&self.scopes, &first)?;
            self.check_ew_alignment(&first, model, &ops[1..])?;
            matches!(self.scopes.last().unwrap().get(dst),
                     Some(XVal::M(d)) if d.aligned_with(model))
        };
        let len;
        if inplace {
            let slice_names: Vec<String> =
                ops.iter().filter(|n| n.as_str() != dst).cloned().collect();
            let cew = self.compile_ew(expr, &slice_names, Some(dst))?;
            let Some(XVal::M(mut dmat)) = self.scopes.last_mut().unwrap().remove(dst) else {
                unreachable!("checked matrix above")
            };
            {
                let scopes = &self.scopes;
                let slices = collect_slices(scopes, &slice_names)?;
                let buf = dmat.local_mut();
                len = buf.len();
                for k in 0..len {
                    let v = ceval(&cew, &slices, buf, k);
                    buf[k] = v;
                }
            }
            self.env().insert(dst.to_string(), XVal::M(dmat));
        } else {
            let cew = self.compile_ew(expr, &ops, None)?;
            let result = {
                let model = env_mat(&self.scopes, &first)?;
                let slices = collect_slices(&self.scopes, &ops)?;
                len = model.local_els();
                let mut out = vec![0.0; len];
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = ceval(&cew, &slices, &[], k);
                }
                model.with_local(out)
            };
            self.env().insert(dst.to_string(), XVal::M(result));
        }
        self.comm.compute(len as f64 * expr.flop_weight().max(1.0));
        Ok(())
    }

    /// Apply a fused element-wise epilogue in place over the just-computed
    /// product (`Mat(tmp)` leaves read the buffer being overwritten), then
    /// bind it to `dst`. Charges exactly what the eliminated stand-alone
    /// `ElemWise` would have charged.
    fn exec_fused_epilogue(
        &mut self,
        dst: &str,
        tmp: &str,
        mut prod: DistMatrix,
        expr: &EwExpr,
    ) -> Result<()> {
        let ops = self.ew_operands(expr, Some(tmp))?;
        self.check_ew_alignment(tmp, &prod, &ops)?;
        let cew = self.compile_ew(expr, &ops, Some(tmp))?;
        let len = prod.local_els();
        {
            let slices = collect_slices(&self.scopes, &ops)?;
            let buf = prod.local_mut();
            for k in 0..len {
                let v = ceval(&cew, &slices, buf, k);
                buf[k] = v;
            }
        }
        self.comm.compute(len as f64 * expr.flop_weight().max(1.0));
        self.env().insert(dst.to_string(), XVal::M(prod));
        Ok(())
    }

    /// Fused ElemWise → Reduce: evaluate the producer expression on the
    /// fly and fold it per-element — no temporary matrix is materialized.
    /// Charges mirror the eliminated `ElemWise` plus the exact fold and
    /// allreduce of [`otter_rt`]'s reduction kernels.
    fn exec_fused_reduce(&mut self, op: RedOp, expr: &EwExpr) -> ExecResult<f64> {
        let ops = self.ew_operands(expr, None)?;
        let first = ops
            .first()
            .cloned()
            .ok_or_else(|| OtterError::execution("element-wise loop without matrix operands"))?;
        {
            let model = env_mat(&self.scopes, &first)?;
            self.check_ew_alignment(&first, model, &ops[1..])?;
        }
        let cew = self.compile_ew(expr, &ops, None)?;
        let (len, global_len, local) = {
            let model = env_mat(&self.scopes, &first)?;
            let len = model.local_els();
            let slices = collect_slices(&self.scopes, &ops)?;
            let each = |k: usize| ceval(&cew, &slices, &[], k);
            let local = match op {
                RedOp::SumAll | RedOp::MeanAll => (0..len).map(each).sum::<f64>(),
                RedOp::MaxAll => (0..len).map(each).fold(f64::NEG_INFINITY, f64::max),
                RedOp::MinAll => (0..len).map(each).fold(f64::INFINITY, f64::min),
                RedOp::ProdAll => (0..len).map(each).product::<f64>(),
                RedOp::Norm2 => (0..len).map(each).map(|x| x * x).sum::<f64>(),
                RedOp::AnyAll | RedOp::AllAll | RedOp::Trapz => {
                    return Err(OtterError::execution(format!(
                        "reduction `{}` cannot be fused",
                        op.c_name()
                    ))
                    .into())
                }
            };
            (len, model.len(), local)
        };
        // The eliminated element-wise loop's charge...
        self.comm.compute(len as f64 * expr.flop_weight().max(1.0));
        // ...then the reduction kernel's own fold + allreduce charges.
        let v = match op {
            RedOp::SumAll => {
                self.comm.compute(len as f64);
                self.comm.allreduce_scalar(local, ReduceOp::Sum)?
            }
            RedOp::MeanAll => {
                self.comm.compute(len as f64);
                self.comm.allreduce_scalar(local, ReduceOp::Sum)? / global_len as f64
            }
            RedOp::MaxAll => {
                self.comm.compute(len as f64);
                self.comm.allreduce_scalar(local, ReduceOp::Max)?
            }
            RedOp::MinAll => {
                self.comm.compute(len as f64);
                self.comm.allreduce_scalar(local, ReduceOp::Min)?
            }
            RedOp::ProdAll => {
                self.comm.compute(len as f64);
                self.comm.allreduce_scalar(local, ReduceOp::Prod)?
            }
            RedOp::Norm2 => {
                self.comm.compute(2.0 * len as f64 + 8.0);
                self.comm.allreduce_scalar(local, ReduceOp::Sum)?.sqrt()
            }
            RedOp::AnyAll | RedOp::AllAll | RedOp::Trapz => unreachable!("rejected above"),
        };
        Ok(v)
    }

    // ---- instructions ---------------------------------------------------------

    fn exec_block(&mut self, block: &[Instr]) -> ExecResult<Flow> {
        for i in block {
            // Per-site traffic attribution: every communication this
            // rank performs happens inside the leaf instruction's own
            // handler (control flow only *selects* leaves), so the
            // stats delta across one `exec_instr` is exactly this
            // site's contribution.
            let site = self
                .site_of
                .as_ref()
                .and_then(|m| m.get(&(i as *const Instr as usize)).copied());
            let before = site.map(|_| self.comm.stats());
            let flow = if self.comm.trace_enabled() || self.comm.metrics_enabled() {
                // One Statement span per IR instruction; control-flow
                // instructions span their whole body, nesting the
                // inner instructions' spans. Metrics see the same
                // interval as an `op_seconds{op=...}` observation.
                let t0 = self.comm.clock();
                let flow = self.exec_instr(i)?;
                if self.comm.trace_enabled() {
                    self.comm
                        .emit_span(EventKind::Statement { name: i.opcode() }, t0);
                }
                let dt = self.comm.clock() - t0;
                if let Some(m) = self.comm.metrics() {
                    let op = i.opcode();
                    let id = *self
                        .op_ids
                        .entry(op)
                        .or_insert_with(|| m.histogram("op_seconds", &[("op", op)]));
                    m.observe_id(id, dt);
                }
                flow
            } else {
                self.exec_instr(i)?
            };
            if let (Some(id), Some(before)) = (site, before) {
                let after = self.comm.stats();
                let slot = &mut self.site_comm[id as usize];
                slot.messages += after.messages_sent - before.messages_sent;
                slot.bytes += after.bytes_sent - before.bytes_sent;
                slot.execs += 1;
            }
            match flow {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_instr(&mut self, i: &Instr) -> ExecResult<Flow> {
        // Compiled-code dispatch charge.
        self.comm.compute(self.costs.statement_dispatch);
        self.note_memory();
        *self.op_counts.entry(i.opcode()).or_insert(0) += 1;
        match i {
            Instr::AssignScalar { dst, src } => {
                let v = self.eval_s(src)?;
                self.env().insert(dst.clone(), XVal::S(v));
            }
            Instr::InitMatrix { dst, init } => {
                self.comm.compute(self.costs.op_overhead);
                let m = self.exec_init(init)?;
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::CopyMatrix { dst, src } => {
                let m = self.get_mat(src)?.clone();
                self.comm.compute(m.local_els() as f64);
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::LoadFile { dst, path } => {
                self.comm.compute(self.costs.op_overhead);
                let full = match &self.opts.data_dir {
                    Some(d) => d.join(path),
                    None => PathBuf::from(path),
                };
                let m = rtio::load_distributed(self.comm, &full)?;
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::ElemWise { dst, expr } => {
                self.comm.compute(self.costs.op_overhead);
                self.exec_elemwise(dst, expr)?;
            }
            Instr::MatMul { dst, a, b } => {
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let m = env_mat(scopes, a)?.matmul(comm, env_mat(scopes, b)?)?;
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::MatVec { dst, a, x } => {
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let m = env_mat(scopes, a)?.matvec(comm, env_mat(scopes, x)?)?;
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::MatMulEw {
                dst,
                a,
                b,
                tmp,
                expr,
            } => {
                // One runtime-call overhead for the fused pair; the
                // product and the epilogue then charge exactly what
                // their stand-alone forms would.
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let prod = env_mat(scopes, a)?.matmul(comm, env_mat(scopes, b)?)?;
                self.exec_fused_epilogue(dst, tmp, prod, expr)?;
            }
            Instr::MatVecEw {
                dst,
                a,
                x,
                tmp,
                expr,
            } => {
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let prod = env_mat(scopes, a)?.matvec(comm, env_mat(scopes, x)?)?;
                self.exec_fused_epilogue(dst, tmp, prod, expr)?;
            }
            Instr::ReduceEw { dst, op, expr, .. } => {
                self.comm.compute(self.costs.op_overhead);
                let v = self.exec_fused_reduce(*op, expr)?;
                self.env().insert(dst.clone(), XVal::S(v));
            }
            Instr::Outer { dst, u, v } => {
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let m = DistMatrix::outer(comm, env_mat(scopes, u)?, env_mat(scopes, v)?)?;
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::Transpose { dst, a } => {
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let m = env_mat(scopes, a)?.transpose(comm)?;
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::BroadcastElem { dst, m, i, j } => {
                self.comm.compute(self.costs.op_overhead);
                let mi = self.eval_index(i)?;
                let (r, c) = match j {
                    Some(j) => (mi, self.eval_index(j)?),
                    None => linear_to_rc(env_mat(&self.scopes, m)?, mi)?,
                };
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let v = env_mat(scopes, m)?.get_bcast(comm, r, c)?;
                self.env().insert(dst.clone(), XVal::S(v));
            }
            Instr::StoreElem { m, i, j, val } => {
                let mi = self.eval_index(i)?;
                let mat = self.get_mat(m)?;
                let (r, c) = match j {
                    Some(j) => (mi, self.eval_index(j)?),
                    None => linear_to_rc(mat, mi)?,
                };
                // Owner-computes: only the owner evaluates and stores.
                let is_owner = mat.is_owner(r, c);
                if is_owner {
                    let own = mat.get_local(r, c);
                    let v = self.eval_s_own(val, Some(own))?;
                    let name = m.clone();
                    let XVal::M(stored) = self.env().get_mut(&name).unwrap() else {
                        unreachable!("checked matrix above")
                    };
                    stored.set_if_owner(r, c, v);
                }
                self.comm.compute(1.0);
            }
            Instr::Reduce { dst, op, m } => {
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let mat = env_mat(scopes, m)?;
                let v = match op {
                    RedOp::SumAll => mat.sum_all(comm)?,
                    RedOp::MeanAll => mat.mean_all(comm)?,
                    RedOp::MaxAll => mat.max_all(comm)?,
                    RedOp::MinAll => mat.min_all(comm)?,
                    RedOp::ProdAll => mat.prod_all(comm)?,
                    RedOp::AnyAll => mat.any_all(comm)?,
                    RedOp::AllAll => mat.all_all(comm)?,
                    RedOp::Norm2 => mat.norm2(comm)?,
                    RedOp::Trapz => mat.trapz(comm)?,
                };
                self.env().insert(dst.clone(), XVal::S(v));
            }
            Instr::Dot { dst, a, b } => {
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let v = env_mat(scopes, a)?.dot(comm, env_mat(scopes, b)?)?;
                self.env().insert(dst.clone(), XVal::S(v));
            }
            Instr::TrapzXY { dst, x, y } => {
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let v = DistMatrix::trapz_xy(comm, env_mat(scopes, x)?, env_mat(scopes, y)?)?;
                self.env().insert(dst.clone(), XVal::S(v));
            }
            Instr::ColReduce { dst, op, m } => {
                self.comm.compute(self.costs.op_overhead);
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let mat = env_mat(scopes, m)?;
                let r = match op {
                    ColRedOp::Sum => mat.sum(comm)?,
                    ColRedOp::Mean => mat.mean(comm)?,
                    ColRedOp::Prod => mat.prod(comm)?,
                    ColRedOp::Max => mat.max(comm)?,
                    ColRedOp::Min => mat.min(comm)?,
                    ColRedOp::Any => mat.any(comm)?,
                    ColRedOp::All => mat.all(comm)?,
                };
                self.env().insert(dst.clone(), XVal::M(r));
            }
            Instr::Shift { dst, v, k } => {
                self.comm.compute(self.costs.op_overhead);
                let kk = self.eval_s(k)? as i64;
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let m = env_mat(scopes, v)?.circshift(comm, kk)?;
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::ExtractRow { dst, m, i } => {
                self.comm.compute(self.costs.op_overhead);
                let mi = self.eval_index(i)?;
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let r = env_mat(scopes, m)?.extract_row(comm, mi)?;
                self.env().insert(dst.clone(), XVal::M(r));
            }
            Instr::ExtractCol { dst, m, j } => {
                self.comm.compute(self.costs.op_overhead);
                let mj = self.eval_index(j)?;
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let c = env_mat(scopes, m)?.extract_col(comm, mj);
                self.env().insert(dst.clone(), XVal::M(c));
            }
            Instr::AssignRow { m, i, v } => {
                self.comm.compute(self.costs.op_overhead);
                let mi = self.eval_index(i)?;
                // Take the target out of the environment, mutate it
                // without copying, and put it back.
                let mut mat = self.take_mat(m)?;
                if v == m {
                    let vv = mat.clone();
                    mat.assign_row(self.comm, mi, &vv)?;
                } else {
                    let (scopes, comm) = (&self.scopes, &mut *self.comm);
                    mat.assign_row(comm, mi, env_mat(scopes, v)?)?;
                }
                self.env().insert(m.clone(), XVal::M(mat));
            }
            Instr::AssignCol { m, j, v } => {
                self.comm.compute(self.costs.op_overhead);
                let mj = self.eval_index(j)?;
                let mut mat = self.take_mat(m)?;
                if v == m {
                    let vv = mat.clone();
                    mat.assign_col(self.comm, mj, &vv);
                } else {
                    let (scopes, comm) = (&self.scopes, &mut *self.comm);
                    mat.assign_col(comm, mj, env_mat(scopes, v)?);
                }
                self.env().insert(m.clone(), XVal::M(mat));
            }
            Instr::ExtractRange { dst, v, lo, hi } => {
                self.comm.compute(self.costs.op_overhead);
                let l = self.eval_index(lo)?;
                let h = self.eval_s(hi)? as usize; // inclusive 1-based == exclusive 0-based
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let m = env_mat(scopes, v)?.extract_range(comm, l, h)?;
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::ExtractStrided {
                dst,
                v,
                lo,
                step,
                hi,
            } => {
                self.comm.compute(self.costs.op_overhead);
                let l = self.eval_index(lo)?;
                let st = self.eval_s(step)? as i64;
                let h = self.eval_index(hi)?;
                if st == 0 {
                    return Err(OtterError::execution("stride must be nonzero").into());
                }
                let count = if (st > 0 && h >= l) || (st < 0 && h <= l) {
                    ((h as i64 - l as i64) / st) as usize + 1
                } else {
                    0
                };
                let (scopes, comm) = (&self.scopes, &mut *self.comm);
                let m = env_mat(scopes, v)?.extract_strided(comm, l, st, count)?;
                self.env().insert(dst.clone(), XVal::M(m));
            }
            Instr::FillRow { m, i, val } => {
                self.comm.compute(self.costs.op_overhead);
                let mi = self.eval_index(i)?;
                let v = self.eval_s(val)?;
                let mut mat = self.take_mat(m)?;
                mat.fill_row(self.comm, mi, v);
                self.env().insert(m.clone(), XVal::M(mat));
            }
            Instr::FillCol { m, j, val } => {
                self.comm.compute(self.costs.op_overhead);
                let mj = self.eval_index(j)?;
                let v = self.eval_s(val)?;
                let mut mat = self.take_mat(m)?;
                mat.fill_col(self.comm, mj, v);
                self.env().insert(m.clone(), XVal::M(mat));
            }
            Instr::FillRange { m, lo, hi, val } => {
                self.comm.compute(self.costs.op_overhead);
                let l = self.eval_index(lo)?;
                let h = self.eval_s(hi)? as usize;
                let v = self.eval_s(val)?;
                let mut mat = self.take_mat(m)?;
                mat.fill_range(self.comm, l, h, v);
                self.env().insert(m.clone(), XVal::M(mat));
            }
            Instr::AssignRange { m, lo, hi, v } => {
                self.comm.compute(self.costs.op_overhead);
                let l = self.eval_index(lo)?;
                let h = self.eval_s(hi)? as usize;
                let mut mat = self.take_mat(m)?;
                if v == m {
                    let vv = mat.clone();
                    mat.assign_range(self.comm, l, h, &vv)?;
                } else {
                    let (scopes, comm) = (&self.scopes, &mut *self.comm);
                    mat.assign_range(comm, l, h, env_mat(scopes, v)?)?;
                }
                self.env().insert(m.clone(), XVal::M(mat));
            }
            Instr::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval_s(cond)?;
                let body = if c != 0.0 { then_body } else { else_body };
                return self.exec_block(body);
            }
            Instr::While { pre, cond, body } => loop {
                if let f @ (Flow::Break | Flow::Continue) = self.exec_block(pre)? {
                    return Err(OtterError::execution(format!(
                        "control flow {f:?} escaping a while condition"
                    ))
                    .into());
                }
                if self.eval_s(cond)? == 0.0 {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(body)? {
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Normal | Flow::Continue => {}
                }
            },
            Instr::For {
                var,
                start,
                step,
                stop,
                body,
            } => {
                let (s, st, p) = (self.eval_s(start)?, self.eval_s(step)?, self.eval_s(stop)?);
                if st == 0.0 {
                    return Err(OtterError::execution("for-loop step is zero").into());
                }
                let mut x = s;
                while (st > 0.0 && x <= p) || (st < 0.0 && x >= p) {
                    self.env().insert(var.clone(), XVal::S(x));
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Normal | Flow::Continue => {}
                    }
                    x += st;
                }
            }
            Instr::Free { name } => {
                self.env().remove(name);
            }
            Instr::Break => return Ok(Flow::Break),
            Instr::Continue => return Ok(Flow::Continue),
            Instr::Call { fun, args, outs } => {
                self.comm.compute(self.costs.op_overhead);
                let f =
                    self.program.functions.get(fun).ok_or_else(|| {
                        OtterError::execution(format!("unknown IR function `{fun}`"))
                    })?;
                let mut frame: HashMap<String, XVal> = HashMap::new();
                for ((pname, prank), arg) in f.params.iter().zip(args) {
                    let v = match (prank, arg) {
                        (VarRank::Scalar, Arg::Scalar(s)) => XVal::S(self.eval_s(s)?),
                        (VarRank::Matrix, Arg::Matrix(m)) => XVal::M(self.get_mat(m)?.clone()),
                        _ => {
                            return Err(OtterError::execution(format!(
                                "argument rank mismatch calling `{fun}`"
                            ))
                            .into())
                        }
                    };
                    frame.insert(pname.clone(), v);
                }
                self.scopes.push(frame);
                let body_result = self.exec_block(&f.body);
                let frame = self.scopes.pop().expect("call frame");
                body_result?;
                for ((oname, _), dst) in f.outs.iter().zip(outs) {
                    let v = frame.get(oname).cloned().ok_or_else(|| {
                        OtterError::execution(format!("output `{oname}` of `{fun}` never assigned"))
                    })?;
                    self.env().insert(dst.clone(), v);
                }
            }
            Instr::Print { name, target } => {
                self.comm.compute(self.costs.op_overhead);
                match target {
                    PrintTarget::Scalar(s) => {
                        let v = self.eval_s(s)?;
                        if self.comm.rank() == 0 {
                            self.output.push_str(&rtio::print_scalar(name, v));
                        }
                    }
                    PrintTarget::Matrix(m) => {
                        let (scopes, comm) = (&self.scopes, &mut *self.comm);
                        if let Some(text) =
                            rtio::print_distributed(comm, name, env_mat(scopes, m)?)?
                        {
                            self.output.push_str(&text);
                        }
                    }
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_init(&mut self, init: &MatInit) -> Result<DistMatrix> {
        Ok(match init {
            MatInit::Zeros { rows, cols } => {
                let (r, c) = (self.eval_s(rows)? as usize, self.eval_s(cols)? as usize);
                DistMatrix::zeros(self.comm, r, c)
            }
            MatInit::Ones { rows, cols } => {
                let (r, c) = (self.eval_s(rows)? as usize, self.eval_s(cols)? as usize);
                DistMatrix::ones(self.comm, r, c)
            }
            MatInit::Eye { n } => {
                let n = self.eval_s(n)? as usize;
                DistMatrix::eye(self.comm, n)
            }
            MatInit::Rand { rows, cols } => {
                let (r, c) = (self.eval_s(rows)? as usize, self.eval_s(cols)? as usize);
                // Replicated stream: every rank generates the full
                // matrix from the same seed and keeps its block, so
                // the data is identical no matter how many CPUs run.
                self.rand_calls += 1;
                let mut rng =
                    DetRng::seed_from_u64(self.opts.rand_seed.wrapping_add(self.rand_calls));
                let data: Vec<f64> = (0..r * c).map(|_| rng.gen_range(0.0..1.0)).collect();
                let dense = Dense::from_vec(r, c, data);
                self.comm.compute((r * c) as f64 * 4.0);
                DistMatrix::from_replicated(self.comm, &dense)
            }
            MatInit::Range { start, step, stop } => {
                let (s, st, p) = (self.eval_s(start)?, self.eval_s(step)?, self.eval_s(stop)?);
                DistMatrix::range(self.comm, s, st, p)
            }
            MatInit::Literal { rows } => {
                let mut data = Vec::new();
                let (nr, nc) = (rows.len(), rows.first().map_or(0, |r| r.len()));
                for row in rows {
                    for cell in row {
                        data.push(self.eval_s(cell)?);
                    }
                }
                let dense = Dense::from_vec(nr, nc, data);
                DistMatrix::from_replicated(self.comm, &dense)
            }
            MatInit::Linspace { a, b, n } => {
                let (a, b) = (self.eval_s(a)?, self.eval_s(b)?);
                let n = self.eval_s(n)? as usize;
                let dense = if n < 2 {
                    Dense::row_vector(&[b])
                } else {
                    let step = (b - a) / (n - 1) as f64;
                    Dense::row_vector(&(0..n).map(|i| a + step * i as f64).collect::<Vec<_>>())
                };
                DistMatrix::from_replicated(self.comm, &dense)
            }
        })
    }
}

/// Borrow a matrix out of the innermost scope without going through
/// `&self`, so matrix-op handlers can hold operand borrows while
/// reborrowing the `Comm` field mutably — no per-op operand clones.
fn env_mat<'e>(scopes: &'e [HashMap<String, XVal>], name: &str) -> Result<&'e DistMatrix> {
    scopes
        .last()
        .unwrap()
        .get(name)
        .ok_or_else(|| OtterError::execution(format!("undefined IR variable `{name}`")))?
        .as_matrix()
        .ok_or_else(|| OtterError::execution(format!("IR variable `{name}` is not a matrix")))
}

fn collect_slices<'e>(
    scopes: &'e [HashMap<String, XVal>],
    names: &[String],
) -> Result<Vec<&'e [f64]>> {
    names
        .iter()
        .map(|n| env_mat(scopes, n).map(DistMatrix::local))
        .collect()
}

/// One node of a compiled element-wise expression (see
/// [`Executor::compile_ew`]).
enum CEw {
    /// Element `k` of operand slice `i`.
    Slice(usize),
    /// Element `k` of the destination buffer's previous contents.
    Dst,
    Const(f64),
    Neg(Box<CEw>),
    Not(Box<CEw>),
    Bin(EwOp, Box<CEw>, Box<CEw>),
    Call(SFun, Vec<CEw>),
}

fn ceval(e: &CEw, slices: &[&[f64]], dst: &[f64], k: usize) -> f64 {
    match e {
        CEw::Slice(i) => slices[*i][k],
        CEw::Dst => dst[k],
        CEw::Const(v) => *v,
        CEw::Neg(x) => -ceval(x, slices, dst, k),
        CEw::Not(x) => f64::from(ceval(x, slices, dst, k) == 0.0),
        CEw::Bin(op, a, b) => op.eval(ceval(a, slices, dst, k), ceval(b, slices, dst, k)),
        CEw::Call(f, args) => {
            let vals: Vec<f64> = args.iter().map(|a| ceval(a, slices, dst, k)).collect();
            f.eval(&vals)
        }
    }
}

/// Convert a linear (column-major) 0-based index into (row, col).
fn linear_to_rc(m: &DistMatrix, k: usize) -> Result<(usize, usize)> {
    if k >= m.len() {
        return Err(OtterError::execution(format!(
            "linear index {} out of bounds ({} elements)",
            k + 1,
            m.len()
        )));
    }
    if m.is_vector() {
        // Vectors index along their length.
        if m.rows() == 1 {
            Ok((0, k))
        } else {
            Ok((k, 0))
        }
    } else {
        // Column-major like MATLAB.
        Ok((k % m.rows(), k / m.rows()))
    }
}

/// Result of one rank's execution.
pub struct ExecOutcome {
    pub workspace: HashMap<String, XVal>,
    pub output: String,
    /// High-water mark of this rank's live *named* distributed-matrix
    /// bytes (workspace view).
    pub peak_local_bytes: usize,
    /// High-water mark of *all* distributed-matrix allocations on this
    /// rank, temporaries included (run-time allocator view).
    pub peak_temp_bytes: usize,
    /// Executed-instruction counts by opcode.
    pub op_counts: BTreeMap<&'static str, u64>,
    /// Realized communication per leaf site in [`otter_ir::leaf_sites`]
    /// order; empty unless [`ExecOptions::analyze`] was set.
    pub site_comm: Vec<SiteComm>,
}
