//! The compiler driver: the paper's seven passes in order.
//!
//! 1. scan + parse (otter-frontend)
//! 2. identifier resolution, M-file loading (otter-analysis::resolve)
//! 3. SSA + type/rank/shape inference (otter-analysis::{ssa, infer})
//! 4. expression rewriting → IR (otter-codegen::lower)
//! 5. owner-computes guards (inside lowering)
//! 6. peephole optimization (otter-codegen::peephole)
//! 7. C emission (otter-codegen::c_emit)

use crate::error::{OtterError, Result};
use otter_analysis::{infer, resolve, ssa_rename, Inference, InferOptions};
use otter_codegen::peephole::PeepholeStats;
use otter_codegen::{emit_c, insert_frees, lower, peephole};
use otter_frontend::SourceProvider;
use otter_ir::IrProgram;
use std::path::PathBuf;

/// Compilation options.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Directory for sample data files (`load`) — used at compile time
    /// for inference and at run time for the actual read.
    pub data_dir: Option<PathBuf>,
    /// Run the pass-6 peephole optimizer (on by default; the ablation
    /// bench turns it off).
    pub no_peephole: bool,
}

/// A fully compiled program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Executable SPMD IR.
    pub ir: IrProgram,
    /// The inference results (for tooling and tests).
    pub inference: Inference,
    /// Emitted SPMD C translation unit.
    pub c_source: String,
    /// What pass 6 rewrote.
    pub peephole_stats: PeepholeStats,
    /// Data directory carried to execution.
    pub data_dir: Option<PathBuf>,
}

/// Compile a MATLAB script with the full pipeline.
pub fn compile(
    src: &str,
    provider: &dyn SourceProvider,
    opts: &CompileOptions,
) -> Result<Compiled> {
    // Passes 1–2.
    let resolved = resolve(src, provider)?;
    let mut program = resolved.program;

    // Pass 3a: SSA web renaming, script and every function body.
    let info = ssa_rename(&program.script, &[]);
    program.script = info.block;
    for f in &mut program.functions {
        let finfo = ssa_rename(&f.body, &f.params);
        f.body = finfo.block;
    }

    // Pass 3b: inference.
    let inference = infer(&program, InferOptions { data_dir: opts.data_dir.clone() })?;

    // Passes 4–5: lowering.
    let mut ir = lower(&program, &inference)?;

    // Pass 6: peephole.
    let peephole_stats =
        if opts.no_peephole { PeepholeStats::default() } else { peephole(&mut ir) };

    // De-allocation of dead temporaries (paper §4: the run-time
    // library allocates *and de-allocates*). Always runs — it is
    // memory hygiene, not an optimization.
    let _frees = insert_frees(&mut ir);

    // Pass 7: C emission.
    let c_source = emit_c(&ir);

    Ok(Compiled { ir, inference, c_source, peephole_stats, data_dir: opts.data_dir.clone() })
}

/// Convenience: compile with no M-files and defaults.
pub fn compile_str(src: &str) -> Result<Compiled> {
    compile(src, &otter_frontend::EmptyProvider, &CompileOptions::default())
}

impl Compiled {
    /// The IR rendered for debugging.
    pub fn ir_text(&self) -> String {
        otter_ir::display::program_to_string(&self.ir)
    }
}

// Re-exported for bench/ablation callers.
pub use otter_codegen::peephole::PeepholeStats as Pass6Stats;

#[allow(unused_imports)]
use OtterError as _;
