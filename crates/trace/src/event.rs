//! The trace event schema shared by every layer of the stack.

/// What happened during a traced interval.
///
/// `Compute`, `Send` and `Recv` are *primitive* events: together they tile
/// each rank's virtual clock (every clock advance in the simulator is exactly
/// one of them), so analyses that account for time — [`crate::timelines`],
/// [`crate::critical_path`] — consider only these. The remaining kinds are
/// *span* events layered on top for human consumption: they wrap primitives
/// and carry no time of their own.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Local floating-point work charged to the virtual clock.
    Compute,
    /// A point-to-point message leaving this rank. `seq` numbers messages
    /// on the directed edge `(self.rank -> to)` from zero, matching the
    /// receiver's FIFO order.
    Send { to: usize, bytes: u64, seq: u64 },
    /// A point-to-point message arriving on this rank. The interval covers
    /// only the *wait*: `t_end - t_start` is zero when the message had
    /// already arrived in virtual time.
    Recv { from: usize, bytes: u64, seq: u64 },
    /// A collective call (`broadcast`, `reduce`, ...) wrapping its
    /// constituent sends/recvs. `algo` names the schedule (`tree`/`linear`),
    /// `op` the reduction operator when there is one.
    Collective {
        name: &'static str,
        algo: &'static str,
        op: Option<&'static str>,
    },
    /// A barrier call (implemented as a zero-byte collective).
    Barrier,
    /// A named runtime phase: distribution, redistribution, an `ML_*`
    /// library call, ...
    Phase { name: &'static str },
    /// One source-level statement (interpreter/matcom) or one IR
    /// instruction (otter executor).
    Statement { name: &'static str },
}

impl EventKind {
    /// True for the kinds that tile the virtual clock.
    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            EventKind::Compute | EventKind::Send { .. } | EventKind::Recv { .. }
        )
    }

    /// A short stable label, used as the Chrome-trace event name.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Compute => "compute",
            EventKind::Send { .. } => "send",
            EventKind::Recv { .. } => "recv",
            EventKind::Collective { name, .. } => name,
            EventKind::Barrier => "barrier",
            EventKind::Phase { name } => name,
            EventKind::Statement { name } => name,
        }
    }
}

/// One traced interval on one rank, stamped in simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub rank: usize,
    /// Virtual clock when the interval began.
    pub t_start: f64,
    /// Virtual clock when the interval ended (`>= t_start`).
    pub t_end: f64,
    pub kind: EventKind,
}

impl TraceEvent {
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}
