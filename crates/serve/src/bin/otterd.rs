//! `otterd` — the Otter compile-and-run daemon.
//!
//! ```text
//! otterd --socket /tmp/otter.sock --workers 8 --cache 64 \
//!        --metrics-addr 127.0.0.1:9464
//! ```
//!
//! Jobs arrive as `otter-serve/v1` JSON lines on the Unix socket;
//! `GET /metrics` on the TCP address returns Prometheus text. SIGTERM
//! or SIGINT (or a `shutdown` op) drains the accept loop, removes the
//! socket file, and exits 0.

use otter_serve::{ServeConfig, Server};
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by the watcher thread.
static STOP_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    STOP_REQUESTED.store(true, Ordering::SeqCst);
}

/// Minimal signal(2) binding: std already links libc, and the handler
/// only touches an atomic, which is async-signal-safe.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

fn usage() -> &'static str {
    "usage: otterd [--socket PATH] [--workers W] [--cache N] [--metrics-addr HOST:PORT]\n\
     \n\
     Persistent Otter compile-and-run service (otter-serve/v1).\n\
     \n\
     --socket PATH          Unix socket for jobs (default: a per-pid path in TMPDIR)\n\
     --workers W            worker budget shared by concurrent jobs (default: host cores)\n\
     --cache N              artifact cache capacity in entries (default: 64)\n\
     --metrics-addr ADDR    serve Prometheus text on `GET http://ADDR/metrics`"
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return;
    }
    let cfg = match ServeConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("otterd: {e}\n{}", usage());
            std::process::exit(2);
        }
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("otterd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    install_signal_handlers();
    eprintln!("otterd: listening on {}", server.socket().display());
    if let Some(addr) = server.metrics_addr() {
        eprintln!("otterd: metrics on http://{addr}/metrics");
    }

    // The accept loop owns the server; a watcher thread forwards the
    // signal flag to its stop handle.
    let handle = server.handle();
    std::thread::spawn(move || loop {
        if STOP_REQUESTED.load(Ordering::SeqCst) {
            handle.request_stop();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    });

    match server.run() {
        Ok(()) => {
            eprintln!("otterd: shut down cleanly");
        }
        Err(e) => {
            eprintln!("otterd: accept loop failed: {e}");
            std::process::exit(1);
        }
    }
}
