//! The tree-walking interpreter — the repo's stand-in for The
//! MathWorks' MATLAB interpreter (the baseline all of the paper's
//! figures normalize against).
//!
//! Characteristic costs are modeled, not merely incidental: each
//! statement pays a dispatch charge, each vector operation pays a
//! dynamic-dispatch + temporary-allocation charge, and element work is
//! multiplied by the interpreter overhead factor
//! ([`otter_machine::ExecutionStyle::Interpreter`]). The real
//! computation is also performed, so interpreter results serve as the
//! correctness oracle for the compiled SPMD pipeline.

use crate::error::{InterpError, Result};
use crate::meter::CostMeter;
use crate::value::Value;
use otter_det::DetRng;
use otter_frontend::ast::*;
use otter_frontend::Span;
use otter_machine::{ExecutionStyle, OpClass};
use otter_rt::Dense;
use std::collections::HashMap;
use std::path::PathBuf;

/// Why a block stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

/// One lexical scope of variables.
type Env = HashMap<String, Value>;

/// Interpreter state for one program run.
pub struct Interp {
    /// The program being run (script + reachable functions).
    program: Program,
    /// Call stack of scopes; `scopes[0]` is the script workspace.
    scopes: Vec<Env>,
    /// Names declared `global` in the current scope chain, per scope.
    global_decls: Vec<Vec<String>>,
    /// The global workspace.
    globals: Env,
    /// Cost accounting.
    pub meter: CostMeter,
    /// Captured display output (what MATLAB would echo).
    pub output: String,
    /// RNG for the `rand` builtin; seeded for reproducibility.
    pub(crate) rng: DetRng,
    /// Directory `load` resolves data files against.
    pub data_dir: Option<PathBuf>,
    /// Guard against runaway recursion.
    depth: usize,
    /// High-water mark of named workspace bytes (excludes transient
    /// expression temporaries, like MATLAB's own workspace view).
    pub peak_workspace_bytes: usize,
    /// Optional per-statement trace sink and the scale from meter
    /// units to modeled seconds (the machine's per-flop time).
    trace: Option<(std::sync::Arc<dyn otter_trace::TraceSink>, f64)>,
}

const MAX_DEPTH: usize = 256;

/// Stable lowercase statement label for trace events.
fn stmt_kind_name(kind: &StmtKind) -> &'static str {
    match kind {
        StmtKind::Expr(_) => "expr",
        StmtKind::Assign { .. } => "assign",
        StmtKind::MultiAssign { .. } => "multi-assign",
        StmtKind::If { .. } => "if",
        StmtKind::While { .. } => "while",
        StmtKind::For { .. } => "for",
        StmtKind::Break => "break",
        StmtKind::Continue => "continue",
        StmtKind::Return => "return",
        StmtKind::Global(_) => "global",
    }
}

impl Interp {
    /// Interpreter for `program`, metered with interpreter-style costs.
    pub fn new(program: Program) -> Self {
        Self::with_style(program, ExecutionStyle::Interpreter)
    }

    /// Interpreter with explicit cost style (the MATCOM baseline runs
    /// the same evaluator with compiled-code coefficients).
    pub fn with_style(program: Program, style: ExecutionStyle) -> Self {
        Interp {
            program,
            scopes: vec![Env::new()],
            global_decls: vec![Vec::new()],
            globals: Env::new(),
            meter: CostMeter::new(style),
            output: String::new(),
            rng: DetRng::seed_from_u64(0x07732),
            data_dir: None,
            depth: 0,
            peak_workspace_bytes: 0,
            trace: None,
        }
    }

    /// Record one `Statement` trace event per executed statement into
    /// `sink`, timed in modeled seconds: meter units scaled by
    /// `seconds_per_unit` (the target machine's per-flop time). The
    /// interpreter is sequential, so events carry rank 0.
    pub fn set_trace(
        &mut self,
        sink: std::sync::Arc<dyn otter_trace::TraceSink>,
        seconds_per_unit: f64,
    ) {
        if sink.enabled() {
            self.trace = Some((sink, seconds_per_unit));
        }
    }

    /// Run the script to completion; returns the final workspace.
    pub fn run(&mut self) -> Result<()> {
        let script = std::mem::take(&mut self.program.script);
        let flow = self.exec_block(&script)?;
        self.program.script = script;
        debug_assert!(matches!(flow, Flow::Normal | Flow::Return));
        Ok(())
    }

    /// Snapshot of the script-level workspace (scope 0).
    pub fn workspace(&self) -> std::collections::HashMap<String, Value> {
        self.scopes[0].clone()
    }

    /// Look up a variable in the current scope (or globals if
    /// declared).
    pub fn get_var(&self, name: &str) -> Option<&Value> {
        if self.global_decls.last().unwrap().iter().any(|g| g == name) {
            return self.globals.get(name);
        }
        self.scopes.last().unwrap().get(name)
    }

    fn set_var(&mut self, name: &str, v: Value) {
        if self.global_decls.last().unwrap().iter().any(|g| g == name) {
            self.globals.insert(name.to_string(), v);
        } else {
            self.scopes.last_mut().unwrap().insert(name.to_string(), v);
        }
    }

    // ---- statements -----------------------------------------------------

    /// Execute a block, returning how it finished.
    pub fn exec_block(&mut self, block: &Block) -> Result<Flow> {
        for stmt in block {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow> {
        let Some((sink, scale)) = self.trace.clone() else {
            return self.exec_stmt_inner(stmt);
        };
        let before = self.meter.units();
        let flow = self.exec_stmt_inner(stmt)?;
        sink.record(otter_trace::TraceEvent {
            rank: 0,
            t_start: before * scale,
            t_end: self.meter.units() * scale,
            kind: otter_trace::EventKind::Statement {
                name: stmt_kind_name(&stmt.kind),
            },
        });
        Ok(flow)
    }

    fn exec_stmt_inner(&mut self, stmt: &Stmt) -> Result<Flow> {
        self.meter.statement();
        let live: usize = self
            .scopes
            .iter()
            .flat_map(|env| env.values())
            .chain(self.globals.values())
            .map(|v| v.numel() * std::mem::size_of::<f64>())
            .sum();
        self.peak_workspace_bytes = self.peak_workspace_bytes.max(live);
        match &stmt.kind {
            StmtKind::Expr(e) => {
                // Void function calls (`disp(x);`) produce no value and
                // must not touch `ans`.
                if let ExprKind::Call { callee, args } = &e.kind {
                    if self.get_var(callee).is_none() {
                        let mut vals = self.call_multi(callee, args, 1, e.span)?;
                        if !vals.is_empty() {
                            let v = vals.remove(0);
                            if stmt.display {
                                self.display("ans", &v);
                            }
                            self.set_var("ans", v);
                        }
                        return Ok(Flow::Normal);
                    }
                }
                let v = self.eval(e)?;
                if stmt.display {
                    self.display("ans", &v);
                }
                self.set_var("ans", v);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { lhs, rhs } => {
                let v = self.eval(rhs)?;
                self.assign(lhs, v, stmt.display)?;
                Ok(Flow::Normal)
            }
            StmtKind::MultiAssign { lhs, rhs } => {
                let ExprKind::Call { callee, args } = &rhs.kind else {
                    return Err(InterpError::new(
                        "multi-assignment right-hand side must be a function call",
                        rhs.span,
                    ));
                };
                let vals = self.call_multi(callee, args, lhs.len(), rhs.span)?;
                if vals.len() < lhs.len() {
                    return Err(InterpError::new(
                        format!(
                            "function `{callee}` returned {} values, {} requested",
                            vals.len(),
                            lhs.len()
                        ),
                        rhs.span,
                    ));
                }
                for (lv, v) in lhs.iter().zip(vals) {
                    self.assign(lv, v, stmt.display)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::If { arms, else_body } => {
                for (cond, body) in arms {
                    let c = self.eval(cond)?;
                    self.meter.op(OpClass::Add, 1); // condition test
                    if c.is_true() {
                        return self.exec_block(body);
                    }
                }
                if let Some(body) = else_body {
                    return self.exec_block(body);
                }
                Ok(Flow::Normal)
            }
            StmtKind::While { cond, body } => {
                loop {
                    let c = self.eval(cond)?;
                    self.meter.op(OpClass::Add, 1);
                    if !c.is_true() {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { var, iter, body } => {
                let iter_v = self.eval(iter)?;
                let values: Vec<f64> = match &iter_v {
                    Value::Scalar(v) => vec![*v],
                    Value::Matrix(m) if m.is_vector() => m.data().to_vec(),
                    Value::Matrix(_) => {
                        return Err(InterpError::new(
                            "for-loop over matrix columns is not supported; iterate a vector",
                            iter.span,
                        ))
                    }
                    Value::Str(_) => {
                        return Err(InterpError::new("cannot iterate a string", iter.span))
                    }
                };
                for v in values {
                    self.set_var(var, Value::Scalar(v));
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Return => Ok(Flow::Return),
            StmtKind::Global(names) => {
                for n in names {
                    self.global_decls.last_mut().unwrap().push(n.clone());
                    self.globals.entry(n.clone()).or_insert(Value::Scalar(0.0));
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn display(&mut self, name: &str, v: &Value) {
        use std::fmt::Write;
        let _ = writeln!(self.output, "{name} =");
        let _ = writeln!(self.output, "{v}");
    }

    // ---- assignment --------------------------------------------------------

    fn assign(&mut self, lv: &LValue, v: Value, display: bool) -> Result<()> {
        match &lv.indices {
            None => {
                if display {
                    self.display(&lv.name, &v);
                }
                self.set_var(&lv.name, v.normalized());
            }
            Some(indices) => {
                self.indexed_assign(lv, indices, v)?;
                if display {
                    let shown = self.get_var(&lv.name).cloned().unwrap();
                    self.display(&lv.name, &shown);
                }
            }
        }
        Ok(())
    }

    fn indexed_assign(&mut self, lv: &LValue, indices: &[Expr], v: Value) -> Result<()> {
        let existing = self.get_var(&lv.name).cloned();
        let mut target = match existing {
            Some(val) => val
                .to_matrix()
                .ok_or_else(|| InterpError::new("cannot index into a string", lv.span))?,
            None => Dense::zeros(0, 0),
        };
        let (rows, cols) = (target.rows(), target.cols());
        let idx = self.eval_indices(indices, rows, cols, target.len(), lv.span)?;
        self.meter.op(OpClass::Add, v.numel());
        match (&idx[..], indices.len()) {
            ([rowsel], 1) => {
                // Linear indexing / vector indexing.
                let sel = rowsel.clone();
                let vv = value_elements(&v);
                if vv.len() != sel.len() && vv.len() != 1 {
                    return Err(InterpError::new(
                        format!("size mismatch: {} indices, {} values", sel.len(), vv.len()),
                        lv.span,
                    ));
                }
                // Grow a vector if needed.
                let need = sel.iter().copied().max().map(|m| m + 1).unwrap_or(0);
                target = grow_linear(target, need);
                for (n, &k) in sel.iter().enumerate() {
                    let val = if vv.len() == 1 { vv[0] } else { vv[n] };
                    target.set_linear(k, val);
                }
            }
            ([rsel, csel], 2) => {
                let (rsel, csel) = (rsel.clone(), csel.clone());
                let need_r = rsel.iter().copied().max().map(|m| m + 1).unwrap_or(0);
                let need_c = csel.iter().copied().max().map(|m| m + 1).unwrap_or(0);
                target = grow_2d(target, need_r, need_c);
                let vm = v
                    .to_matrix()
                    .ok_or_else(|| InterpError::new("cannot store a string element", lv.span))?;
                let scalar_fill = vm.is_scalar();
                if !scalar_fill && (vm.rows() != rsel.len() || vm.cols() != csel.len()) {
                    return Err(InterpError::new(
                        format!(
                            "size mismatch: target {}x{}, value {}x{}",
                            rsel.len(),
                            csel.len(),
                            vm.rows(),
                            vm.cols()
                        ),
                        lv.span,
                    ));
                }
                for (oi, &i) in rsel.iter().enumerate() {
                    for (oj, &j) in csel.iter().enumerate() {
                        let val = if scalar_fill {
                            vm.get(0, 0)
                        } else {
                            vm.get(oi, oj)
                        };
                        target.set(i, j, val);
                    }
                }
            }
            _ => {
                return Err(InterpError::new(
                    format!("{}-dimensional indexing is not supported", indices.len()),
                    lv.span,
                ))
            }
        }
        self.set_var(&lv.name, Value::Matrix(target).normalized());
        Ok(())
    }

    // ---- expressions ---------------------------------------------------------

    /// Evaluate one expression.
    pub fn eval(&mut self, e: &Expr) -> Result<Value> {
        match &e.kind {
            ExprKind::Number { value, .. } => Ok(Value::Scalar(*value)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Ident(name) => self.eval_ident(name, e.span),
            ExprKind::Range { start, step, stop } => {
                let s = self.scalar_of(start)?;
                let st = match step {
                    Some(x) => self.scalar_of(x)?,
                    None => 1.0,
                };
                let e_ = self.scalar_of(stop)?;
                if st == 0.0 {
                    return Err(InterpError::new("range step must be nonzero", e.span));
                }
                let r = Dense::range(s, st, e_);
                self.meter.op(OpClass::Add, r.len());
                Ok(Value::Matrix(r).normalized())
            }
            ExprKind::Colon => Err(InterpError::new("`:` outside an index", e.span)),
            ExprKind::EndKeyword => Err(InterpError::new("`end` outside an index", e.span)),
            ExprKind::Unary { op, operand } => {
                let v = self.eval(operand)?;
                self.apply_unary(*op, v, e.span)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                self.apply_binary(*op, a, b, e.span)
            }
            ExprKind::Transpose { operand, .. } => {
                // Real data: conjugate and plain transpose coincide.
                let v = self.eval(operand)?;
                match v {
                    Value::Scalar(s) => Ok(Value::Scalar(s)),
                    Value::Matrix(m) => {
                        self.meter.op(OpClass::Add, m.len());
                        Ok(Value::Matrix(m.transpose()))
                    }
                    Value::Str(_) => Err(InterpError::new("cannot transpose a string", e.span)),
                }
            }
            ExprKind::Index { base, args } => {
                let v = self.get_var(base).cloned().ok_or_else(|| {
                    InterpError::new(format!("undefined variable `{base}`"), e.span)
                })?;
                self.index_value(&v, args, e.span)
            }
            ExprKind::Call { callee, args } => {
                // Variables shadow functions, as in MATLAB.
                if let Some(v) = self.get_var(callee).cloned() {
                    return self.index_value(&v, args, e.span);
                }
                let mut vals = self.call_multi(callee, args, 1, e.span)?;
                if vals.is_empty() {
                    return Err(InterpError::new(
                        format!("`{callee}` returned nothing"),
                        e.span,
                    ));
                }
                Ok(vals.remove(0))
            }
            ExprKind::Matrix(rows) => self.eval_matrix_literal(rows, e.span),
        }
    }

    fn eval_ident(&mut self, name: &str, span: Span) -> Result<Value> {
        if let Some(v) = self.get_var(name) {
            return Ok(v.clone());
        }
        // Built-in constants and zero-argument calls.
        match name {
            "pi" => return Ok(Value::Scalar(std::f64::consts::PI)),
            "eps" => return Ok(Value::Scalar(f64::EPSILON)),
            "Inf" | "inf" => return Ok(Value::Scalar(f64::INFINITY)),
            "NaN" | "nan" => return Ok(Value::Scalar(f64::NAN)),
            _ => {}
        }
        let mut vals = self.call_multi(name, &[], 1, span)?;
        if vals.is_empty() {
            return Err(InterpError::new(format!("`{name}` returned nothing"), span));
        }
        Ok(vals.remove(0))
    }

    fn scalar_of(&mut self, e: &Expr) -> Result<f64> {
        let v = self.eval(e)?;
        v.as_scalar().ok_or_else(|| {
            InterpError::new(format!("expected a scalar, got {}", v.type_name()), e.span)
        })
    }

    fn apply_unary(&mut self, op: UnOp, v: Value, span: Span) -> Result<Value> {
        let f: fn(f64) -> f64 = match op {
            UnOp::Neg => |x| -x,
            UnOp::Plus => |x| x,
            UnOp::Not => |x| if x == 0.0 { 1.0 } else { 0.0 },
        };
        match v {
            Value::Scalar(s) => {
                self.meter.op(OpClass::Add, 1);
                Ok(Value::Scalar(f(s)))
            }
            Value::Matrix(m) => {
                self.meter.op(OpClass::Add, m.len());
                Ok(Value::Matrix(m.map(f)))
            }
            Value::Str(_) => Err(InterpError::new("cannot negate a string", span)),
        }
    }

    /// Apply a binary operator with MATLAB's scalar-broadcast rules.
    pub fn apply_binary(&mut self, op: BinOp, a: Value, b: Value, span: Span) -> Result<Value> {
        use BinOp::*;
        // Matrix multiply / divide / power need special handling; all
        // the rest are element-wise with broadcast.
        match op {
            Mul => return self.matrix_mul(a, b, span),
            Div => return self.matrix_div(a, b, span),
            LeftDiv => return self.matrix_leftdiv(a, b, span),
            Pow => return self.matrix_pow(a, b, span),
            _ => {}
        }
        let class = op_class(op);
        let f = op_fn(op);
        match (a, b) {
            (Value::Scalar(x), Value::Scalar(y)) => {
                self.meter.op(class, 1);
                Ok(Value::Scalar(f(x, y)))
            }
            (Value::Scalar(x), Value::Matrix(m)) => {
                self.meter.op(class, m.len());
                Ok(Value::Matrix(m.map(|y| f(x, y))))
            }
            (Value::Matrix(m), Value::Scalar(y)) => {
                self.meter.op(class, m.len());
                Ok(Value::Matrix(m.map(|x| f(x, y))))
            }
            (Value::Matrix(ma), Value::Matrix(mb)) => {
                if ma.rows() != mb.rows() || ma.cols() != mb.cols() {
                    return Err(InterpError::new(
                        format!(
                            "shape mismatch: {}x{} {} {}x{}",
                            ma.rows(),
                            ma.cols(),
                            op.symbol(),
                            mb.rows(),
                            mb.cols()
                        ),
                        span,
                    ));
                }
                self.meter.op(class, ma.len());
                Ok(Value::Matrix(ma.zip(&mb, f)))
            }
            (a, b) => Err(InterpError::new(
                format!(
                    "cannot apply `{}` to {} and {}",
                    op.symbol(),
                    a.type_name(),
                    b.type_name()
                ),
                span,
            )),
        }
    }

    fn matrix_mul(&mut self, a: Value, b: Value, span: Span) -> Result<Value> {
        match (a, b) {
            (Value::Scalar(x), Value::Scalar(y)) => {
                self.meter.op(OpClass::Mul, 1);
                Ok(Value::Scalar(x * y))
            }
            (Value::Scalar(x), Value::Matrix(m)) | (Value::Matrix(m), Value::Scalar(x)) => {
                self.meter.op(OpClass::Mul, m.len());
                Ok(Value::Matrix(m.map(|v| v * x)))
            }
            (Value::Matrix(ma), Value::Matrix(mb)) => {
                if ma.cols() != mb.rows() {
                    return Err(InterpError::new(
                        format!(
                            "inner dimensions disagree: {}x{} * {}x{}",
                            ma.rows(),
                            ma.cols(),
                            mb.rows(),
                            mb.cols()
                        ),
                        span,
                    ));
                }
                // O(n²) products (a vector operand) stream memory
                // once; true matmuls are the O(n³) cache-hostile case.
                let units = 2.0 * ma.rows() as f64 * ma.cols() as f64 * mb.cols() as f64;
                if ma.is_vector() || mb.is_vector() {
                    self.meter.raw_matvec(units);
                } else {
                    self.meter.raw(units);
                }
                Ok(Value::Matrix(ma.matmul(&mb)).normalized())
            }
            (a, b) => Err(InterpError::new(
                format!("cannot multiply {} by {}", a.type_name(), b.type_name()),
                span,
            )),
        }
    }

    fn matrix_div(&mut self, a: Value, b: Value, span: Span) -> Result<Value> {
        match (&a, &b) {
            (_, Value::Scalar(y)) => {
                let class = OpClass::Div;
                match a {
                    Value::Scalar(x) => {
                        self.meter.op(class, 1);
                        Ok(Value::Scalar(x / y))
                    }
                    Value::Matrix(m) => {
                        self.meter.op(class, m.len());
                        let y = *y;
                        Ok(Value::Matrix(m.map(|x| x / y)))
                    }
                    Value::Str(_) => Err(InterpError::new("cannot divide a string", span)),
                }
            }
            _ => Err(InterpError::new(
                "matrix right-division `/` is only supported with a scalar divisor",
                span,
            )),
        }
    }

    fn matrix_leftdiv(&mut self, a: Value, b: Value, span: Span) -> Result<Value> {
        match (a, b) {
            (Value::Scalar(x), Value::Scalar(y)) => {
                self.meter.op(OpClass::Div, 1);
                Ok(Value::Scalar(y / x))
            }
            (Value::Scalar(x), Value::Matrix(m)) => {
                self.meter.op(OpClass::Div, m.len());
                Ok(Value::Matrix(m.map(|v| v / x)))
            }
            (Value::Matrix(a), Value::Matrix(b)) => {
                // Dense Gaussian elimination with partial pivoting:
                // x = a \ b.
                if a.rows() != a.cols() {
                    return Err(InterpError::new("`\\` needs a square matrix", span));
                }
                if a.rows() != b.rows() {
                    return Err(InterpError::new("`\\` dimension mismatch", span));
                }
                let n = a.rows() as f64;
                self.meter
                    .raw(2.0 / 3.0 * n * n * n + 2.0 * n * n * b.cols() as f64);
                solve_dense(&a, &b)
                    .map(|x| Value::Matrix(x).normalized())
                    .map_err(|m| InterpError::new(m, span))
            }
            (a, b) => Err(InterpError::new(
                format!("cannot solve {} \\ {}", a.type_name(), b.type_name()),
                span,
            )),
        }
    }

    fn matrix_pow(&mut self, a: Value, b: Value, span: Span) -> Result<Value> {
        match (a, b) {
            (Value::Scalar(x), Value::Scalar(y)) => {
                self.meter.op(OpClass::Transcendental, 1);
                Ok(Value::Scalar(x.powf(y)))
            }
            (Value::Matrix(m), Value::Scalar(y)) => {
                if m.rows() != m.cols() {
                    return Err(InterpError::new("matrix power needs a square matrix", span));
                }
                if y.fract() != 0.0 || y < 0.0 {
                    return Err(InterpError::new(
                        "matrix power supports nonnegative integer exponents only",
                        span,
                    ));
                }
                let mut acc = Dense::eye(m.rows());
                let k = y as u64;
                self.meter.raw(2.0 * (m.rows() as f64).powi(3) * k as f64);
                for _ in 0..k {
                    acc = acc.matmul(&m);
                }
                Ok(Value::Matrix(acc))
            }
            (a, b) => Err(InterpError::new(
                format!("cannot raise {} to {}", a.type_name(), b.type_name()),
                span,
            )),
        }
    }

    // ---- indexing ------------------------------------------------------------

    /// Resolve index argument expressions to 0-based selections.
    /// `indices.len()` decides linear (1) vs 2-D (2) indexing.
    fn eval_indices(
        &mut self,
        indices: &[Expr],
        rows: usize,
        cols: usize,
        numel: usize,
        span: Span,
    ) -> Result<Vec<Vec<usize>>> {
        let mut out = Vec::with_capacity(indices.len());
        for (pos, arg) in indices.iter().enumerate() {
            let extent = if indices.len() == 1 {
                numel
            } else if pos == 0 {
                rows
            } else {
                cols
            };
            out.push(self.eval_one_index(arg, extent, span)?);
        }
        Ok(out)
    }

    fn eval_one_index(&mut self, arg: &Expr, extent: usize, span: Span) -> Result<Vec<usize>> {
        match &arg.kind {
            ExprKind::Colon => Ok((0..extent).collect()),
            _ => {
                let v = self.eval_with_end(arg, extent)?;
                let raw: Vec<f64> = value_elements(&v);
                let mut out = Vec::with_capacity(raw.len());
                for x in raw {
                    if x < 1.0 || x.fract() != 0.0 {
                        return Err(InterpError::new(
                            format!("index {x} is not a positive integer"),
                            span,
                        ));
                    }
                    out.push(x as usize - 1);
                }
                Ok(out)
            }
        }
    }

    /// Evaluate an index expression with `end` bound to `extent`.
    fn eval_with_end(&mut self, e: &Expr, extent: usize) -> Result<Value> {
        // Substitute `end` nodes by the extent, then evaluate. Cheap
        // clone: index expressions are tiny.
        let replaced = substitute_end(e, extent as f64);
        self.eval(&replaced)
    }

    fn index_value(&mut self, v: &Value, args: &[Expr], span: Span) -> Result<Value> {
        let m = v
            .to_matrix()
            .ok_or_else(|| InterpError::new("cannot index into a string", span))?;
        let idx = self.eval_indices(args, m.rows(), m.cols(), m.len(), span)?;
        self.meter
            .op(OpClass::Add, idx.iter().map(|s| s.len().max(1)).product());
        match (&idx[..], args.len()) {
            ([sel], 1) => {
                for &k in sel {
                    if k >= m.len() {
                        return Err(InterpError::new(
                            format!("index {} out of bounds ({} elements)", k + 1, m.len()),
                            span,
                        ));
                    }
                }
                let vals: Vec<f64> = sel.iter().map(|&k| m.get_linear(k)).collect();
                if vals.len() == 1 {
                    Ok(Value::Scalar(vals[0]))
                } else if m.rows() > 1 && m.cols() == 1 {
                    Ok(Value::Matrix(Dense::col_vector(&vals)))
                } else {
                    Ok(Value::Matrix(Dense::row_vector(&vals)))
                }
            }
            ([rsel, csel], 2) => {
                for &i in rsel {
                    if i >= m.rows() {
                        return Err(InterpError::new(
                            format!("row index {} out of bounds ({} rows)", i + 1, m.rows()),
                            span,
                        ));
                    }
                }
                for &j in csel {
                    if j >= m.cols() {
                        return Err(InterpError::new(
                            format!(
                                "column index {} out of bounds ({} columns)",
                                j + 1,
                                m.cols()
                            ),
                            span,
                        ));
                    }
                }
                Ok(Value::Matrix(m.submatrix(rsel, csel)).normalized())
            }
            _ => Err(InterpError::new(
                format!("{}-dimensional indexing is not supported", args.len()),
                span,
            )),
        }
    }

    // ---- calls ----------------------------------------------------------------

    /// Call a function (builtin or user M-file) expecting up to
    /// `nout` results.
    pub fn call_multi(
        &mut self,
        name: &str,
        args: &[Expr],
        nout: usize,
        span: Span,
    ) -> Result<Vec<Value>> {
        // Argument values are evaluated in the caller's scope.
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(a)?);
        }
        if let Some(result) = self.call_builtin(name, &argv, nout, span)? {
            return Ok(result);
        }
        let Some(func) = self.program.function(name).cloned() else {
            return Err(InterpError::new(
                format!("undefined function `{name}`"),
                span,
            ));
        };
        if argv.len() > func.params.len() {
            return Err(InterpError::new(
                format!(
                    "`{name}` takes {} arguments, {} given",
                    func.params.len(),
                    argv.len()
                ),
                span,
            ));
        }
        if self.depth >= MAX_DEPTH {
            return Err(InterpError::new("recursion limit exceeded", span));
        }
        self.depth += 1;
        let mut env = Env::new();
        for (p, v) in func.params.iter().zip(argv) {
            env.insert(p.clone(), v);
        }
        self.scopes.push(env);
        self.global_decls.push(Vec::new());
        let flow = self.exec_block(&func.body);
        let env = self.scopes.pop().unwrap();
        self.global_decls.pop();
        self.depth -= 1;
        flow?;
        let mut out = Vec::new();
        for o in func.outs.iter().take(nout.max(1)) {
            let v = env.get(o).cloned().ok_or_else(|| {
                InterpError::new(format!("output `{o}` of `{name}` was never assigned"), span)
            })?;
            out.push(v);
        }
        Ok(out)
    }

    fn eval_matrix_literal(&mut self, rows: &[Vec<Expr>], span: Span) -> Result<Value> {
        if rows.is_empty() {
            return Ok(Value::Matrix(Dense::from_vec(0, 0, vec![])));
        }
        let mut row_mats: Vec<Dense> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut acc: Option<Dense> = None;
            for cell in row {
                let v = self.eval(cell)?;
                let m = v
                    .to_matrix()
                    .ok_or_else(|| InterpError::new("strings in matrix literals", span))?;
                acc = Some(match acc {
                    None => m,
                    Some(a) => {
                        if a.rows() != m.rows() {
                            return Err(InterpError::new(
                                "matrix literal rows have inconsistent heights",
                                span,
                            ));
                        }
                        a.hcat(&m)
                    }
                });
            }
            row_mats.push(acc.unwrap());
        }
        let mut acc = row_mats.remove(0);
        for m in row_mats {
            if acc.cols() != m.cols() {
                return Err(InterpError::new(
                    "matrix literal rows have inconsistent widths",
                    span,
                ));
            }
            acc = acc.vcat(&m);
        }
        self.meter.op(OpClass::Add, acc.len());
        Ok(Value::Matrix(acc).normalized())
    }
}

// ---- helpers ------------------------------------------------------------------

/// Elements of a value as a flat vector (column-major for matrices).
fn value_elements(v: &Value) -> Vec<f64> {
    match v {
        Value::Scalar(s) => vec![*s],
        Value::Matrix(m) => (0..m.len()).map(|k| m.get_linear(k)).collect(),
        Value::Str(_) => vec![],
    }
}

/// Replace `end` nodes with a literal extent.
fn substitute_end(e: &Expr, extent: f64) -> Expr {
    let kind = match &e.kind {
        ExprKind::EndKeyword => ExprKind::Number {
            value: extent,
            is_int: true,
        },
        ExprKind::Unary { op, operand } => ExprKind::Unary {
            op: *op,
            operand: Box::new(substitute_end(operand, extent)),
        },
        ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
            op: *op,
            lhs: Box::new(substitute_end(lhs, extent)),
            rhs: Box::new(substitute_end(rhs, extent)),
        },
        ExprKind::Range { start, step, stop } => ExprKind::Range {
            start: Box::new(substitute_end(start, extent)),
            step: step.as_ref().map(|s| Box::new(substitute_end(s, extent))),
            stop: Box::new(substitute_end(stop, extent)),
        },
        other => other.clone(),
    };
    Expr::new(kind, e.span)
}

/// Grow a matrix treated as a vector to at least `need` elements.
fn grow_linear(m: Dense, need: usize) -> Dense {
    if need <= m.len() && !m.is_empty() {
        return m;
    }
    if m.is_empty() {
        return Dense::row_vector(&vec![0.0; need]);
    }
    if m.rows() == 1 {
        let mut d = m.into_data();
        d.resize(need.max(d.len()), 0.0);
        let n = d.len();
        Dense::from_vec(1, n, d)
    } else if m.cols() == 1 {
        let mut d = m.into_data();
        d.resize(need.max(d.len()), 0.0);
        let n = d.len();
        Dense::from_vec(n, 1, d)
    } else {
        // Linear store into a full matrix must stay in bounds.
        assert!(need <= m.len(), "cannot grow a matrix by linear indexing");
        m
    }
}

/// Grow a matrix to at least `need_r × need_c`.
fn grow_2d(m: Dense, need_r: usize, need_c: usize) -> Dense {
    let (r, c) = (m.rows().max(need_r), m.cols().max(need_c));
    if r == m.rows() && c == m.cols() {
        return m;
    }
    let mut out = Dense::zeros(r, c);
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            out.set(i, j, m.get(i, j));
        }
    }
    out
}

/// Dense `a \ b` by Gaussian elimination with partial pivoting.
fn solve_dense(a: &Dense, b: &Dense) -> std::result::Result<Dense, String> {
    let n = a.rows();
    let mut aug = a.clone();
    let mut x = b.clone();
    for col in 0..n {
        // Pivot.
        let (piv, maxv) =
            (col..n)
                .map(|i| (i, aug.get(i, col).abs()))
                .fold(
                    (col, -1.0),
                    |best, cur| if cur.1 > best.1 { cur } else { best },
                );
        if maxv < 1e-300 {
            return Err("matrix is singular to working precision".into());
        }
        if piv != col {
            for j in 0..n {
                let t = aug.get(col, j);
                aug.set(col, j, aug.get(piv, j));
                aug.set(piv, j, t);
            }
            for j in 0..x.cols() {
                let t = x.get(col, j);
                x.set(col, j, x.get(piv, j));
                x.set(piv, j, t);
            }
        }
        let d = aug.get(col, col);
        for i in col + 1..n {
            let f = aug.get(i, col) / d;
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                let v = aug.get(i, j) - f * aug.get(col, j);
                aug.set(i, j, v);
            }
            for j in 0..x.cols() {
                let v = x.get(i, j) - f * x.get(col, j);
                x.set(i, j, v);
            }
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let d = aug.get(col, col);
        for j in 0..x.cols() {
            let mut s = x.get(col, j);
            for k in col + 1..n {
                s -= aug.get(col, k) * x.get(k, j);
            }
            x.set(col, j, s / d);
        }
    }
    Ok(x)
}

/// Operator → cost class.
fn op_class(op: BinOp) -> OpClass {
    match op {
        BinOp::ElemDiv | BinOp::ElemLeftDiv => OpClass::Div,
        BinOp::ElemPow => OpClass::Transcendental,
        BinOp::ElemMul => OpClass::Mul,
        _ => OpClass::Add,
    }
}

/// Operator → scalar function (element-wise semantics).
fn op_fn(op: BinOp) -> fn(f64, f64) -> f64 {
    match op {
        BinOp::Add => |a, b| a + b,
        BinOp::Sub => |a, b| a - b,
        BinOp::ElemMul => |a, b| a * b,
        BinOp::ElemDiv => |a, b| a / b,
        BinOp::ElemLeftDiv => |a, b| b / a,
        BinOp::ElemPow => |a, b| a.powf(b),
        BinOp::Eq => |a, b| f64::from(a == b),
        BinOp::Ne => |a, b| f64::from(a != b),
        BinOp::Lt => |a, b| f64::from(a < b),
        BinOp::Le => |a, b| f64::from(a <= b),
        BinOp::Gt => |a, b| f64::from(a > b),
        BinOp::Ge => |a, b| f64::from(a >= b),
        BinOp::And => |a, b| f64::from(a != 0.0 && b != 0.0),
        BinOp::Or => |a, b| f64::from(a != 0.0 || b != 0.0),
        BinOp::Mul | BinOp::Div | BinOp::LeftDiv | BinOp::Pow => {
            unreachable!("matrix operators handled separately")
        }
    }
}
