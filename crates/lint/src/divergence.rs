//! Collective-divergence detection: a rank-dependence taint analysis.
//!
//! The paper's SPMD model (§3) assumes every rank executes the same
//! control flow, so a collective (`ML_reduce`, `ML_broadcast`,
//! `ML_matrix_multiply`, …) is entered by *all* ranks or none. A
//! communication call reachable only under a rank-divergent condition
//! breaks that: ranks whose condition is false skip the call, and the
//! ranks inside it block forever (a collective deadlock) or leave
//! their point-to-point sends/receives unpaired.
//!
//! Taint starts at values the analysis cannot prove replicated —
//! variables read before any definition in their scope (an external,
//! potentially per-rank input; compiled programs have none after
//! resolution, but hand-built IR and future rank intrinsics do) — and
//! flows forward through every instruction. Completed collectives
//! *synchronize*: their replicated result is uniform again even when
//! the contributed data differed per rank.

use crate::dataflow::{run_block, Analysis, Env, FlowCtx, Lattice};
use crate::Finding;
use otter_ir::*;
use std::collections::BTreeSet;

/// Rank-dependence of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Taint {
    /// Provably identical on every rank.
    Uniform,
    /// May differ between ranks.
    Divergent,
}

impl Lattice for Taint {
    fn bottom() -> Self {
        Taint::Uniform
    }

    fn join(&self, other: &Self) -> Self {
        if *self == Taint::Divergent || *other == Taint::Divergent {
            Taint::Divergent
        } else {
            Taint::Uniform
        }
    }
}

/// Variables read before any definition reaches them, walking the
/// block in execution order. `predefined` names (function parameters)
/// are considered defined at entry.
pub fn read_before_def(body: &[Instr], predefined: &[String]) -> BTreeSet<String> {
    let mut defined: BTreeSet<String> = predefined.iter().cloned().collect();
    let mut seeds = BTreeSet::new();
    scan(body, &mut defined, &mut seeds);
    seeds
}

fn scan(body: &[Instr], defined: &mut BTreeSet<String>, seeds: &mut BTreeSet<String>) {
    let check_expr = |e: &SExpr, defined: &BTreeSet<String>, seeds: &mut BTreeSet<String>| {
        let mut vars = Vec::new();
        sexpr_reads(e, &mut vars);
        for v in vars {
            if !defined.contains(&v) {
                seeds.insert(v);
            }
        }
    };
    for instr in body {
        match instr {
            Instr::If {
                cond,
                then_body,
                else_body,
            } => {
                check_expr(cond, defined, seeds);
                let mut then_defs = defined.clone();
                scan(then_body, &mut then_defs, seeds);
                let mut else_defs = defined.clone();
                scan(else_body, &mut else_defs, seeds);
                // Only names defined on *both* paths are definitely
                // defined afterwards.
                defined.extend(then_defs.intersection(&else_defs).cloned());
            }
            Instr::While { pre, cond, body } => {
                scan(pre, defined, seeds);
                check_expr(cond, defined, seeds);
                scan(body, defined, seeds);
            }
            Instr::For {
                var,
                start,
                step,
                stop,
                body,
            } => {
                check_expr(start, defined, seeds);
                check_expr(step, defined, seeds);
                check_expr(stop, defined, seeds);
                defined.insert(var.clone());
                scan(body, defined, seeds);
            }
            _ => {
                let mut reads = Vec::new();
                instr.reads(&mut reads);
                for r in reads {
                    if !defined.contains(&r) {
                        seeds.insert(r);
                    }
                }
                let mut defs = Vec::new();
                instr.defs(&mut defs);
                defined.extend(defs);
            }
        }
    }
}

/// The taint analysis plus the divergent-communication lint.
pub struct DivergenceAnalysis {
    pub findings: Vec<Finding>,
    /// Whether any communication site was reached under divergent
    /// control flow (`false` ⇒ the scope is divergence-free).
    pub divergent_comm: bool,
}

impl DivergenceAnalysis {
    pub fn new() -> Self {
        DivergenceAnalysis {
            findings: Vec::new(),
            divergent_comm: false,
        }
    }
}

impl Default for DivergenceAnalysis {
    fn default() -> Self {
        DivergenceAnalysis::new()
    }
}

fn expr_taint(e: &SExpr, env: &Env<Taint>) -> Taint {
    let mut vars = Vec::new();
    sexpr_reads(e, &mut vars);
    vars.iter()
        .fold(Taint::Uniform, |acc, v| acc.join(&env.get(v)))
}

impl Analysis for DivergenceAnalysis {
    type Fact = Taint;

    fn transfer(&mut self, instr: &Instr, env: &mut Env<Taint>, ctx: &FlowCtx) {
        match instr {
            // Headers: the runner drives the bodies; nothing is
            // defined by `if`/`while` themselves.
            Instr::If { .. } | Instr::While { .. } => return,
            Instr::For {
                var,
                start,
                step,
                stop,
                ..
            } => {
                let mut t = [start, step, stop]
                    .into_iter()
                    .fold(Taint::Uniform, |acc, e| acc.join(&expr_taint(e, env)));
                if ctx.divergent() {
                    t = Taint::Divergent;
                }
                env.set(var.clone(), t);
                return;
            }
            _ => {}
        }

        let profile = instr.comm_profile();
        if ctx.divergent() && profile.communicates() {
            self.divergent_comm = true;
            let anchor = instr
                .dst()
                .map(str::to_string)
                .or_else(|| {
                    let mut defs = Vec::new();
                    instr.defs(&mut defs);
                    defs.into_iter().next()
                })
                .unwrap_or_else(|| instr.opcode().to_string());
            let message = if profile.collective {
                format!(
                    "collective divergence: `{}` (`{}`) executes under rank-divergent \
                     control flow; ranks that skip the branch never enter the collective \
                     and the others deadlock",
                    anchor,
                    instr.opcode(),
                )
            } else {
                format!(
                    "send/recv mismatch: point-to-point `{}` (`{}`) executes under \
                     rank-divergent control flow; its sends and receives cannot pair \
                     across ranks",
                    anchor,
                    instr.opcode(),
                )
            };
            self.findings.push(Finding {
                anchor: anchor.clone(),
                message,
            });
        }

        let mut reads = Vec::new();
        instr.reads(&mut reads);
        let read_taint = reads
            .iter()
            .fold(Taint::Uniform, |acc, r| acc.join(&env.get(r)));
        let base = if ctx.divergent() {
            // A def under divergent control flow happens on some ranks
            // only — the merged value differs per rank.
            Taint::Divergent
        } else if profile.collective {
            // A completed collective's replicated result is identical
            // everywhere, whatever each rank contributed.
            Taint::Uniform
        } else {
            read_taint
        };
        let dst = instr.dst().map(str::to_string);
        if let Some(d) = &dst {
            env.set(d.clone(), base);
        }
        let mut defs = Vec::new();
        instr.defs(&mut defs);
        for d in defs {
            if dst.as_deref() != Some(d.as_str()) {
                // In-place updates merge with the existing contents.
                let joined = env.get(&d).join(&base);
                env.set(d, joined);
            }
        }
    }

    fn cond_divergent(&self, cond: &SExpr, env: &Env<Taint>) -> bool {
        expr_taint(cond, env) == Taint::Divergent
    }
}

/// Static communication-site census of one scope (nested bodies
/// included) — the denominator for send/recv matching.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommSites {
    pub point_to_point: usize,
    pub collective: usize,
}

pub fn count_sites(body: &[Instr]) -> CommSites {
    let mut sites = CommSites::default();
    walk_sites(body, &mut sites);
    sites
}

fn walk_sites(body: &[Instr], sites: &mut CommSites) {
    for instr in body {
        let p = instr.comm_profile();
        if p.point_to_point {
            sites.point_to_point += 1;
        }
        if p.collective {
            sites.collective += 1;
        }
        match instr {
            Instr::If {
                then_body,
                else_body,
                ..
            } => {
                walk_sites(then_body, sites);
                walk_sites(else_body, sites);
            }
            Instr::While { pre, body, .. } => {
                walk_sites(pre, sites);
                walk_sites(body, sites);
            }
            Instr::For { body, .. } => walk_sites(body, sites),
            _ => {}
        }
    }
}

/// Run the divergence lint over one scope. Returns the findings plus
/// whether the scope is provably divergence-free.
pub fn lint_scope(body: &[Instr], predefined: &[String]) -> (Vec<Finding>, bool) {
    let seeds = read_before_def(body, predefined);
    let mut env = Env::default();
    for s in &seeds {
        env.set(s.clone(), Taint::Divergent);
    }
    let mut a = DivergenceAnalysis::new();
    run_block(&mut a, body, &mut env, &mut FlowCtx::default());
    let free = !a.divergent_comm;
    (a.findings, free)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduce(dst: &str, m: &str) -> Instr {
        Instr::Reduce {
            dst: dst.into(),
            op: RedOp::SumAll,
            m: m.into(),
        }
    }

    #[test]
    fn uniform_program_is_divergence_free() {
        let body = vec![
            Instr::InitMatrix {
                dst: "a".into(),
                init: MatInit::Rand {
                    rows: SExpr::c(4.0),
                    cols: SExpr::c(4.0),
                },
            },
            Instr::If {
                cond: SExpr::bin(SBinOp::Gt, SExpr::var("n"), SExpr::c(2.0)),
                then_body: vec![reduce("s", "a")],
                else_body: vec![],
            },
        ];
        // `n` is read before def → divergent seed... so make it defined:
        let body = [
            vec![Instr::AssignScalar {
                dst: "n".into(),
                src: SExpr::c(4.0),
            }],
            body,
        ]
        .concat();
        let (findings, free) = lint_scope(&body, &[]);
        assert!(free, "{findings:?}");
        assert!(findings.is_empty());
    }

    #[test]
    fn collective_under_divergent_branch_flagged() {
        // `r` is read before any def: a stand-in for a per-rank value.
        let body = vec![
            Instr::InitMatrix {
                dst: "a".into(),
                init: MatInit::Rand {
                    rows: SExpr::c(4.0),
                    cols: SExpr::c(4.0),
                },
            },
            Instr::If {
                cond: SExpr::bin(SBinOp::Gt, SExpr::var("r"), SExpr::c(0.0)),
                then_body: vec![reduce("s", "a")],
                else_body: vec![],
            },
        ];
        let (findings, free) = lint_scope(&body, &[]);
        assert!(!free);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("collective divergence"));
        assert!(findings[0].message.contains("`s`"));
    }

    #[test]
    fn point_to_point_under_divergence_reports_mismatch() {
        let body = vec![
            Instr::InitMatrix {
                dst: "a".into(),
                init: MatInit::Rand {
                    rows: SExpr::c(4.0),
                    cols: SExpr::c(4.0),
                },
            },
            Instr::While {
                pre: vec![],
                cond: SExpr::bin(SBinOp::Gt, SExpr::var("r"), SExpr::c(0.0)),
                body: vec![Instr::Transpose {
                    dst: "b".into(),
                    a: "a".into(),
                }],
            },
        ];
        let (findings, free) = lint_scope(&body, &[]);
        assert!(!free);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("send/recv mismatch")),
            "{findings:?}"
        );
    }

    #[test]
    fn taint_propagates_through_defs_and_collectives_synchronize() {
        // x <- r (divergent); s <- reduce(a) (uniform result);
        // y <- x + 1 (divergent).
        let body = vec![
            Instr::InitMatrix {
                dst: "a".into(),
                init: MatInit::Rand {
                    rows: SExpr::c(4.0),
                    cols: SExpr::c(4.0),
                },
            },
            Instr::AssignScalar {
                dst: "x".into(),
                src: SExpr::var("r"),
            },
            reduce("s", "a"),
            Instr::AssignScalar {
                dst: "y".into(),
                src: SExpr::bin(SBinOp::Add, SExpr::var("x"), SExpr::c(1.0)),
            },
        ];
        let seeds = read_before_def(&body, &[]);
        assert!(seeds.contains("r"));
        let mut env = Env::default();
        for s in &seeds {
            env.set(s.clone(), Taint::Divergent);
        }
        let mut a = DivergenceAnalysis::new();
        run_block(&mut a, &body, &mut env, &mut FlowCtx::default());
        assert_eq!(env.get("x"), Taint::Divergent);
        assert_eq!(env.get("s"), Taint::Uniform);
        assert_eq!(env.get("y"), Taint::Divergent);
    }

    #[test]
    fn function_params_are_not_seeds() {
        let body = vec![reduce("s", "m")];
        let seeds = read_before_def(&body, &["m".to_string()]);
        assert!(seeds.is_empty());
    }

    #[test]
    fn site_census_counts_comm_classes() {
        let body = vec![
            Instr::Transpose {
                dst: "b".into(),
                a: "a".into(),
            },
            Instr::For {
                var: "i".into(),
                start: SExpr::c(1.0),
                step: SExpr::c(1.0),
                stop: SExpr::c(3.0),
                body: vec![reduce("s", "a")],
            },
        ];
        let sites = count_sites(&body);
        assert_eq!(sites.point_to_point, 1);
        assert_eq!(sites.collective, 1);
    }
}
