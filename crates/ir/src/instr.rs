//! IR node definitions.

use otter_analysis::Shape;
use otter_frontend::Span;
use std::collections::{BTreeMap, BTreeSet};

/// Scalar builtin functions usable inside replicated scalar
/// expressions (pure C library calls in the emitted code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SFun {
    Sqrt,
    Abs,
    Sin,
    Cos,
    Tan,
    Exp,
    Log,
    Log2,
    Floor,
    Ceil,
    Round,
    Sign,
    Pow,
    Mod,
    Rem,
    Max,
    Min,
}

impl SFun {
    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            SFun::Pow | SFun::Mod | SFun::Rem | SFun::Max | SFun::Min => 2,
            _ => 1,
        }
    }

    /// The C expression spelling, as the emitter prints it.
    pub fn c_name(self) -> &'static str {
        match self {
            SFun::Sqrt => "sqrt",
            SFun::Abs => "fabs",
            SFun::Sin => "sin",
            SFun::Cos => "cos",
            SFun::Tan => "tan",
            SFun::Exp => "exp",
            SFun::Log => "log",
            SFun::Log2 => "log2",
            SFun::Floor => "floor",
            SFun::Ceil => "ceil",
            SFun::Round => "round",
            SFun::Sign => "ML_sign",
            SFun::Pow => "pow",
            SFun::Mod => "ML_mod",
            SFun::Rem => "fmod",
            SFun::Max => "ML_max",
            SFun::Min => "ML_min",
        }
    }

    /// Evaluate on doubles (the executor's semantics; `ML_mod` is
    /// MATLAB's sign-following `mod`).
    pub fn eval(self, args: &[f64]) -> f64 {
        match self {
            SFun::Sqrt => args[0].sqrt(),
            SFun::Abs => args[0].abs(),
            SFun::Sin => args[0].sin(),
            SFun::Cos => args[0].cos(),
            SFun::Tan => args[0].tan(),
            SFun::Exp => args[0].exp(),
            SFun::Log => args[0].ln(),
            SFun::Log2 => args[0].log2(),
            SFun::Floor => args[0].floor(),
            SFun::Ceil => args[0].ceil(),
            SFun::Round => args[0].round(),
            SFun::Sign => args[0].signum(),
            SFun::Pow => args[0].powf(args[1]),
            SFun::Mod => args[0].rem_euclid(args[1]),
            SFun::Rem => args[0] % args[1],
            SFun::Max => args[0].max(args[1]),
            SFun::Min => args[0].min(args[1]),
        }
    }
}

/// Scalar binary operators (replicated arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl SBinOp {
    pub fn c_symbol(self) -> &'static str {
        match self {
            SBinOp::Add => "+",
            SBinOp::Sub => "-",
            SBinOp::Mul => "*",
            SBinOp::Div => "/",
            SBinOp::Eq => "==",
            SBinOp::Ne => "!=",
            SBinOp::Lt => "<",
            SBinOp::Le => "<=",
            SBinOp::Gt => ">",
            SBinOp::Ge => ">=",
            SBinOp::And => "&&",
            SBinOp::Or => "||",
        }
    }

    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            SBinOp::Add => a + b,
            SBinOp::Sub => a - b,
            SBinOp::Mul => a * b,
            SBinOp::Div => a / b,
            SBinOp::Eq => f64::from(a == b),
            SBinOp::Ne => f64::from(a != b),
            SBinOp::Lt => f64::from(a < b),
            SBinOp::Le => f64::from(a <= b),
            SBinOp::Gt => f64::from(a > b),
            SBinOp::Ge => f64::from(a >= b),
            SBinOp::And => f64::from(a != 0.0 && b != 0.0),
            SBinOp::Or => f64::from(a != 0.0 || b != 0.0),
        }
    }
}

/// Replicated scalar expression — every rank computes the same value
/// redundantly (paper §3 assumption 1: "scalar variables are
/// replicated across the set of processors").
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    Const(f64),
    /// Scalar variable reference.
    Var(String),
    /// Run-time dimension of a matrix variable (`m->rows` /
    /// `m->cols` / local-free `numel` in the emitted C). Lowered from
    /// `size`/`length`/`numel`/`end` when the shape is not static.
    DimOf {
        var: String,
        sel: DimSel,
    },
    /// The element being stored by the enclosing
    /// [`Instr::StoreElem`] — the paper's
    /// `*ML_realaddr2(a, i-1, j-1)` read inside the owner guard.
    /// Valid only inside `StoreElem::val`.
    OwnElem,
    Neg(Box<SExpr>),
    Not(Box<SExpr>),
    Bin(SBinOp, Box<SExpr>, Box<SExpr>),
    Call(SFun, Vec<SExpr>),
}

/// Which dimension [`SExpr::DimOf`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimSel {
    Rows,
    Cols,
    /// `max(rows, cols)` — MATLAB `length`.
    Length,
    /// `rows * cols` — MATLAB `numel` and linear `end`.
    Numel,
}

impl SExpr {
    pub fn var(name: impl Into<String>) -> SExpr {
        SExpr::Var(name.into())
    }

    pub fn c(v: f64) -> SExpr {
        SExpr::Const(v)
    }

    pub fn bin(op: SBinOp, a: SExpr, b: SExpr) -> SExpr {
        SExpr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Free scalar-variable names referenced.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            SExpr::Const(_) => {}
            SExpr::DimOf { .. } | SExpr::OwnElem => {}
            SExpr::Var(v) => out.push(v.clone()),
            SExpr::Neg(e) | SExpr::Not(e) => e.vars(out),
            SExpr::Bin(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
            SExpr::Call(_, args) => {
                for a in args {
                    a.vars(out);
                }
            }
        }
    }
}

/// Element-wise operators within a fused loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl EwOp {
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            EwOp::Add => a + b,
            EwOp::Sub => a - b,
            EwOp::Mul => a * b,
            EwOp::Div => a / b,
            EwOp::Pow => a.powf(b),
            EwOp::Eq => f64::from(a == b),
            EwOp::Ne => f64::from(a != b),
            EwOp::Lt => f64::from(a < b),
            EwOp::Le => f64::from(a <= b),
            EwOp::Gt => f64::from(a > b),
            EwOp::Ge => f64::from(a >= b),
            EwOp::And => f64::from(a != 0.0 && b != 0.0),
            EwOp::Or => f64::from(a != 0.0 || b != 0.0),
        }
    }

    /// C spelling for the emitted per-element loop body (`Pow` prints
    /// as a `pow()` call instead).
    pub fn c_symbol(self) -> &'static str {
        match self {
            EwOp::Add => "+",
            EwOp::Sub => "-",
            EwOp::Mul => "*",
            EwOp::Div => "/",
            EwOp::Pow => "pow",
            EwOp::Eq => "==",
            EwOp::Ne => "!=",
            EwOp::Lt => "<",
            EwOp::Le => "<=",
            EwOp::Gt => ">",
            EwOp::Ge => ">=",
            EwOp::And => "&&",
            EwOp::Or => "||",
        }
    }
}

/// Element-wise expression tree over *aligned* distributed operands
/// and replicated scalars. Compiles to one fused per-element loop —
/// the `for (ML_tmp3 = ...)` loop of the paper's §3 example.
#[derive(Debug, Clone, PartialEq)]
pub enum EwExpr {
    /// A distributed matrix operand (must be aligned with the
    /// destination).
    Mat(String),
    /// A replicated scalar value.
    Scalar(SExpr),
    Neg(Box<EwExpr>),
    Not(Box<EwExpr>),
    Bin(EwOp, Box<EwExpr>, Box<EwExpr>),
    /// Element-wise scalar function application.
    Call(SFun, Vec<EwExpr>),
}

impl EwExpr {
    pub fn mat(name: impl Into<String>) -> EwExpr {
        EwExpr::Mat(name.into())
    }

    pub fn bin(op: EwOp, a: EwExpr, b: EwExpr) -> EwExpr {
        EwExpr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Matrix operand names referenced by this tree.
    pub fn mat_operands(&self, out: &mut Vec<String>) {
        match self {
            EwExpr::Mat(m) => out.push(m.clone()),
            EwExpr::Scalar(_) => {}
            EwExpr::Neg(e) | EwExpr::Not(e) => e.mat_operands(out),
            EwExpr::Bin(_, a, b) => {
                a.mat_operands(out);
                b.mat_operands(out);
            }
            EwExpr::Call(_, args) => {
                for a in args {
                    a.mat_operands(out);
                }
            }
        }
    }

    /// Approximate per-element flop weight of evaluating this tree —
    /// used for modeled-time charging.
    pub fn flop_weight(&self) -> f64 {
        match self {
            EwExpr::Mat(_) | EwExpr::Scalar(_) => 0.0,
            EwExpr::Neg(e) | EwExpr::Not(e) => 1.0 + e.flop_weight(),
            EwExpr::Bin(op, a, b) => {
                let w = match op {
                    EwOp::Div => 4.0,
                    EwOp::Pow => 16.0,
                    _ => 1.0,
                };
                w + a.flop_weight() + b.flop_weight()
            }
            EwExpr::Call(f, args) => {
                let w = match f {
                    SFun::Sqrt
                    | SFun::Abs
                    | SFun::Floor
                    | SFun::Ceil
                    | SFun::Round
                    | SFun::Sign
                    | SFun::Max
                    | SFun::Min => 4.0,
                    _ => 16.0,
                };
                w + args.iter().map(|a| a.flop_weight()).sum::<f64>()
            }
        }
    }
}

/// Whole-object reductions producing a replicated scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    SumAll,
    MeanAll,
    MaxAll,
    MinAll,
    ProdAll,
    AnyAll,
    AllAll,
    Norm2,
    Trapz,
}

impl RedOp {
    pub fn c_name(self) -> &'static str {
        match self {
            RedOp::SumAll => "ML_sum_all",
            RedOp::MeanAll => "ML_mean_all",
            RedOp::MaxAll => "ML_max_all",
            RedOp::MinAll => "ML_min_all",
            RedOp::ProdAll => "ML_prod_all",
            RedOp::AnyAll => "ML_any_all",
            RedOp::AllAll => "ML_all_all",
            RedOp::Norm2 => "ML_norm2",
            RedOp::Trapz => "ML_trapz",
        }
    }
}

/// Matrix constructors computed without communication.
#[derive(Debug, Clone, PartialEq)]
pub enum MatInit {
    Zeros {
        rows: SExpr,
        cols: SExpr,
    },
    Ones {
        rows: SExpr,
        cols: SExpr,
    },
    Eye {
        n: SExpr,
    },
    /// Seeded uniform random matrix; the seed keeps interpreter and
    /// compiled runs comparable.
    Rand {
        rows: SExpr,
        cols: SExpr,
    },
    Range {
        start: SExpr,
        step: SExpr,
        stop: SExpr,
    },
    /// Literal `[a, b; c, d]` of replicated scalar expressions.
    Literal {
        rows: Vec<Vec<SExpr>>,
    },
    /// Row vector of `n` points from `a` to `b` inclusive.
    Linspace {
        a: SExpr,
        b: SExpr,
        n: SExpr,
    },
}

/// One SPMD instruction. Matrix operands are variable names; scalar
/// operands are replicated [`SExpr`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ---- replicated scalar computation ----
    /// `dst = expr;` on every rank.
    AssignScalar {
        dst: String,
        src: SExpr,
    },

    // ---- constructors ----
    /// `dst = <constructor>` (no communication).
    InitMatrix {
        dst: String,
        init: MatInit,
    },
    /// Copy a whole matrix variable: `dst = src`.
    CopyMatrix {
        dst: String,
        src: String,
    },
    /// Load from a data file via rank-0 + scatter.
    LoadFile {
        dst: String,
        path: String,
    },

    // ---- element-wise loop (no communication) ----
    /// `dst(k) = expr(k)` for every locally owned element.
    ElemWise {
        dst: String,
        expr: EwExpr,
    },

    // ---- run-time library calls (communication-bearing) ----
    /// `ML_matrix_multiply(a, b, dst)`.
    MatMul {
        dst: String,
        a: String,
        b: String,
    },
    /// `ML_matrix_vector_multiply(a, x, dst)`.
    MatVec {
        dst: String,
        a: String,
        x: String,
    },
    /// Outer product `dst = u * v'` of two vectors.
    Outer {
        dst: String,
        u: String,
        v: String,
    },
    /// `dst = aᵀ` (all-to-all redistribution).
    Transpose {
        dst: String,
        a: String,
    },
    /// `ML_broadcast(&dst, m, i, j)` — fetch one element to a
    /// replicated scalar. Indices are 1-based MATLAB expressions; the
    /// `- 1` adjustment happens at execution/emission, exactly like
    /// the generated C in the paper.
    BroadcastElem {
        dst: String,
        m: String,
        i: SExpr,
        j: Option<SExpr>,
    },
    /// Owner-computes guarded element store:
    /// `if (ML_owner(m, i-1, j-1)) *ML_realaddr2(m, i-1, j-1) = val;`
    StoreElem {
        m: String,
        i: SExpr,
        j: Option<SExpr>,
        val: SExpr,
    },
    /// Whole-object reduction to a replicated scalar.
    Reduce {
        dst: String,
        op: RedOp,
        m: String,
    },
    /// `dst = dot(a, b)` (fused multiply + sum; pass-6 peephole
    /// output).
    Dot {
        dst: String,
        a: String,
        b: String,
    },
    /// `dst = trapz(x, y)`.
    TrapzXY {
        dst: String,
        x: String,
        y: String,
    },
    // ---- fused pairs (loop-fusion pass output) ----
    /// Fused `tmp = matmul(a, b); dst(k) = expr(k)` pair. The
    /// element-wise epilogue reads the product through `Mat(tmp)`
    /// leaves; at run time the product is folded straight into the
    /// epilogue without materializing `tmp`. The temporary's name is
    /// kept so the C emitter can reconstruct the unfused sequence
    /// byte-for-byte (decls, loop counters, and the trailing
    /// `ML_free` all reappear unchanged).
    MatMulEw {
        dst: String,
        a: String,
        b: String,
        tmp: String,
        expr: EwExpr,
    },
    /// Fused `tmp = matvec(a, x); dst(k) = expr(k)` pair (see
    /// [`Instr::MatMulEw`] for the `tmp` contract).
    MatVecEw {
        dst: String,
        a: String,
        x: String,
        tmp: String,
        expr: EwExpr,
    },
    /// Fused `tmp(k) = expr(k); dst = reduce(tmp)` pair: the reduction
    /// folds the element-wise expression directly, so the full-size
    /// temporary never exists at run time. Only allocation-free
    /// whole-object reductions are legal here (`sum`/`mean`/`max`/
    /// `min`/`prod`/`norm2`); `trapz` needs neighbor halo elements and
    /// the boolean reductions are excluded by the fusion pass.
    ReduceEw {
        dst: String,
        op: RedOp,
        tmp: String,
        expr: EwExpr,
    },
    /// MATLAB `sum`/`mean` of a true matrix → row vector of column
    /// aggregates.
    ColReduce {
        dst: String,
        op: ColRedOp,
        m: String,
    },
    /// Circular shift of a vector.
    Shift {
        dst: String,
        v: String,
        k: SExpr,
    },
    /// `dst = m(i, :)` (owner broadcast).
    ExtractRow {
        dst: String,
        m: String,
        i: SExpr,
    },
    /// `dst = m(:, j)` (no communication).
    ExtractCol {
        dst: String,
        m: String,
        j: SExpr,
    },
    /// `m(i, :) = v` (gather to owner).
    AssignRow {
        m: String,
        i: SExpr,
        v: String,
    },
    /// `m(:, j) = v` (no communication).
    AssignCol {
        m: String,
        j: SExpr,
        v: String,
    },
    /// `dst = v(lo:hi)` (1-based inclusive bounds, redistribution).
    ExtractRange {
        dst: String,
        v: String,
        lo: SExpr,
        hi: SExpr,
    },
    /// `dst = v(lo:step:hi)` — strided gather (1-based inclusive).
    ExtractStrided {
        dst: String,
        v: String,
        lo: SExpr,
        step: SExpr,
        hi: SExpr,
    },
    /// `m(i, :) = val` — scalar fill of a row (no communication).
    FillRow {
        m: String,
        i: SExpr,
        val: SExpr,
    },
    /// `m(:, j) = val` — scalar fill of a column (no communication).
    FillCol {
        m: String,
        j: SExpr,
        val: SExpr,
    },
    /// `v(lo:hi) = val` — scalar fill of an element range.
    FillRange {
        m: String,
        lo: SExpr,
        hi: SExpr,
        val: SExpr,
    },
    /// `v(lo:hi) = w` — store a vector into an element range.
    AssignRange {
        m: String,
        lo: SExpr,
        hi: SExpr,
        v: String,
    },
    /// De-allocate a temporary's distributed storage (paper §4: "the
    /// run-time library is responsible for the allocation and
    /// de-allocation of vectors and matrices"). Inserted after the
    /// last use of each compiler temporary.
    Free {
        name: String,
    },

    // ---- control flow (replicated conditions) ----
    If {
        cond: SExpr,
        then_body: Vec<Instr>,
        else_body: Vec<Instr>,
    },
    /// `while`: re-evaluate `pre` (instructions computing the
    /// condition's inputs, e.g. a norm reduction) then test `cond`.
    While {
        pre: Vec<Instr>,
        cond: SExpr,
        body: Vec<Instr>,
    },
    /// Counted loop over a replicated scalar induction variable.
    For {
        var: String,
        start: SExpr,
        step: SExpr,
        stop: SExpr,
        body: Vec<Instr>,
    },
    Break,
    Continue,

    // ---- calls and I/O ----
    /// Call an IR function. `args`/`outs` pair positionally with the
    /// callee's parameters/returns.
    Call {
        fun: String,
        args: Vec<Arg>,
        outs: Vec<String>,
    },
    /// Display a value (rank 0 prints).
    Print {
        name: String,
        target: PrintTarget,
    },
}

impl Instr {
    /// Stable lowercase mnemonic for this instruction — the key used
    /// by per-opcode execution counters and `EngineReport` schemas.
    pub fn opcode(&self) -> &'static str {
        match self {
            Instr::AssignScalar { .. } => "assign-scalar",
            Instr::InitMatrix { .. } => "init-matrix",
            Instr::CopyMatrix { .. } => "copy-matrix",
            Instr::LoadFile { .. } => "load-file",
            Instr::ElemWise { .. } => "elemwise",
            Instr::MatMul { .. } => "matmul",
            Instr::MatVec { .. } => "matvec",
            Instr::Outer { .. } => "outer",
            Instr::Transpose { .. } => "transpose",
            Instr::BroadcastElem { .. } => "broadcast-elem",
            Instr::StoreElem { .. } => "store-elem",
            Instr::Reduce { .. } => "reduce",
            Instr::Dot { .. } => "dot",
            Instr::TrapzXY { .. } => "trapz",
            Instr::MatMulEw { .. } => "matmul-ew",
            Instr::MatVecEw { .. } => "matvec-ew",
            Instr::ReduceEw { .. } => "reduce-ew",
            Instr::ColReduce { .. } => "col-reduce",
            Instr::Shift { .. } => "shift",
            Instr::ExtractRow { .. } => "extract-row",
            Instr::ExtractCol { .. } => "extract-col",
            Instr::AssignRow { .. } => "assign-row",
            Instr::AssignCol { .. } => "assign-col",
            Instr::ExtractRange { .. } => "extract-range",
            Instr::ExtractStrided { .. } => "extract-strided",
            Instr::FillRow { .. } => "fill-row",
            Instr::FillCol { .. } => "fill-col",
            Instr::FillRange { .. } => "fill-range",
            Instr::AssignRange { .. } => "assign-range",
            Instr::Free { .. } => "free",
            Instr::If { .. } => "if",
            Instr::While { .. } => "while",
            Instr::For { .. } => "for",
            Instr::Break => "break",
            Instr::Continue => "continue",
            Instr::Call { .. } => "call",
            Instr::Print { .. } => "print",
        }
    }

    /// Whether this instruction lowers to a call into the `ML_*`
    /// run-time library (versus inline scalar code / control flow).
    /// Matches the C emitter: every matrix-bearing operation goes
    /// through the library; scalar assignments, control flow, function
    /// calls, and printing do not.
    pub fn is_runtime_call(&self) -> bool {
        !matches!(
            self,
            Instr::AssignScalar { .. }
                | Instr::If { .. }
                | Instr::While { .. }
                | Instr::For { .. }
                | Instr::Break
                | Instr::Continue
                | Instr::Call { .. }
                | Instr::Print { .. }
        )
    }
}

/// Column-aggregate reductions (`sum(A)`, `mean(A)` on matrices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColRedOp {
    Sum,
    Mean,
    Prod,
    Max,
    Min,
    Any,
    All,
}

/// An actual argument to an IR function call.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    Scalar(SExpr),
    Matrix(String),
}

/// What a `Print` displays.
#[derive(Debug, Clone, PartialEq)]
pub enum PrintTarget {
    Scalar(SExpr),
    Matrix(String),
}

/// Whether an IR variable is a replicated scalar or a distributed
/// matrix — the paper's *rank* attribute, fixed at compile time by
/// type inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarRank {
    Scalar,
    Matrix,
}

/// A compiled function: parameters, returns, body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrFunction {
    pub name: String,
    pub params: Vec<(String, VarRank)>,
    pub outs: Vec<(String, VarRank)>,
    pub body: Vec<Instr>,
    /// Rank of every local variable (for emitter declarations).
    pub var_ranks: BTreeMap<String, VarRank>,
    /// Source span of each local's first definition — carried for
    /// diagnostics (the lint pass anchors its warnings here). Absent
    /// entries mean "no usable location".
    pub def_spans: BTreeMap<String, Span>,
    /// Static (possibly symbolic) shape of each named local, from
    /// pass-3 inference. Metadata for the static analyses; execution
    /// and C emission never read it.
    pub var_shapes: BTreeMap<String, Shape>,
    /// Known constant value of each scalar local (pass-3 constant
    /// propagation). Metadata only.
    pub var_consts: BTreeMap<String, f64>,
    /// Locals proven safe to update in place (no live SSA sibling
    /// overlaps a write) — the legality fact fusion/copy-elision
    /// passes will consume. Filled by the analyze pass; metadata only.
    pub in_place: BTreeSet<String>,
}

/// A whole compiled program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrProgram {
    /// Script body.
    pub main: Vec<Instr>,
    /// Compiled M-file functions, by name (deterministic order).
    pub functions: BTreeMap<String, IrFunction>,
    /// Rank of every script-level variable (for the emitter's
    /// declarations and the executor's environment).
    pub var_ranks: BTreeMap<String, VarRank>,
    /// Source span of each script variable's first definition, for
    /// diagnostics. Purely metadata: execution and C emission never
    /// read it.
    pub def_spans: BTreeMap<String, Span>,
    /// Static (possibly symbolic) shape of each named script variable,
    /// from pass-3 inference. Metadata for the static analyses;
    /// execution and C emission never read it.
    pub var_shapes: BTreeMap<String, Shape>,
    /// Known constant value of each scalar script variable (pass-3
    /// constant propagation). Metadata only.
    pub var_consts: BTreeMap<String, f64>,
    /// Script variables proven safe to update in place. Filled by the
    /// analyze pass; metadata only.
    pub in_place: BTreeSet<String>,
}

impl IrProgram {
    /// Count instructions recursively (used by compiler statistics and
    /// the peephole pass's tests).
    pub fn instr_count(&self) -> usize {
        fn count(body: &[Instr]) -> usize {
            body.iter()
                .map(|i| match i {
                    Instr::If {
                        then_body,
                        else_body,
                        ..
                    } => 1 + count(then_body) + count(else_body),
                    Instr::While { pre, body, .. } => 1 + count(pre) + count(body),
                    Instr::For { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.main)
            + self
                .functions
                .values()
                .map(|f| count(&f.body))
                .sum::<usize>()
    }

    /// Count instructions (recursively) that call into the `ML_*`
    /// run-time library — the "runtime-call count" pass statistic.
    pub fn runtime_call_count(&self) -> usize {
        fn count(body: &[Instr]) -> usize {
            body.iter()
                .map(|i| {
                    let own = usize::from(i.is_runtime_call());
                    match i {
                        Instr::If {
                            then_body,
                            else_body,
                            ..
                        } => own + count(then_body) + count(else_body),
                        Instr::While { pre, body, .. } => own + count(pre) + count(body),
                        Instr::For { body, .. } => own + count(body),
                        _ => own,
                    }
                })
                .sum()
        }
        count(&self.main)
            + self
                .functions
                .values()
                .map(|f| count(&f.body))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sexpr_eval_via_ops() {
        let e = SExpr::bin(
            SBinOp::Add,
            SExpr::c(2.0),
            SExpr::bin(SBinOp::Mul, SExpr::c(3.0), SExpr::c(4.0)),
        );
        // Structural check only here; evaluation lives in the executor.
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert!(vars.is_empty());
    }

    #[test]
    fn sexpr_collects_vars() {
        let e = SExpr::bin(SBinOp::Div, SExpr::var("num"), SExpr::var("den"));
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec!["num", "den"]);
    }

    #[test]
    fn sfun_arity_and_eval() {
        assert_eq!(SFun::Sqrt.arity(), 1);
        assert_eq!(SFun::Pow.arity(), 2);
        assert_eq!(SFun::Pow.eval(&[2.0, 10.0]), 1024.0);
        assert_eq!(
            SFun::Mod.eval(&[-1.0, 3.0]),
            2.0,
            "MATLAB mod follows divisor sign"
        );
        assert_eq!(SFun::Rem.eval(&[-1.0, 3.0]), -1.0);
    }

    #[test]
    fn ewexpr_operands_and_weight() {
        // b .* c + s
        let e = EwExpr::bin(
            EwOp::Add,
            EwExpr::bin(EwOp::Mul, EwExpr::mat("b"), EwExpr::mat("c")),
            EwExpr::Scalar(SExpr::var("s")),
        );
        let mut ops = Vec::new();
        e.mat_operands(&mut ops);
        assert_eq!(ops, vec!["b", "c"]);
        assert_eq!(e.flop_weight(), 2.0);
        let div = EwExpr::bin(EwOp::Div, EwExpr::mat("a"), EwExpr::mat("b"));
        assert_eq!(div.flop_weight(), 4.0);
    }

    #[test]
    fn sbinop_eval_table() {
        assert_eq!(SBinOp::Le.eval(2.0, 2.0), 1.0);
        assert_eq!(SBinOp::And.eval(1.0, 0.0), 0.0);
        assert_eq!(SBinOp::Sub.eval(5.0, 3.0), 2.0);
    }

    #[test]
    fn ewop_eval_table() {
        assert_eq!(EwOp::Pow.eval(3.0, 2.0), 9.0);
        assert_eq!(EwOp::Ne.eval(1.0, 1.0), 0.0);
    }

    #[test]
    fn instr_count_recurses() {
        let p = IrProgram {
            main: vec![
                Instr::AssignScalar {
                    dst: "x".into(),
                    src: SExpr::c(1.0),
                },
                Instr::For {
                    var: "i".into(),
                    start: SExpr::c(1.0),
                    step: SExpr::c(1.0),
                    stop: SExpr::c(10.0),
                    body: vec![Instr::Break, Instr::Continue],
                },
            ],
            ..Default::default()
        };
        assert_eq!(p.instr_count(), 4);
    }
}
