//! Criterion benches: real wall-clock time of the workloads behind
//! every figure, on the host CPU.
//!
//! * `fig2/*` — the three engines on each benchmark app (single CPU).
//! * `fig3..fig6/*` — the compiled app at increasing rank counts
//!   (real threads; wall time, not modeled time).
//!
//! Caveat for reading the numbers: at test scale the SPMD engine's
//! wall time is dominated by thread/channel orchestration, so the
//! interpreter (a single tight Rust loop) can win outright and rank
//! sweeps can grow with p. That is the *host's* overhead profile, not
//! the modeled 1998 machines' — the modeled figures in the harness are
//! the reproduction artifact. The `fig6_tc` group uses a larger
//! problem (n = 128, ~29 Mflop) where real compute dominates and
//! wall-clock scaling with ranks is visible on multi-core hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otter_core::{compile_str, run_compiled, run_interpreter, run_matcom, BaselineOptions};
use otter_machine::{meiko_cs2, workstation};

fn bench_fig2(c: &mut Criterion) {
    let ws = workstation();
    let opts = BaselineOptions::default();
    let mut g = c.benchmark_group("fig2_single_cpu");
    g.sample_size(10);
    for app in otter_apps::test_apps() {
        let compiled = compile_str(&app.script).expect("app compiles");
        g.bench_with_input(BenchmarkId::new("interpreter", app.id), &app, |b, app| {
            b.iter(|| run_interpreter(&app.script, &ws, &opts).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("matcom", app.id), &app, |b, app| {
            b.iter(|| run_matcom(&app.script, &ws, &opts).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("otter", app.id), &app, |b, _| {
            b.iter(|| run_compiled(&compiled, &ws, 1).unwrap())
        });
    }
    g.finish();
}

fn bench_speedup(c: &mut Criterion, figure: &str, app_id: &str) {
    let machine = meiko_cs2();
    let app = if app_id == "tc" {
        // Big enough for real compute to dominate thread overhead.
        otter_apps::transitive::transitive_closure(otter_apps::transitive::Params { n: 128 })
    } else {
        otter_apps::test_apps().into_iter().find(|a| a.id == app_id).unwrap()
    };
    let compiled = compile_str(&app.script).expect("app compiles");
    let mut g = c.benchmark_group(figure);
    g.sample_size(10);
    for p in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new(app_id, p), &p, |b, &p| {
            b.iter(|| run_compiled(&compiled, &machine, p).unwrap())
        });
    }
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    bench_speedup(c, "fig3_cg", "cg");
}

fn bench_fig4(c: &mut Criterion) {
    bench_speedup(c, "fig4_ocean", "ocean");
}

fn bench_fig5(c: &mut Criterion) {
    bench_speedup(c, "fig5_nbody", "nbody");
}

fn bench_fig6(c: &mut Criterion) {
    bench_speedup(c, "fig6_tc", "tc");
}

criterion_group!(benches, bench_fig2, bench_fig3, bench_fig4, bench_fig5, bench_fig6);
criterion_main!(benches);
