//! The shared compiler diagnostic.
//!
//! Every per-crate error type (front-end, analysis, codegen,
//! interpreter run-time) converts into this one shape, so drivers like
//! `otterc` and the benchmark harness print a single consistent
//! format: `error[<pass>] <file>:<line>:<col>: <message>`. The crate
//! errors themselves stay as they are — `From` impls do the lifting —
//! and the pass manager re-labels `pass` with the name of the pipeline
//! stage that actually failed.

use crate::span::Span;
use std::fmt;

/// A uniformly printable compiler/run-time diagnostic: what went
/// wrong, where in the source, and which pipeline stage said so.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The pipeline stage or subsystem that raised the error
    /// (`parse`, `resolve`, `ssa-infer`, `codegen`, `execution`, ...).
    pub pass: String,
    /// Human-readable description, without location decoration.
    pub message: String,
    /// Source location; [`Span::DUMMY`] when there is no useful one.
    pub span: Span,
    /// Originating M-file, when known.
    pub file: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with no source location.
    pub fn new(pass: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            pass: pass.into(),
            message: message.into(),
            span: Span::DUMMY,
            file: None,
        }
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Attach the originating file name.
    pub fn in_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// Re-label the originating pass (the pass manager applies the
    /// concrete pipeline-stage name to errors raised inside a pass).
    pub fn with_pass(mut self, pass: impl Into<String>) -> Self {
        self.pass = pass.into();
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]", self.pass)?;
        match (&self.file, self.span.is_dummy()) {
            (Some(file), false) => write!(f, " {file}:{}:", self.span)?,
            (Some(file), true) => write!(f, " {file}:")?,
            (None, false) => write!(f, " {}:", self.span)?,
            (None, true) => write!(f, ":")?,
        }
        write!(f, " {}", self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_location_shapes() {
        let d = Diagnostic::new("resolve", "use of `x` before assignment");
        assert_eq!(
            d.to_string(),
            "error[resolve]: use of `x` before assignment"
        );
        let d = d.with_span(Span::new(4, 5, 1, 5));
        assert_eq!(
            d.to_string(),
            "error[resolve] 1:5: use of `x` before assignment"
        );
        let d = d.in_file("cg.m");
        assert_eq!(
            d.to_string(),
            "error[resolve] cg.m:1:5: use of `x` before assignment"
        );
    }

    #[test]
    fn with_pass_relabels() {
        let d = Diagnostic::new("analysis", "rank conflict").with_pass("ssa-infer");
        assert_eq!(d.pass, "ssa-infer");
        assert!(d.to_string().starts_with("error[ssa-infer]"));
    }
}
