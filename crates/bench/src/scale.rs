//! The `harness scale` sweep: how far past the machine's physical
//! CPU count the virtual-rank scheduler can push a benchmark app.
//!
//! The paper stops at 16 CPUs because the Meiko CS-2 had 16; the
//! virtual-rank scheduler removes that ceiling by multiplexing
//! thousands of logical ranks over a fixed worker pool. A
//! [`ScaleSpec`] compiles one app once, measures the interpreter
//! baseline on a single CPU, then runs the compiled SPMD program at
//! each requested rank count on the same pooled scheduler. Each
//! [`ScalePoint`] carries both the deterministic simulation outputs
//! (modeled seconds, speedup over the interpreter, message/byte
//! totals, `load_imbalance_ratio`) — identical for any worker-pool
//! size — and the host wall-clock seconds of the run, which is the
//! honest cost of simulating that many ranks.

use crate::figures::Scale;
use otter_core::{
    compile, run, run_engine, EngineOptions, InterpreterEngine, OtterError, RunRequest,
};
use otter_machine::meiko_cs2;
use otter_metrics::Json;
use std::time::Instant;

/// The `"schema"` tag every scale report carries.
pub const SCALE_SCHEMA: &str = "otter-scale/v1";

/// What to sweep.
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// Problem sizes (test scale for CI, paper scale for real runs).
    pub scale: Scale,
    /// Benchmark app id (`cg`/`ocean`/`nbody`/`tc`).
    pub app_id: String,
    /// Rank counts to sweep, in order.
    pub ranks: Vec<usize>,
    /// Worker-pool size; `None` uses the host's parallelism. Only
    /// `wall_seconds` depends on this.
    pub workers: Option<usize>,
}

impl Default for ScaleSpec {
    fn default() -> Self {
        ScaleSpec {
            scale: Scale::Test,
            app_id: "cg".to_string(),
            ranks: vec![64, 256, 1024, 4096],
            workers: None,
        }
    }
}

/// One rank count's measurements.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub ranks: usize,
    /// Modeled execution time (virtual seconds; deterministic).
    pub modeled_seconds: f64,
    /// Speedup over the single-CPU interpreter baseline.
    pub speedup: f64,
    /// Total messages across ranks (deterministic).
    pub messages: u64,
    /// Total bytes across ranks (deterministic).
    pub bytes: u64,
    /// max/min rank virtual clock (deterministic; ≥ 1).
    pub load_imbalance_ratio: f64,
    /// Host wall-clock seconds for the run (informational).
    pub wall_seconds: f64,
}

/// A full sweep: configuration echo plus one point per rank count.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    pub app: String,
    pub machine: String,
    /// The worker-pool size used, or 0 for host parallelism.
    pub workers: usize,
    /// Interpreter modeled seconds on one CPU (the speedup baseline).
    pub t0: f64,
    pub points: Vec<ScalePoint>,
}

/// Run the sweep on the Meiko CS-2 model. Rank counts may exceed the
/// machine's physical 16 CPUs — `max_cpus` shapes the network model,
/// not the scheduler.
pub fn run_scale(spec: &ScaleSpec) -> Result<ScaleReport, OtterError> {
    let machine = meiko_cs2();
    let apps = spec.scale.apps();
    let app = apps.iter().find(|a| a.id == spec.app_id).ok_or_else(|| {
        OtterError::execution(format!(
            "scale: unknown app `{}` (expected cg|ocean|nbody|tc)",
            spec.app_id
        ))
    })?;
    let interp = run_engine(
        &mut InterpreterEngine::new(EngineOptions::default()),
        &app.script,
        &machine,
        1,
    )?;
    let t0 = interp.modeled_seconds;
    let opts = EngineOptions::builder().metrics(true).build();
    let artifact = compile(&app.script, &opts)
        .map_err(|e| OtterError::execution(format!("scale: {}: compile: {e}", app.id)))?;
    let mut points = Vec::new();
    for &p in &spec.ranks {
        let mut req = RunRequest::on(machine.clone(), p);
        req.workers = spec.workers;
        let wall0 = Instant::now();
        let report = run(&artifact, &req)?;
        let wall_seconds = wall0.elapsed().as_secs_f64();
        let imbalance = report
            .metrics
            .as_ref()
            .and_then(|m| m.gauge("load_imbalance_ratio", &[]))
            .unwrap_or(1.0);
        points.push(ScalePoint {
            ranks: p,
            modeled_seconds: report.modeled_seconds,
            speedup: t0 / report.modeled_seconds,
            messages: report.messages,
            bytes: report.bytes,
            load_imbalance_ratio: imbalance,
            wall_seconds,
        });
    }
    Ok(ScaleReport {
        app: app.id.to_string(),
        machine: machine.name,
        workers: spec.workers.unwrap_or(0),
        t0,
        points,
    })
}

impl ScaleReport {
    /// Serialize under the `otter-scale/v1` schema.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(SCALE_SCHEMA.to_string())),
            ("app".to_string(), Json::Str(self.app.clone())),
            ("machine".to_string(), Json::Str(self.machine.clone())),
            ("workers".to_string(), Json::Num(self.workers as f64)),
            ("interpreter_seconds".to_string(), Json::Num(self.t0)),
            (
                "points".to_string(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|pt| {
                            Json::Obj(vec![
                                ("ranks".to_string(), Json::Num(pt.ranks as f64)),
                                ("modeled_seconds".to_string(), Json::Num(pt.modeled_seconds)),
                                ("speedup".to_string(), Json::Num(pt.speedup)),
                                ("messages".to_string(), Json::Num(pt.messages as f64)),
                                ("bytes".to_string(), Json::Num(pt.bytes as f64)),
                                (
                                    "load_imbalance_ratio".to_string(),
                                    Json::Num(pt.load_imbalance_ratio),
                                ),
                                ("wall_seconds".to_string(), Json::Num(pt.wall_seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable sweep table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let workers = if self.workers == 0 {
            "host parallelism".to_string()
        } else {
            format!("{} worker(s)", self.workers)
        };
        let _ = writeln!(
            out,
            "scale: {} on {}, {workers}; interpreter baseline {:.6}s",
            self.app, self.machine, self.t0
        );
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>10} {:>10} {:>12} {:>11} {:>10}",
            "ranks", "modeled (s)", "speedup", "messages", "bytes", "imbalance", "wall (s)"
        );
        for pt in &self.points {
            let _ = writeln!(
                out,
                "{:>6} {:>14.6} {:>10.2} {:>10} {:>12} {:>11.3} {:>10.3}",
                pt.ranks,
                pt.modeled_seconds,
                pt.speedup,
                pt.messages,
                pt.bytes,
                pt.load_imbalance_ratio,
                pt.wall_seconds
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_reports_every_point() {
        // Keep the unit test cheap: two small rank counts on a tiny
        // pool still exercise compile-once + per-p engine + metrics.
        let spec = ScaleSpec {
            ranks: vec![2, 8],
            workers: Some(2),
            ..ScaleSpec::default()
        };
        let report = run_scale(&spec).expect("sweep runs");
        assert_eq!(report.app, "cg");
        assert_eq!(report.workers, 2);
        assert!(report.t0 > 0.0);
        assert_eq!(report.points.len(), 2);
        for (pt, &p) in report.points.iter().zip(&spec.ranks) {
            assert_eq!(pt.ranks, p);
            assert!(pt.modeled_seconds > 0.0);
            assert!(pt.speedup > 0.0);
            assert!(pt.load_imbalance_ratio >= 1.0);
            assert!(pt.messages > 0, "p={p} must communicate");
        }
        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(SCALE_SCHEMA)
        );
        assert!(report.render().contains("speedup"));
    }

    #[test]
    fn unknown_app_is_an_error() {
        let spec = ScaleSpec {
            app_id: "nope".to_string(),
            ranks: vec![2],
            ..ScaleSpec::default()
        };
        let err = run_scale(&spec).expect_err("must reject");
        assert!(err.to_string().contains("unknown app"));
    }
}
