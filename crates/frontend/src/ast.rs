//! Abstract syntax tree for the MATLAB subset.
//!
//! Pass 1 of the paper builds a parse tree and augments it with links
//! "to simplify code analysis", yielding an AST. We build the AST
//! directly. Nodes carry [`Span`]s; names are plain strings until the
//! resolution pass (`otter-analysis`) classifies them as variables or
//! functions.

use crate::span::Span;
use std::fmt;

/// Binary operators as they appear in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*` — matrix multiply when either operand has matrix rank.
    Mul,
    /// `/` — matrix right division; element division for scalars.
    Div,
    /// `\` — matrix left division (solve).
    LeftDiv,
    /// `^` — matrix power for matrix base, scalar power otherwise.
    Pow,
    /// `.*`
    ElemMul,
    /// `./`
    ElemDiv,
    /// `.\`
    ElemLeftDiv,
    /// `.^`
    ElemPow,
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    And,
    /// `|`
    Or,
}

impl BinOp {
    /// True for operators that apply element-by-element regardless of
    /// operand rank (comparisons, logicals, and the dotted family, plus
    /// `+`/`-`, which are element-wise in MATLAB).
    pub fn is_elementwise(self) -> bool {
        !matches!(self, BinOp::Mul | BinOp::Div | BinOp::LeftDiv | BinOp::Pow)
    }

    /// True for comparison/logical operators, whose result is a 0/1
    /// "logical" value (we give them integer type).
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }

    /// MATLAB surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::LeftDiv => "\\",
            BinOp::Pow => "^",
            BinOp::ElemMul => ".*",
            BinOp::ElemDiv => "./",
            BinOp::ElemLeftDiv => ".\\",
            BinOp::ElemPow => ".^",
            BinOp::Eq => "==",
            BinOp::Ne => "~=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&",
            BinOp::Or => "|",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `+` (no-op, kept for faithful pretty-printing)
    Plus,
    /// `~`
    Not,
}

impl UnOp {
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Plus => "+",
            UnOp::Not => "~",
        }
    }
}

/// Transpose flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransposeOp {
    /// `'` — conjugate transpose.
    Conjugate,
    /// `.'` — plain transpose.
    Plain,
}

/// An expression node with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Synthesized expression with no real source location.
    pub fn synth(kind: ExprKind) -> Self {
        Expr {
            kind,
            span: Span::DUMMY,
        }
    }

    /// Integer-literal convenience constructor.
    pub fn int(v: i64) -> Self {
        Expr::synth(ExprKind::Number {
            value: v as f64,
            is_int: true,
        })
    }

    /// Variable-reference convenience constructor.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::synth(ExprKind::Ident(name.into()))
    }

    /// Walk this expression and all sub-expressions, outer-first.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Number { .. }
            | ExprKind::Str(_)
            | ExprKind::Ident(_)
            | ExprKind::Colon
            | ExprKind::EndKeyword => {}
            ExprKind::Unary { operand, .. } => operand.walk(f),
            ExprKind::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Transpose { operand, .. } => operand.walk(f),
            ExprKind::Range { start, step, stop } => {
                start.walk(f);
                if let Some(s) = step {
                    s.walk(f);
                }
                stop.walk(f);
            }
            ExprKind::Index { args, .. } | ExprKind::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Matrix(rows) => {
                for row in rows {
                    for e in row {
                        e.walk(f);
                    }
                }
            }
        }
    }

    /// Collect the free identifier names referenced by this expression
    /// (callee names of `Call` included — before resolution, callers
    /// cannot tell variables and functions apart, same as the paper's
    /// pass 2 problem statement).
    pub fn idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| match &e.kind {
            ExprKind::Ident(n) => out.push(n.clone()),
            ExprKind::Index { base, .. } => out.push(base.clone()),
            ExprKind::Call { callee, .. } => out.push(callee.clone()),
            _ => {}
        });
        out
    }
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Numeric literal; `is_int` feeds the type lattice.
    Number { value: f64, is_int: bool },
    /// String literal.
    Str(String),
    /// A name, not yet classified as variable or function.
    Ident(String),
    /// `start:stop` or `start:step:stop`.
    Range {
        start: Box<Expr>,
        step: Option<Box<Expr>>,
        stop: Box<Expr>,
    },
    /// Bare `:` inside an index (whole dimension).
    Colon,
    /// `end` inside an index (last element of the dimension).
    EndKeyword,
    /// Unary operator application.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Binary operator application.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Postfix transpose.
    Transpose { op: TransposeOp, operand: Box<Expr> },
    /// `name(args)` when resolution has classified `name` as a
    /// *variable*: matrix indexing.
    Index { base: String, args: Vec<Expr> },
    /// `name(args)` when `name` is (or may be) a *function*. The parser
    /// emits every `name(args)` as `Call`; resolution rewrites the
    /// variable cases to `Index`.
    Call { callee: String, args: Vec<Expr> },
    /// `[a, b; c, d]` matrix literal: rows of element expressions.
    Matrix(Vec<Vec<Expr>>),
}

/// Assignment target: `x` or `x(indices)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    pub name: String,
    /// `None` for whole-variable assignment; `Some` for indexed stores.
    pub indices: Option<Vec<Expr>>,
    pub span: Span,
}

impl LValue {
    pub fn whole(name: impl Into<String>) -> Self {
        LValue {
            name: name.into(),
            indices: None,
            span: Span::DUMMY,
        }
    }
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
    /// True when the statement was *not* terminated by `;`, i.e. MATLAB
    /// would echo its result.
    pub display: bool,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Bare expression (result would be echoed unless suppressed).
    Expr(Expr),
    /// `lhs = rhs`.
    Assign {
        lhs: LValue,
        rhs: Expr,
    },
    /// `[a, b] = f(...)` — multiple return values.
    MultiAssign {
        lhs: Vec<LValue>,
        rhs: Expr,
    },
    /// `if`/`elseif` chain with optional `else`.
    If {
        arms: Vec<(Expr, Block)>,
        else_body: Option<Block>,
    },
    /// `while cond ... end`.
    While {
        cond: Expr,
        body: Block,
    },
    /// `for var = range ... end`.
    For {
        var: String,
        iter: Expr,
        body: Block,
    },
    Break,
    Continue,
    Return,
    /// `global a b c`.
    Global(Vec<String>),
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// An M-file function definition:
/// `function [outs] = name(params)` + body.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub params: Vec<String>,
    pub outs: Vec<String>,
    pub body: Block,
    pub span: Span,
}

/// A parsed M-file: either a script (statements, no params/returns) or
/// one or more function definitions (first is the file's public one).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Script-level statements (empty for pure function files).
    pub script: Block,
    /// Function definitions found in the file.
    pub functions: Vec<Function>,
}

impl SourceFile {
    /// True if the file has no script part (a function M-file).
    pub fn is_function_file(&self) -> bool {
        self.script.is_empty() && !self.functions.is_empty()
    }
}

/// A whole MATLAB *program*: the original script plus every reachable
/// M-file function, as assembled by identifier resolution (paper §3,
/// "at the end of this pass every M-file in the user's program has
/// been added to the AST").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub script: Block,
    pub functions: Vec<Function>,
}

impl Program {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total statement count, script plus every function body,
    /// recursing into control-flow bodies — the AST-side size metric
    /// reported by per-pass compiler statistics.
    pub fn stmt_count(&self) -> usize {
        block_stmt_count(&self.script)
            + self
                .functions
                .iter()
                .map(|f| block_stmt_count(&f.body))
                .sum::<usize>()
    }
}

/// Count the statements in a block, recursing into nested bodies.
pub fn block_stmt_count(block: &Block) -> usize {
    block
        .iter()
        .map(|s| match &s.kind {
            StmtKind::If { arms, else_body } => {
                1 + arms.iter().map(|(_, b)| block_stmt_count(b)).sum::<usize>()
                    + else_body.as_ref().map_or(0, block_stmt_count)
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => 1 + block_stmt_count(body),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_classification() {
        assert!(BinOp::Add.is_elementwise());
        assert!(BinOp::ElemMul.is_elementwise());
        assert!(!BinOp::Mul.is_elementwise());
        assert!(!BinOp::LeftDiv.is_elementwise());
        assert!(BinOp::Lt.is_elementwise());
    }

    #[test]
    fn predicate_classification() {
        assert!(BinOp::Eq.is_predicate());
        assert!(BinOp::And.is_predicate());
        assert!(!BinOp::Add.is_predicate());
        assert!(!BinOp::ElemMul.is_predicate());
    }

    #[test]
    fn idents_collects_nested_names() {
        // b * c + d(i,j) — from the paper's running example.
        let e = Expr::synth(ExprKind::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::synth(ExprKind::Binary {
                op: BinOp::Mul,
                lhs: Box::new(Expr::var("b")),
                rhs: Box::new(Expr::var("c")),
            })),
            rhs: Box::new(Expr::synth(ExprKind::Call {
                callee: "d".into(),
                args: vec![Expr::var("i"), Expr::var("j")],
            })),
        });
        let mut names = e.idents();
        names.sort();
        assert_eq!(names, vec!["b", "c", "d", "i", "j"]);
    }

    #[test]
    fn walk_visits_matrix_elements() {
        let e = Expr::synth(ExprKind::Matrix(vec![
            vec![Expr::int(1), Expr::var("x")],
            vec![Expr::var("y"), Expr::int(2)],
        ]));
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 5); // matrix + 4 elements
    }

    #[test]
    fn function_lookup() {
        let p = Program {
            script: vec![],
            functions: vec![Function {
                name: "trapz2".into(),
                params: vec!["x".into()],
                outs: vec!["s".into()],
                body: vec![],
                span: Span::DUMMY,
            }],
        };
        assert!(p.function("trapz2").is_some());
        assert!(p.function("nope").is_none());
    }
}
