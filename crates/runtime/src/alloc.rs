//! Per-thread accounting of live distributed-matrix memory.
//!
//! Every [`crate::DistMatrix`] registers its local block here on
//! construction and deregisters on drop, giving each rank (one OS
//! thread in this reproduction) a live-byte counter and a high-water
//! mark. The executor resets the counters at program start and reads
//! the peak at program end; unlike the named-workspace peak it counts
//! *every* allocation, including compiler temporaries — the paper's
//! §4 point that the run-time library both allocates and de-allocates
//! is what keeps this curve flat.
//!
//! Counters are thread-local because ranks are threads: no locks on
//! the allocation path, and a sequential caller sees exactly its own
//! traffic.

use std::cell::Cell;

thread_local! {
    static LIVE_BYTES: Cell<usize> = const { Cell::new(0) };
    static PEAK_BYTES: Cell<usize> = const { Cell::new(0) };
}

/// Reset this thread's counters (call at the start of a measured run).
pub fn reset() {
    LIVE_BYTES.with(|c| c.set(0));
    PEAK_BYTES.with(|c| c.set(0));
}

/// Bytes of distributed-matrix storage currently live on this thread.
pub fn live_bytes() -> usize {
    LIVE_BYTES.with(Cell::get)
}

/// High-water mark since the last [`reset`].
pub fn peak_bytes() -> usize {
    PEAK_BYTES.with(Cell::get)
}

pub(crate) fn note_alloc(bytes: usize) {
    LIVE_BYTES.with(|live| {
        let now = live.get() + bytes;
        live.set(now);
        PEAK_BYTES.with(|peak| {
            if now > peak.get() {
                peak.set(now);
            }
        });
    });
}

pub(crate) fn note_free(bytes: usize) {
    // Saturating: a matrix allocated before the last reset() may be
    // dropped after it.
    LIVE_BYTES.with(|live| live.set(live.get().saturating_sub(bytes)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water() {
        reset();
        note_alloc(100);
        note_alloc(200);
        note_free(100);
        note_alloc(50);
        assert_eq!(live_bytes(), 250);
        assert_eq!(peak_bytes(), 300);
        reset();
        assert_eq!(live_bytes(), 0);
        assert_eq!(peak_bytes(), 0);
    }

    #[test]
    fn free_saturates_across_reset() {
        reset();
        note_alloc(10);
        reset();
        note_free(10); // allocated before the reset — must not underflow
        assert_eq!(live_bytes(), 0);
    }
}
