//! # otter-analysis
//!
//! The analysis passes of the Otter compiler (paper §3, passes 2-3):
//!
//! * **Identifier resolution** ([`resolve()`](resolve::resolve)) — classify names as
//!   variables vs functions, load every reachable M-file, rewrite
//!   `name(args)` ambiguities into explicit indexing.
//! * **Static single assignment + web coalescing** ([`ssa`]) — the
//!   paper's answer to MATLAB variables changing attributes at run
//!   time: straight-line redefinitions split into separate compiler
//!   variables, while φ-connected versions coalesce back into one.
//! * **Type/rank/shape inference** ([`infer()`](infer::infer)) — forward abstract
//!   interpretation over the lattice of (literal/integer/real/complex)
//!   × (scalar/matrix) × shape, with integer-constant propagation so
//!   `zeros(n, n)` gets a static shape, and sample-data files typing
//!   `load`ed inputs.
//!
//! Expression rewriting (pass 4), owner-computes guards (pass 5), and
//! peephole optimization (pass 6) operate on the IR and live in
//! `otter-codegen`.

pub mod builtins;
pub mod error;
pub mod infer;
pub mod resolve;
pub mod ssa;
pub mod types;

pub use error::AnalysisError;
pub use infer::{binary_result_type, infer, FuncSig, InferOptions, Inference, ScopeTypes};
pub use resolve::{resolve, resolve_program, Resolved};
pub use ssa::{ssa_rename, SsaInfo};
pub use types::{BaseTy, Dim, RankTy, Shape, VarTy};
