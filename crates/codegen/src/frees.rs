//! Temporary de-allocation (paper §4: "The run-time library is
//! responsible for the allocation and de-allocation of vectors and
//! matrices").
//!
//! The compiler's `ML_tmp*` temporaries are single-assignment; this
//! pass inserts an explicit [`Instr::Free`] after each temporary's
//! last use in its defining block, so a rank's live memory tracks the
//! program's actual working set instead of accumulating every
//! intermediate — which is what makes the paper's §7 "larger problems"
//! memory argument hold for long scripts.

use otter_ir::*;

/// Insert `Free` instructions for dead temporaries. `live_out` names
/// must never be freed (a `while` condition's inputs, function
/// outputs).
pub fn insert_frees(p: &mut IrProgram) -> usize {
    let mut count = 0;
    process_block(&mut p.main, &[], &mut count);
    for f in p.functions.values_mut() {
        let outs: Vec<String> = f.outs.iter().map(|(n, _)| n.clone()).collect();
        process_block(&mut f.body, &outs, &mut count);
    }
    count
}

fn is_temp(name: &str) -> bool {
    name.starts_with("ML_tmp")
}

fn process_block(block: &mut Vec<Instr>, live_out: &[String], count: &mut usize) {
    // Recurse first, threading while-condition liveness exactly like
    // the peephole pass.
    for instr in block.iter_mut() {
        match instr {
            Instr::If {
                then_body,
                else_body,
                ..
            } => {
                process_block(then_body, live_out, count);
                process_block(else_body, live_out, count);
            }
            Instr::While { pre, cond, body } => {
                let mut live = live_out.to_vec();
                sexpr_reads(cond, &mut live);
                let mut pre_reads = Vec::new();
                for i in pre.iter() {
                    crate::peephole::instr_reads(i, &mut pre_reads);
                }
                let mut body_live = live.clone();
                body_live.extend(pre_reads);
                process_block(pre, &live, count);
                process_block(body, &body_live, count);
            }
            Instr::For { body, .. } => process_block(body, live_out, count),
            _ => {}
        }
    }
    // Find each temp's defining index and last-use index in this block.
    let mut i = 0;
    while i < block.len() {
        let Some(dst) = crate::peephole::instr_dst(&block[i]) else {
            i += 1;
            continue;
        };
        if !is_temp(&dst) || matches!(block[i], Instr::Free { .. }) || live_out.contains(&dst) {
            i += 1;
            continue;
        }
        // Last index in the rest of the block that reads `dst`.
        let mut last_use: Option<usize> = None;
        for (off, instr) in block[i + 1..].iter().enumerate() {
            let mut reads = Vec::new();
            crate::peephole::instr_reads(instr, &mut reads);
            if reads.iter().any(|r| r == &dst) {
                last_use = Some(i + 1 + off);
            }
            // A later redefinition of the same temp cannot happen
            // (single-assignment), so no def check needed.
        }
        match last_use {
            Some(u) => {
                // Freeing is only sound if the last use is a direct
                // instruction, not a nested block that may re-execute
                // (loops): freeing after a loop body's last iteration
                // is fine since the use is within the loop instr,
                // which completes before the Free runs.
                block.insert(u + 1, Instr::Free { name: dst });
                *count += 1;
                // Skip past the insertion point.
                i += 1;
            }
            None => {
                // Dead temp (possible when the peephole pass was
                // disabled): free immediately after definition.
                block.insert(i + 1, Instr::Free { name: dst });
                *count += 1;
                i += 2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frees_after_last_use() {
        let mut p = IrProgram {
            main: vec![
                Instr::MatMul {
                    dst: "ML_tmp1".into(),
                    a: "b".into(),
                    b: "c".into(),
                },
                Instr::Reduce {
                    dst: "s".into(),
                    op: RedOp::SumAll,
                    m: "ML_tmp1".into(),
                },
                Instr::AssignScalar {
                    dst: "t".into(),
                    src: SExpr::var("s"),
                },
            ],
            ..Default::default()
        };
        let n = insert_frees(&mut p);
        assert_eq!(n, 1);
        assert_eq!(
            p.main[2],
            Instr::Free {
                name: "ML_tmp1".into()
            }
        );
        assert_eq!(p.main.len(), 4);
    }

    #[test]
    fn temp_used_inside_loop_freed_after_loop() {
        let mut p = IrProgram {
            main: vec![
                Instr::InitMatrix {
                    dst: "ML_tmp1".into(),
                    init: MatInit::Ones {
                        rows: SExpr::c(4.0),
                        cols: SExpr::c(1.0),
                    },
                },
                Instr::For {
                    var: "i".into(),
                    start: SExpr::c(1.0),
                    step: SExpr::c(1.0),
                    stop: SExpr::c(3.0),
                    body: vec![Instr::Reduce {
                        dst: "s".into(),
                        op: RedOp::SumAll,
                        m: "ML_tmp1".into(),
                    }],
                },
            ],
            ..Default::default()
        };
        insert_frees(&mut p);
        // Free comes after the whole For.
        assert!(matches!(p.main[2], Instr::Free { .. }), "{:?}", p.main);
    }

    #[test]
    fn while_condition_inputs_not_freed() {
        let mut p = IrProgram {
            main: vec![Instr::While {
                pre: vec![Instr::Reduce {
                    dst: "ML_tmp9".into(),
                    op: RedOp::Norm2,
                    m: "r".into(),
                }],
                cond: SExpr::bin(SBinOp::Gt, SExpr::var("ML_tmp9"), SExpr::c(0.5)),
                body: vec![],
            }],
            ..Default::default()
        };
        insert_frees(&mut p);
        let Instr::While { pre, .. } = &p.main[0] else {
            panic!()
        };
        assert!(
            !pre.iter().any(|i| matches!(i, Instr::Free { .. })),
            "condition input must stay live: {pre:?}"
        );
    }

    #[test]
    fn user_variables_never_freed() {
        let mut p = IrProgram {
            main: vec![Instr::MatMul {
                dst: "c".into(),
                a: "a".into(),
                b: "b".into(),
            }],
            ..Default::default()
        };
        let n = insert_frees(&mut p);
        assert_eq!(n, 0);
    }
}
