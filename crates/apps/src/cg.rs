//! Benchmark 1 — conjugate gradient (paper §5):
//! "solves a positive definite system of 2048 linear equations using
//! the conjugate gradient algorithm. The program makes extensive use
//! of matrix-vector multiplication and vector dot product."
//!
//! The paper's right-hand side is unavailable; we synthesize a
//! symmetric positive-definite system deterministically:
//! `A = u'·u + n·I + D` where `u` is a smooth vector and `D` a
//! diagonal-like perturbation built from a second outer product —
//! guaranteed SPD (Gershgorin), non-trivial spectrum, identical in
//! every engine.

use crate::App;

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of equations.
    pub n: usize,
    /// CG iterations (fixed count keeps runs comparable; the residual
    /// check still exits early when converged).
    pub iters: usize,
    /// Convergence tolerance.
    pub tol: f64,
}

impl Params {
    /// Paper scale: 2048 equations.
    pub fn paper() -> Params {
        Params {
            n: 2048,
            iters: 50,
            tol: 1e-10,
        }
    }

    /// Test scale.
    pub fn test() -> Params {
        Params {
            n: 96,
            iters: 25,
            tol: 1e-10,
        }
    }

    /// Large scale: big enough that kernel wall time dominates the
    /// executor's per-instruction overhead, small enough for CI.
    pub fn large() -> Params {
        Params {
            n: 512,
            iters: 40,
            tol: 1e-10,
        }
    }
}

/// Build the CG benchmark script.
pub fn conjugate_gradient(p: Params) -> App {
    let Params { n, iters, tol } = p;
    let script = format!(
        "\
% Conjugate gradient solver for A x = b, A symmetric positive definite.
n = {n};
maxit = {iters};
tol = {tol};
u = (1:n) / n;
w = cos(u * 6.28318530717958647692);
A = u' * u + w' * w + n * eye(n);
xstar = ones(n, 1);
b = A * xstar;
x = zeros(n, 1);
r = b - A * x;
pd = r;
rho = r' * r;
for it = 1:maxit
  q = A * pd;
  alpha = rho / (pd' * q);
  x = x + alpha * pd;
  r = r - alpha * q;
  rhonew = r' * r;
  if sqrt(rhonew) < tol
    rho = rhonew;
    break;
  end
  beta = rhonew / rho;
  pd = r + beta * pd;
  rho = rhonew;
end
resid = sqrt(rho);
err = norm(x - xstar);
"
    );
    App {
        name: "Conjugate Gradient",
        id: "cg",
        script,
        result_vars: vec!["resid", "err"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_converges_to_known_solution() {
        let app = conjugate_gradient(Params::test());
        let out = otter_interp::run_script(&app.script, None)
            .unwrap_or_else(|e| panic!("{e}\n{}", app.script));
        let err = out.scalar("err").unwrap();
        assert!(err < 1e-6, "CG did not converge: err={err}");
        let resid = out.scalar("resid").unwrap();
        assert!(resid < 1e-6, "resid={resid}");
    }

    #[test]
    fn fixed_iteration_budget_respected() {
        // With an impossible tolerance the loop runs to maxit and
        // still produces a finite answer.
        let app = conjugate_gradient(Params {
            n: 32,
            iters: 4,
            tol: 0.0,
        });
        let out = otter_interp::run_script(&app.script, None).unwrap();
        assert!(out.scalar("resid").unwrap().is_finite());
    }
}
