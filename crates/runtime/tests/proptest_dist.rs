//! Property tests for the distribution math and the distributed
//! run-time library, with the dense kernel as oracle.

use otter_machine::meiko_cs2;
use otter_mpi::run_spmd;
use otter_rt::{Block, Dense, DistMatrix};
use proptest::prelude::*;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The block partition is exactly that: disjoint, contiguous,
    /// covering, balanced.
    #[test]
    fn block_partition_invariants(n in 0usize..300, p in 1usize..17) {
        let b = Block::new(n, p);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        let mut max_c = 0usize;
        let mut min_c = usize::MAX;
        for r in 0..p {
            prop_assert_eq!(b.start(r), prev_end, "contiguous");
            covered += b.count(r);
            prev_end = b.end(r);
            max_c = max_c.max(b.count(r));
            min_c = min_c.min(b.count(r));
        }
        prop_assert_eq!(covered, n, "covering");
        prop_assert!(max_c - min_c <= 1, "balanced");
        for i in 0..n {
            let o = b.owner(i);
            prop_assert!(b.range(o).contains(&i), "owner consistent");
            prop_assert_eq!(b.start(o) + b.to_local(i), i, "local round-trip");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Distribute → gather is the identity for any shape and p.
    #[test]
    fn scatter_gather_identity(
        rows in 1usize..12,
        cols in 1usize..12,
        p in 1usize..9,
        seed in any::<u64>(),
    ) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|k| ((k as u64).wrapping_mul(seed | 1) % 1000) as f64 / 7.0)
            .collect();
        let d = Dense::from_vec(rows, cols, data);
        let dd = d.clone();
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            DistMatrix::from_replicated(c, &dd).gather_all(c)
        });
        for r in &res {
            prop_assert_eq!(&r.value, &d);
        }
    }

    /// Distributed matmul equals dense matmul for random shapes.
    #[test]
    fn matmul_matches_dense(
        m in 1usize..10,
        k in 2usize..10,
        n in 2usize..10,
        p in 1usize..7,
        seed in any::<u64>(),
    ) {
        let gen = |rows: usize, cols: usize, salt: u64| {
            Dense::from_vec(
                rows,
                cols,
                (0..rows * cols)
                    .map(|i| (((i as u64 + salt).wrapping_mul(seed | 3)) % 17) as f64 - 8.0)
                    .collect(),
            )
        };
        let a = gen(m, k, 1);
        let b = gen(k, n, 2);
        let oracle = a.matmul(&b);
        let (aa, bb) = (a, b);
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let da = DistMatrix::from_replicated(c, &aa);
            let db = DistMatrix::from_replicated(c, &bb);
            da.matmul(c, &db).gather_all(c)
        });
        for (x, y) in res[0].value.data().iter().zip(oracle.data()) {
            prop_assert!(close(*x, *y), "{x} vs {y}");
        }
    }

    /// Reductions on distributed data equal dense reductions.
    #[test]
    fn reductions_match_dense(
        len in 1usize..60,
        p in 1usize..9,
        seed in any::<u64>(),
    ) {
        let v: Vec<f64> = (0..len)
            .map(|i| (((i as u64).wrapping_mul(seed | 5)) % 1001) as f64 / 13.0 - 30.0)
            .collect();
        let d = Dense::row_vector(&v);
        let (sum0, max0, min0, norm0, trapz0) =
            (d.sum_all(), d.max_all(), d.min_all(), d.norm2(), d.trapz());
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let x = DistMatrix::from_replicated(c, &d);
            (x.sum_all(c), x.max_all(c), x.min_all(c), x.norm2(c), x.trapz(c))
        });
        for r in &res {
            prop_assert!(close(r.value.0, sum0));
            prop_assert_eq!(r.value.1, max0);
            prop_assert_eq!(r.value.2, min0);
            prop_assert!(close(r.value.3, norm0));
            prop_assert!(close(r.value.4, trapz0));
        }
    }

    /// circshift matches the dense oracle for any shift.
    #[test]
    fn circshift_matches_dense(
        len in 1usize..40,
        p in 1usize..8,
        k in -100i64..100,
        seed in any::<u64>(),
    ) {
        let v: Vec<f64> = (0..len).map(|i| ((i as u64 ^ seed) % 97) as f64).collect();
        let d = Dense::row_vector(&v);
        let oracle = d.circshift(k);
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            DistMatrix::from_replicated(c, &d).circshift(c, k).gather_all(c)
        });
        for r in &res {
            prop_assert_eq!(&r.value, &oracle, "len={} p={} k={}", len, p, k);
        }
    }

    /// Transpose is an involution and matches dense.
    #[test]
    fn transpose_matches_dense(
        rows in 1usize..10,
        cols in 1usize..10,
        p in 1usize..6,
    ) {
        let d = Dense::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|k| k as f64 * 1.5).collect(),
        );
        let oracle = d.transpose();
        let dd = d.clone();
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let m = DistMatrix::from_replicated(c, &dd);
            let t = m.transpose(c);
            let tt = t.transpose(c);
            (t.gather_all(c), tt.gather_all(c))
        });
        prop_assert_eq!(&res[0].value.0, &oracle);
        prop_assert_eq!(&res[0].value.1, &d);
    }

    /// Every element has exactly one owner, on every rank count.
    #[test]
    fn owner_is_a_partition(rows in 1usize..14, cols in 1usize..6, p in 1usize..9) {
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let m = DistMatrix::zeros(c, rows, cols);
            let mut owned = 0usize;
            for i in 0..rows {
                for j in 0..cols {
                    if m.is_owner(i, j) {
                        owned += 1;
                    }
                }
            }
            owned
        });
        let total: usize = res.iter().map(|r| r.value).sum();
        prop_assert_eq!(total, rows * cols);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Column reductions (sum/mean/prod/max/min/any/all) match the
    /// dense kernel for every shape and rank count.
    #[test]
    fn column_reductions_match_dense(
        rows in 1usize..10,
        cols in 1usize..7,
        p in 1usize..6,
        seed in any::<u64>(),
    ) {
        let d = Dense::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|k| (((k as u64).wrapping_mul(seed | 7)) % 7) as f64 - 3.0)
                .collect(),
        );
        let oracle = (
            d.sum(),
            d.mean(),
            d.prod(),
            d.max(),
            d.min(),
            d.any(),
            d.all(),
        );
        let dd = d.clone();
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let m = DistMatrix::from_replicated(c, &dd);
            (
                m.sum(c).gather_all(c),
                m.mean(c).gather_all(c),
                m.prod(c).gather_all(c),
                m.max(c).gather_all(c),
                m.min(c).gather_all(c),
                m.any(c).gather_all(c),
                m.all(c).gather_all(c),
            )
        });
        let got = &res[0].value;
        for (i, (g, o)) in [
            (&got.0, &oracle.0),
            (&got.1, &oracle.1),
            (&got.2, &oracle.2),
            (&got.3, &oracle.3),
            (&got.4, &oracle.4),
            (&got.5, &oracle.5),
            (&got.6, &oracle.6),
        ]
        .into_iter()
        .enumerate()
        {
            prop_assert_eq!((g.rows(), g.cols()), (o.rows(), o.cols()), "op {} shape", i);
            for (x, y) in g.data().iter().zip(o.data()) {
                prop_assert!(close(*x, *y), "op {}: {} vs {} (rows={rows} cols={cols} p={p})", i, x, y);
            }
        }
    }
}
