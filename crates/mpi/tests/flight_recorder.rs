//! Property tests for the always-on flight recorder: its memory is
//! bounded by `recorder_capacity` at every rank count, what survives
//! is exactly the *last* window of events (contiguous, oldest-first),
//! and small jobs that never overflow keep their full history.

use otter_machine::meiko_cs2;
use otter_mpi::{run_spmd_with, Comm, CommError, ReduceOp, SpmdOptions};

/// A message-heavy body: every round does modeled compute, a ring
/// exchange (when there are peers), and an allreduce — several flight
/// events per round on every rank, at any `p`.
fn chatty(c: &mut Comm, rounds: usize) -> Result<u64, CommError> {
    let p = c.size();
    let mut acc = 0.0;
    for i in 0..rounds {
        c.compute(1e3);
        if p > 1 {
            let to = (c.rank() + 1) % p;
            let from = (c.rank() + p - 1) % p;
            c.send(to, &[i as f64])?;
            acc += c.recv(from)?[0];
        }
        acc += c.allreduce_scalar(1.0, ReduceOp::Sum)?;
    }
    Ok(acc.to_bits())
}

#[test]
fn recorder_memory_is_bounded_at_every_rank_count() {
    const ROUNDS: usize = 16;
    for p in [1usize, 2, 4, 8] {
        for capacity in [1usize, 4, 8] {
            let opts = SpmdOptions {
                recorder_capacity: capacity,
                ..SpmdOptions::default()
            };
            let results = run_spmd_with(&meiko_cs2(), p, opts, |c| chatty(c, ROUNDS))
                .unwrap_or_else(|f| panic!("p={p} cap={capacity}: {}", f.report));
            assert_eq!(results.len(), p);
            for r in &results {
                // The bound: never more retained events than capacity.
                assert!(
                    r.flight.len() <= capacity,
                    "p={p} cap={capacity} rank={}: retained {} events",
                    r.rank,
                    r.flight.len()
                );
                // The job recorded far more than it retained (seq
                // counts every recorded event, retained or not), so
                // the ring really did overwrite — and once it has, it
                // stays exactly full.
                let last = r.flight.last().expect("chatty ranks record events");
                let recorded = last.seq + 1;
                assert!(
                    recorded > capacity as u64,
                    "p={p} cap={capacity} rank={}: only {recorded} events recorded; \
                     the fixture must overflow the ring to test the bound",
                    r.rank
                );
                assert_eq!(r.flight.len(), capacity, "overflowed rings are full");
                // What survives is the final contiguous window,
                // oldest first.
                for w in r.flight.windows(2) {
                    assert_eq!(w[1].seq, w[0].seq + 1, "rank {}: gap in tail", r.rank);
                }
            }
        }
    }
}

#[test]
fn small_jobs_keep_their_full_history() {
    let results = run_spmd_with(&meiko_cs2(), 4, SpmdOptions::default(), |c| chatty(c, 2))
        .expect("chatty job succeeds");
    for r in &results {
        let first = r.flight.first().expect("events recorded");
        assert_eq!(first.seq, 0, "nothing overwritten: history starts at 0");
        let last = r.flight.last().unwrap();
        assert_eq!(last.code, "rank.done");
        assert_eq!(
            r.flight.len() as u64,
            last.seq + 1,
            "under capacity, retained == recorded"
        );
    }
}
