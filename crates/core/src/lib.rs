//! # otter-core
//!
//! The Otter compiler driver and execution engines — the paper's
//! primary contribution assembled from the substrate crates:
//!
//! ```text
//! MATLAB script ──► otter-frontend (scan/parse)
//!                ──► otter-analysis (resolve, SSA, inference)
//!                ──► otter-codegen (rewrite → IR, peephole, C text)
//!                ──► otter-core::exec (SPMD execution over otter-rt / otter-mpi)
//! ```
//!
//! Three engines mirror the paper's evaluation:
//! [`run_interpreter`] (the MathWorks baseline),
//! [`run_matcom`] (the commercial sequential compiler baseline), and
//! [`run_otter`] (compile + SPMD execution on a modeled machine).
//!
//! ```
//! use otter_core::{compile_str, run_compiled};
//! use otter_machine::meiko_cs2;
//!
//! let compiled = compile_str("a = [1, 2; 3, 4];\nb = a * a;\ns = sum(b(:, 1));").unwrap();
//! assert!(compiled.c_source.contains("ML_matrix_multiply"));
//! let run = run_compiled(&compiled, &meiko_cs2(), 4).unwrap();
//! assert_eq!(run.scalar("s"), Some(22.0));
//! ```

pub mod compile;
pub mod engines;
pub mod error;
pub mod exec;

pub use compile::{compile, compile_str, CompileOptions, Compiled};
pub use engines::{
    run_compiled, run_interpreter, run_matcom, run_otter, BaselineOptions, EngineRun,
};
pub use error::OtterError;
pub use exec::{ExecOptions, Executor, XVal};

#[cfg(test)]
mod tests;
