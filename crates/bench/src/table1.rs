//! Table 1 — "Experimental and commercial MATLAB-based systems
//! targeting parallel computers. Only FALCON and Otter generate
//! parallel code from pure MATLAB (i.e., MATLAB without any
//! extensions)."
//!
//! A static reproduction of the paper's survey table.

/// One surveyed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct System {
    pub name: &'static str,
    pub site: &'static str,
    pub implementation: &'static str,
    /// Accepts *pure* MATLAB and emits parallel code.
    pub pure_matlab_parallel: bool,
}

/// The paper's Table 1.
pub const TABLE1: &[System] = &[
    System {
        name: "MATLAB Toolbox",
        site: "University of Rostock, Germany",
        implementation: "Interpreter",
        pure_matlab_parallel: false,
    },
    System {
        name: "MultiMATLAB",
        site: "Cornell University",
        implementation: "Interpreter",
        pure_matlab_parallel: false,
    },
    System {
        name: "Parallel Toolbox",
        site: "Wake Forest University",
        implementation: "Interpreter",
        pure_matlab_parallel: false,
    },
    System {
        name: "Paramat",
        site: "Alpha Data Parallel Systems, UK",
        implementation: "Interpreter",
        pure_matlab_parallel: false,
    },
    System {
        name: "CONLAB",
        site: "University of Umea, Sweden",
        implementation: "Compiles to C/PICL",
        pure_matlab_parallel: false,
    },
    System {
        name: "FALCON",
        site: "University of Illinois",
        implementation: "Compiles to Fortran 90",
        pure_matlab_parallel: true,
    },
    System {
        name: "RTExpress",
        site: "Integrated Sensors",
        implementation: "Compiles to C/MPI",
        pure_matlab_parallel: false,
    },
    System {
        name: "Otter",
        site: "Oregon State University",
        implementation: "Compiles to C/MPI",
        pure_matlab_parallel: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_systems_surveyed() {
        assert_eq!(TABLE1.len(), 8);
    }

    #[test]
    fn only_falcon_and_otter_are_pure_parallel() {
        let pure: Vec<&str> = TABLE1
            .iter()
            .filter(|s| s.pure_matlab_parallel)
            .map(|s| s.name)
            .collect();
        assert_eq!(pure, vec!["FALCON", "Otter"]);
    }
}
