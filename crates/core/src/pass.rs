//! The pass-manager spine of the compiler driver.
//!
//! The paper describes Otter as an explicit multi-pass pipeline
//! (§3: scan/parse, identifier resolution, SSA + type inference,
//! expression rewriting, owner-computes guards, peephole
//! optimization, then C emission). Each of those stages is a named
//! [`Pass`] here, registered in paper order on a [`PassManager`],
//! which times every pass, records before/after program statistics,
//! can disable optional passes (the peephole ablation), and can dump
//! the intermediate artifact after any pass (`otterc
//! --dump-after=<pass>`).

use crate::compile::{CompileOptions, Compiled};
use crate::error::{OtterError, Result};
use otter_analysis::{infer, resolve_program, ssa_rename, InferOptions, Inference};
use otter_codegen::peephole::PeepholeStats;
use otter_codegen::{emit_c, fuse, insert_frees, lower, peephole, FusionStats};
use otter_frontend::{parse, Program, Severity, SourceProvider};
use otter_ir::{Instr, IrProgram};
use otter_lint::{lint_program, LintMode, LintReport};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Everything a pass may read or write. Artifacts appear as the
/// pipeline advances: the AST after `parse`, inference results after
/// `ssa-infer`, IR after `rewrite`, C source after `emit-c`.
pub struct PipelineState<'a> {
    pub src: &'a str,
    pub provider: &'a dyn SourceProvider,
    pub opts: &'a CompileOptions,
    pub program: Option<Program>,
    pub inference: Option<Inference>,
    pub ir: Option<IrProgram>,
    pub c_source: Option<String>,
    pub peephole_stats: PeepholeStats,
    pub fusion_stats: FusionStats,
    pub guard_stats: GuardStats,
    pub lint: LintReport,
    pub analysis: Vec<otter_lint::oracle::SitePrediction>,
}

/// What the owner-computes guard pass found (pass 5). Lowering emits
/// the guards inline with each element store/fetch; this pass audits
/// and counts them so the construct is visible in compiler output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// `if (ML_owner(...))`-style guarded element stores.
    pub store_guards: usize,
    /// Owner-broadcast element fetches.
    pub broadcast_guards: usize,
}

/// One named unit of the compilation pipeline.
pub trait Pass {
    /// Stable name used by `--dump-after`, toggles, and reports.
    fn name(&self) -> &'static str;

    /// Whether the pass may be disabled (optional optimisations only).
    fn optional(&self) -> bool {
        false
    }

    /// Transform the pipeline state.
    fn run(&self, state: &mut PipelineState) -> Result<()>;

    /// Render the most relevant artifact after this pass ran.
    fn dump(&self, state: &PipelineState) -> String {
        if let Some(c) = &state.c_source {
            return c.clone();
        }
        if let Some(ir) = &state.ir {
            return otter_ir::display::program_to_string(ir);
        }
        if let Some(p) = &state.program {
            return otter_frontend::pretty::program_to_string(p);
        }
        state.src.to_string()
    }
}

/// Timing and size statistics for one executed pass.
#[derive(Debug, Clone, Copy)]
pub struct PassStats {
    pub name: &'static str,
    /// Host wall-clock time spent inside the pass.
    pub wall: Duration,
    /// AST statement count before/after.
    pub stmts_before: usize,
    pub stmts_after: usize,
    /// IR instruction count before/after (0 while no IR exists).
    pub ir_instrs_before: usize,
    pub ir_instrs_after: usize,
    /// Run-time library call count before/after.
    pub runtime_calls_before: usize,
    pub runtime_calls_after: usize,
}

/// Render per-pass compile timings as a metric snapshot: one
/// `compile_pass_seconds{pass=...}` histogram per executed pass (host
/// wall-clock — the only wall time in the metric set; everything the
/// run side records is modeled virtual time).
pub fn pass_metrics(passes: &[PassStats]) -> otter_metrics::MetricsSnapshot {
    let mut reg = otter_metrics::MetricsRegistry::new();
    for s in passes {
        reg.observe(
            "compile_pass_seconds",
            &[("pass", s.name)],
            s.wall.as_secs_f64(),
        );
    }
    reg.snapshot()
}

/// An artifact snapshot taken after a pass (for `--dump-after`).
#[derive(Debug, Clone)]
pub struct PassDump {
    pub pass: &'static str,
    pub text: String,
}

/// The result of a managed compilation: the compiled program plus the
/// per-pass record.
#[derive(Debug, Clone)]
pub struct CompileReport {
    pub compiled: Compiled,
    pub passes: Vec<PassStats>,
    pub dumps: Vec<PassDump>,
}

/// Which passes to snapshot for dumping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DumpRequest {
    #[default]
    None,
    /// One named pass.
    After(String),
    /// Every registered pass.
    All,
}

/// Runs registered passes in order with instrumentation.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    disabled: BTreeSet<String>,
    dump: DumpRequest,
}

impl PassManager {
    /// An empty manager (register passes yourself).
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            disabled: BTreeSet::new(),
            dump: DumpRequest::None,
        }
    }

    /// The standard pipeline, paper order: parse → resolve →
    /// ssa-infer → rewrite → guards → peephole (optional) → lint →
    /// frees → fusion (optional) → analyze → emit-c.
    pub fn standard() -> Self {
        let mut pm = PassManager::new();
        pm.register(Box::new(ParsePass));
        pm.register(Box::new(ResolvePass));
        pm.register(Box::new(SsaInferPass));
        pm.register(Box::new(RewritePass));
        pm.register(Box::new(GuardsPass));
        pm.register(Box::new(PeepholePass));
        pm.register(Box::new(LintPass));
        pm.register(Box::new(FreesPass));
        pm.register(Box::new(FusionPass));
        pm.register(Box::new(AnalyzePass));
        pm.register(Box::new(EmitCPass));
        pm
    }

    /// Append a pass.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Registered pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Disable an optional pass by name. Errors for unknown passes and
    /// for mandatory ones (you cannot ablate the parser).
    pub fn disable(&mut self, name: &str) -> Result<()> {
        let Some(pass) = self.passes.iter().find(|p| p.name() == name) else {
            return Err(OtterError::analysis(format!(
                "unknown pass `{name}` (registered: {})",
                self.pass_names().join(", ")
            )));
        };
        if !pass.optional() {
            return Err(OtterError::analysis(format!("pass `{name}` is mandatory")));
        }
        self.disabled.insert(name.to_string());
        Ok(())
    }

    /// Request an artifact dump after the named pass (or all passes).
    pub fn dump_after(&mut self, req: DumpRequest) -> Result<()> {
        if let DumpRequest::After(name) = &req {
            if !self.passes.iter().any(|p| p.name() == name) {
                return Err(OtterError::analysis(format!(
                    "unknown pass `{name}` (registered: {})",
                    self.pass_names().join(", ")
                )));
            }
        }
        self.dump = req;
        Ok(())
    }

    /// Run the full pipeline over a source script.
    pub fn compile(
        &self,
        src: &str,
        provider: &dyn SourceProvider,
        opts: &CompileOptions,
    ) -> Result<CompileReport> {
        let mut state = PipelineState {
            src,
            provider,
            opts,
            program: None,
            inference: None,
            ir: None,
            c_source: None,
            peephole_stats: PeepholeStats::default(),
            fusion_stats: FusionStats::default(),
            guard_stats: GuardStats::default(),
            lint: LintReport::default(),
            analysis: Vec::new(),
        };
        let mut stats = Vec::with_capacity(self.passes.len());
        let mut dumps = Vec::new();
        for pass in &self.passes {
            let name = pass.name();
            if self.disabled.contains(name) || opts.disabled_passes.iter().any(|d| d == name) {
                continue;
            }
            let (stmts_before, ir_instrs_before, runtime_calls_before) = measure(&state);
            let start = Instant::now();
            // Label errors with the concrete stage that failed: a rank
            // conflict raised inside `ssa-infer` reads `error[ssa-infer]`,
            // not the generic `error[analysis]`.
            pass.run(&mut state).map_err(|e| e.with_pass(name))?;
            let wall = start.elapsed();
            let (stmts_after, ir_instrs_after, runtime_calls_after) = measure(&state);
            stats.push(PassStats {
                name,
                wall,
                stmts_before,
                stmts_after,
                ir_instrs_before,
                ir_instrs_after,
                runtime_calls_before,
                runtime_calls_after,
            });
            let wanted = match &self.dump {
                DumpRequest::None => false,
                DumpRequest::All => true,
                DumpRequest::After(n) => n == name,
            };
            if wanted {
                dumps.push(PassDump {
                    pass: name,
                    text: pass.dump(&state),
                });
            }
        }
        let compiled = Compiled {
            ir: state.ir.take().ok_or_else(|| {
                OtterError::codegen("pipeline produced no IR (rewrite pass disabled?)")
            })?,
            inference: state.inference.take().ok_or_else(|| {
                OtterError::analysis("pipeline ran no inference (ssa-infer disabled?)")
            })?,
            c_source: state.c_source.take().unwrap_or_default(),
            peephole_stats: state.peephole_stats,
            fusion_stats: state.fusion_stats,
            guard_stats: state.guard_stats,
            lint: std::mem::take(&mut state.lint),
            analysis: std::mem::take(&mut state.analysis),
            data_dir: opts.data_dir.clone(),
        };
        Ok(CompileReport {
            compiled,
            passes: stats,
            dumps,
        })
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::standard()
    }
}

fn measure(state: &PipelineState) -> (usize, usize, usize) {
    (
        state.program.as_ref().map_or(0, |p| p.stmt_count()),
        state.ir.as_ref().map_or(0, |ir| ir.instr_count()),
        state.ir.as_ref().map_or(0, |ir| ir.runtime_call_count()),
    )
}

// ---- the standard passes --------------------------------------------------

/// Pass 1: scan + parse.
struct ParsePass;

impl Pass for ParsePass {
    fn name(&self) -> &'static str {
        "parse"
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let file = parse(state.src)?;
        state.program = Some(Program {
            script: file.script,
            functions: file.functions,
        });
        Ok(())
    }
}

/// Pass 2: identifier resolution + M-file loading.
struct ResolvePass;

impl Pass for ResolvePass {
    fn name(&self) -> &'static str {
        "resolve"
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let program = state.program.take().expect("parse ran");
        let resolved = resolve_program(program, state.provider)?;
        state.program = Some(resolved.program);
        Ok(())
    }
}

/// Pass 3: SSA web renaming + type/rank/shape inference.
struct SsaInferPass;

impl Pass for SsaInferPass {
    fn name(&self) -> &'static str {
        "ssa-infer"
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let mut program = state.program.take().expect("resolve ran");
        let info = ssa_rename(&program.script, &[]);
        program.script = info.block;
        for f in &mut program.functions {
            let finfo = ssa_rename(&f.body, &f.params);
            f.body = finfo.block;
        }
        let inference = infer(
            &program,
            InferOptions {
                data_dir: state.opts.data_dir.clone(),
            },
        )?;
        state.inference = Some(inference);
        state.program = Some(program);
        Ok(())
    }
}

/// Pass 4: expression rewriting — lower the typed AST to SPMD IR.
struct RewritePass;

impl Pass for RewritePass {
    fn name(&self) -> &'static str {
        "rewrite"
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let program = state.program.as_ref().expect("ssa-infer ran");
        let inference = state.inference.as_ref().expect("ssa-infer ran");
        state.ir = Some(lower(program, inference)?);
        Ok(())
    }
}

/// Pass 5: owner-computes guards. Lowering emits the guards inline
/// (`StoreElem` executes only on the owning rank; `BroadcastElem`
/// broadcasts from the owner), so this pass audits and counts those
/// constructs rather than inserting them: every guarded instruction
/// must target a variable the IR knows to be a distributed matrix.
struct GuardsPass;

impl Pass for GuardsPass {
    fn name(&self) -> &'static str {
        "guards"
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let ir = state.ir.as_ref().expect("rewrite ran");
        fn audit(
            body: &[Instr],
            stats: &mut GuardStats,
            known: &dyn Fn(&str) -> bool,
        ) -> Result<()> {
            for i in body {
                match i {
                    Instr::StoreElem { m, .. } => {
                        if !known(m) {
                            return Err(OtterError::codegen(format!(
                                "owner-computes guard targets unknown matrix `{m}`"
                            )));
                        }
                        stats.store_guards += 1;
                    }
                    Instr::BroadcastElem { m, .. } => {
                        if !known(m) {
                            return Err(OtterError::codegen(format!(
                                "owner broadcast reads unknown matrix `{m}`"
                            )));
                        }
                        stats.broadcast_guards += 1;
                    }
                    Instr::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        audit(then_body, stats, known)?;
                        audit(else_body, stats, known)?;
                    }
                    Instr::While { pre, body, .. } => {
                        audit(pre, stats, known)?;
                        audit(body, stats, known)?;
                    }
                    Instr::For { body, .. } => audit(body, stats, known)?,
                    _ => {}
                }
            }
            Ok(())
        }
        let mut stats = GuardStats::default();
        audit(&ir.main, &mut stats, &|name| {
            ir.var_ranks.contains_key(name)
        })?;
        for f in ir.functions.values() {
            let known = |name: &str| {
                f.var_ranks.contains_key(name)
                    || f.params.iter().any(|(p, _)| p == name)
                    || f.outs.iter().any(|(o, _)| o == name)
            };
            audit(&f.body, &mut stats, &known)?;
        }
        state.guard_stats = stats;
        Ok(())
    }
}

/// SPMD lint: distribution-state dataflow, collective-divergence
/// detection, and the communication-site census. Runs on the IR as it
/// will actually execute — after the peephole pass has fused and
/// pruned (else every transpose temp the fuser is about to absorb
/// reads as dead code), but before `frees` inserts `Free`
/// instructions that would count as uses. Read-only: it never changes
/// what later passes see. Under [`LintMode::Deny`] any warning aborts
/// the pipeline.
struct LintPass;

impl Pass for LintPass {
    fn name(&self) -> &'static str {
        "lint"
    }

    fn optional(&self) -> bool {
        true
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let ir = state.ir.as_ref().expect("rewrite ran");
        let report = lint_program(ir);
        if state.opts.lint == LintMode::Deny {
            if let Some(first) = report.warnings.first() {
                let mut d = first.clone().with_severity(Severity::Error);
                let rest = report.warnings.len() - 1;
                if rest > 0 {
                    d.message = format!("{} ({rest} more lint warning(s) follow)", d.message);
                }
                return Err(OtterError(d));
            }
        }
        state.lint = report;
        Ok(())
    }

    fn dump(&self, state: &PipelineState) -> String {
        if state.lint.warnings.is_empty() {
            "(lint: no warnings)\n".to_string()
        } else {
            state
                .lint
                .warnings
                .iter()
                .map(|w| format!("{w}\n"))
                .collect()
        }
    }
}

/// Pass 6: peephole optimization (optional — the ablation toggles it).
struct PeepholePass;

impl Pass for PeepholePass {
    fn name(&self) -> &'static str {
        "peephole"
    }

    fn optional(&self) -> bool {
        true
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let ir = state.ir.as_mut().expect("rewrite ran");
        state.peephole_stats = peephole(ir);
        Ok(())
    }
}

/// De-allocation of dead temporaries (paper §4: the run-time library
/// allocates *and de-allocates*). Memory hygiene, not an optimization
/// — always runs.
struct FreesPass;

impl Pass for FreesPass {
    fn name(&self) -> &'static str {
        "frees"
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let ir = state.ir.as_mut().expect("rewrite ran");
        let _ = insert_frees(ir);
        Ok(())
    }
}

/// Loop fusion (optional — the ablation and the `fusion` engine knob
/// toggle it). Runs after `frees` so each fused temporary's `Free`
/// exists to consume, and before `analyze` so the oracle predicts the
/// fused program's communication sites.
struct FusionPass;

impl Pass for FusionPass {
    fn name(&self) -> &'static str {
        "fusion"
    }

    fn optional(&self) -> bool {
        true
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let ir = state.ir.as_mut().expect("rewrite ran");
        state.fusion_stats = fuse(ir);
        Ok(())
    }
}

/// Static analysis over the final IR: the communication-volume oracle
/// and the SSA-web in-place legality sets. Runs after `frees` so the
/// leaf-site numbering it predicts is exactly the numbering the
/// modeled executor instruments (`Free` instructions are sites), and
/// before `emit-c` so the in-place annotation lands in the IR the rest
/// of the toolchain sees. The annotation is metadata only — the
/// emitted C is byte-identical with or without this pass.
struct AnalyzePass;

impl Pass for AnalyzePass {
    fn name(&self) -> &'static str {
        "analyze"
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let ir = state.ir.as_mut().expect("rewrite ran");
        otter_lint::shape::annotate_in_place(ir);
        state.analysis = otter_lint::oracle::predict(ir);
        Ok(())
    }

    fn dump(&self, state: &PipelineState) -> String {
        if state.analysis.is_empty() {
            return "(analyze: no sites)\n".to_string();
        }
        state.analysis.iter().map(|p| format!("{p}\n")).collect()
    }
}

/// Pass 7: C emission.
struct EmitCPass;

impl Pass for EmitCPass {
    fn name(&self) -> &'static str {
        "emit-c"
    }

    fn run(&self, state: &mut PipelineState) -> Result<()> {
        let ir = state.ir.as_ref().expect("rewrite ran");
        state.c_source = Some(emit_c(ir));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_frontend::EmptyProvider;

    const SRC: &str = "a = [1, 2; 3, 4];\nb = a * a;\ns = sum(b(:, 1));";

    /// The default pass order is the paper's: passes 1–6 in §3 order
    /// (with the read-only lint stage slotted between passes 5 and 6),
    /// then the two emission-side stages.
    #[test]
    fn default_order_matches_paper() {
        let pm = PassManager::standard();
        assert_eq!(
            pm.pass_names(),
            [
                "parse",
                "resolve",
                "ssa-infer",
                "rewrite",
                "guards",
                "peephole",
                "lint",
                "frees",
                "fusion",
                "analyze",
                "emit-c"
            ],
        );
        // The paper's numbered passes 1–6 appear in order once the
        // lint and fusion additions are filtered out.
        let paper: Vec<_> = pm
            .pass_names()
            .into_iter()
            .filter(|n| *n != "lint" && *n != "fusion")
            .take(6)
            .collect();
        assert_eq!(
            paper,
            [
                "parse",
                "resolve",
                "ssa-infer",
                "rewrite",
                "guards",
                "peephole"
            ],
        );
    }

    #[test]
    fn every_pass_reports_stats() {
        let pm = PassManager::standard();
        let report = pm
            .compile(SRC, &EmptyProvider, &CompileOptions::default())
            .unwrap();
        assert_eq!(report.passes.len(), pm.pass_names().len());
        for s in &report.passes {
            // Wall time is measured (zero is possible but the field is
            // real); sizes are coherent.
            assert!(s.stmts_after > 0 || s.ir_instrs_after > 0, "{s:?}");
        }
        // Rewrite creates the IR.
        let rewrite = report.passes.iter().find(|s| s.name == "rewrite").unwrap();
        assert_eq!(rewrite.ir_instrs_before, 0);
        assert!(rewrite.ir_instrs_after > 0);
        assert!(rewrite.runtime_calls_after > 0);
    }

    /// `--dump-after` produces an artifact for every registered pass
    /// name.
    #[test]
    fn dump_after_emits_at_every_pass() {
        let names = PassManager::standard().pass_names();
        for name in names {
            let mut pm = PassManager::standard();
            pm.dump_after(DumpRequest::After(name.to_string())).unwrap();
            let report = pm
                .compile(SRC, &EmptyProvider, &CompileOptions::default())
                .unwrap();
            assert_eq!(report.dumps.len(), 1, "pass {name}");
            assert_eq!(report.dumps[0].pass, name);
            assert!(
                !report.dumps[0].text.is_empty(),
                "pass {name} dumped nothing"
            );
        }
    }

    #[test]
    fn dump_all_emits_everything() {
        let mut pm = PassManager::standard();
        pm.dump_after(DumpRequest::All).unwrap();
        let report = pm
            .compile(SRC, &EmptyProvider, &CompileOptions::default())
            .unwrap();
        assert_eq!(report.dumps.len(), pm.pass_names().len());
    }

    #[test]
    fn only_optional_passes_can_be_disabled() {
        let mut pm = PassManager::standard();
        pm.disable("peephole").unwrap();
        assert!(pm.disable("parse").is_err());
        assert!(pm.disable("no-such-pass").is_err());
        let report = pm
            .compile(SRC, &EmptyProvider, &CompileOptions::default())
            .unwrap();
        assert!(report.passes.iter().all(|s| s.name != "peephole"));
    }

    #[test]
    fn guards_are_counted() {
        // Element store into a matrix → owner-computes guard.
        let src = "a = zeros(4, 4);\na(2, 3) = 7;\ns = a(2, 3);";
        let report = PassManager::standard()
            .compile(src, &EmptyProvider, &CompileOptions::default())
            .unwrap();
        let g = report.compiled.guard_stats;
        assert!(g.store_guards > 0, "{g:?}");
    }
}
