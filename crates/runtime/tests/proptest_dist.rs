//! Randomised (deterministic, seeded) tests for the distribution math
//! and the distributed run-time library, with the dense kernel as
//! oracle.

use otter_det::DetRng;
use otter_machine::meiko_cs2;
use otter_mpi::run_spmd;
use otter_rt::{Block, Dense, DistMatrix};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

/// The block partition is exactly that: disjoint, contiguous,
/// covering, balanced.
#[test]
fn block_partition_invariants() {
    let mut rng = DetRng::seed_from_u64(0xD157_0001);
    for _ in 0..64 {
        let n = rng.gen_index(300);
        let p = 1 + rng.gen_index(16);
        let b = Block::new(n, p);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        let mut max_c = 0usize;
        let mut min_c = usize::MAX;
        for r in 0..p {
            assert_eq!(b.start(r), prev_end, "contiguous");
            covered += b.count(r);
            prev_end = b.end(r);
            max_c = max_c.max(b.count(r));
            min_c = min_c.min(b.count(r));
        }
        assert_eq!(covered, n, "covering");
        assert!(max_c - min_c <= 1, "balanced");
        for i in 0..n {
            let o = b.owner(i);
            assert!(b.range(o).contains(&i), "owner consistent");
            assert_eq!(b.start(o) + b.to_local(i), i, "local round-trip");
        }
    }
}

/// Distribute → gather is the identity for any shape and p.
#[test]
fn scatter_gather_identity() {
    let mut rng = DetRng::seed_from_u64(0xD157_0002);
    for _ in 0..12 {
        let rows = 1 + rng.gen_index(11);
        let cols = 1 + rng.gen_index(11);
        let p = 1 + rng.gen_index(8);
        let seed = rng.next_u64();
        let data: Vec<f64> = (0..rows * cols)
            .map(|k| ((k as u64).wrapping_mul(seed | 1) % 1000) as f64 / 7.0)
            .collect();
        let d = Dense::from_vec(rows, cols, data);
        let dd = d.clone();
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            DistMatrix::from_replicated(c, &dd).gather_all(c)
        });
        for r in &res {
            assert_eq!(&r.value, &d);
        }
    }
}

/// Distributed matmul equals dense matmul for random shapes.
#[test]
fn matmul_matches_dense() {
    let mut rng = DetRng::seed_from_u64(0xD157_0003);
    for _ in 0..12 {
        let m = 1 + rng.gen_index(9);
        let k = 2 + rng.gen_index(8);
        let n = 2 + rng.gen_index(8);
        let p = 1 + rng.gen_index(6);
        let seed = rng.next_u64();
        let gen = |rows: usize, cols: usize, salt: u64| {
            Dense::from_vec(
                rows,
                cols,
                (0..rows * cols)
                    .map(|i| (((i as u64 + salt).wrapping_mul(seed | 3)) % 17) as f64 - 8.0)
                    .collect(),
            )
        };
        let a = gen(m, k, 1);
        let b = gen(k, n, 2);
        let oracle = a.matmul(&b);
        let (aa, bb) = (a, b);
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let da = DistMatrix::from_replicated(c, &aa);
            let db = DistMatrix::from_replicated(c, &bb);
            da.matmul(c, &db)?.gather_all(c)
        });
        for (x, y) in res[0].value.data().iter().zip(oracle.data()) {
            assert!(close(*x, *y), "{x} vs {y}");
        }
    }
}

/// Reductions on distributed data equal dense reductions.
#[test]
fn reductions_match_dense() {
    let mut rng = DetRng::seed_from_u64(0xD157_0004);
    for _ in 0..12 {
        let len = 1 + rng.gen_index(59);
        let p = 1 + rng.gen_index(8);
        let seed = rng.next_u64();
        let v: Vec<f64> = (0..len)
            .map(|i| (((i as u64).wrapping_mul(seed | 5)) % 1001) as f64 / 13.0 - 30.0)
            .collect();
        let d = Dense::row_vector(&v);
        let (sum0, max0, min0, norm0, trapz0) =
            (d.sum_all(), d.max_all(), d.min_all(), d.norm2(), d.trapz());
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let x = DistMatrix::from_replicated(c, &d);
            Ok((
                x.sum_all(c)?,
                x.max_all(c)?,
                x.min_all(c)?,
                x.norm2(c)?,
                x.trapz(c)?,
            ))
        });
        for r in &res {
            assert!(close(r.value.0, sum0));
            assert_eq!(r.value.1, max0);
            assert_eq!(r.value.2, min0);
            assert!(close(r.value.3, norm0));
            assert!(close(r.value.4, trapz0));
        }
    }
}

/// circshift matches the dense oracle for any shift.
#[test]
fn circshift_matches_dense() {
    let mut rng = DetRng::seed_from_u64(0xD157_0005);
    for _ in 0..12 {
        let len = 1 + rng.gen_index(39);
        let p = 1 + rng.gen_index(7);
        let k = rng.gen_index(200) as i64 - 100;
        let seed = rng.next_u64();
        let v: Vec<f64> = (0..len).map(|i| ((i as u64 ^ seed) % 97) as f64).collect();
        let d = Dense::row_vector(&v);
        let oracle = d.circshift(k);
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            DistMatrix::from_replicated(c, &d)
                .circshift(c, k)?
                .gather_all(c)
        });
        for r in &res {
            assert_eq!(&r.value, &oracle, "len={} p={} k={}", len, p, k);
        }
    }
}

/// Transpose is an involution and matches dense.
#[test]
fn transpose_matches_dense() {
    let mut rng = DetRng::seed_from_u64(0xD157_0006);
    for _ in 0..12 {
        let rows = 1 + rng.gen_index(9);
        let cols = 1 + rng.gen_index(9);
        let p = 1 + rng.gen_index(5);
        let d = Dense::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|k| k as f64 * 1.5).collect(),
        );
        let oracle = d.transpose();
        let dd = d.clone();
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let m = DistMatrix::from_replicated(c, &dd);
            let t = m.transpose(c)?;
            let tt = t.transpose(c)?;
            Ok((t.gather_all(c)?, tt.gather_all(c)?))
        });
        assert_eq!(&res[0].value.0, &oracle);
        assert_eq!(&res[0].value.1, &d);
    }
}

/// Every element has exactly one owner, on every rank count.
#[test]
fn owner_is_a_partition() {
    let mut rng = DetRng::seed_from_u64(0xD157_0007);
    for _ in 0..12 {
        let rows = 1 + rng.gen_index(13);
        let cols = 1 + rng.gen_index(5);
        let p = 1 + rng.gen_index(8);
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let m = DistMatrix::zeros(c, rows, cols);
            let mut owned = 0usize;
            for i in 0..rows {
                for j in 0..cols {
                    if m.is_owner(i, j) {
                        owned += 1;
                    }
                }
            }
            Ok(owned)
        });
        let total: usize = res.iter().map(|r| r.value).sum();
        assert_eq!(total, rows * cols);
    }
}

/// Column reductions (sum/mean/prod/max/min/any/all) match the dense
/// kernel for every shape and rank count.
#[test]
fn column_reductions_match_dense() {
    let mut rng = DetRng::seed_from_u64(0xD157_0008);
    for _ in 0..10 {
        let rows = 1 + rng.gen_index(9);
        let cols = 1 + rng.gen_index(6);
        let p = 1 + rng.gen_index(5);
        let seed = rng.next_u64();
        let d = Dense::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|k| (((k as u64).wrapping_mul(seed | 7)) % 7) as f64 - 3.0)
                .collect(),
        );
        let oracle = (
            d.sum(),
            d.mean(),
            d.prod(),
            d.max(),
            d.min(),
            d.any(),
            d.all(),
        );
        let dd = d.clone();
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let m = DistMatrix::from_replicated(c, &dd);
            Ok((
                m.sum(c)?.gather_all(c)?,
                m.mean(c)?.gather_all(c)?,
                m.prod(c)?.gather_all(c)?,
                m.max(c)?.gather_all(c)?,
                m.min(c)?.gather_all(c)?,
                m.any(c)?.gather_all(c)?,
                m.all(c)?.gather_all(c)?,
            ))
        });
        let got = &res[0].value;
        for (i, (g, o)) in [
            (&got.0, &oracle.0),
            (&got.1, &oracle.1),
            (&got.2, &oracle.2),
            (&got.3, &oracle.3),
            (&got.4, &oracle.4),
            (&got.5, &oracle.5),
            (&got.6, &oracle.6),
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!((g.rows(), g.cols()), (o.rows(), o.cols()), "op {} shape", i);
            for (x, y) in g.data().iter().zip(o.data()) {
                assert!(
                    close(*x, *y),
                    "op {i}: {x} vs {y} (rows={rows} cols={cols} p={p})"
                );
            }
        }
    }
}
