% Lint fixture: shape-safety errors the run-time would abort on.
a = ones(3, 4);
x = a(5, 2);
a(4, 1) = 7;
u = linspace(0, 1, 8);
w = linspace(0, 1, 9);
s = dot(u, w);
r = u(3:12);
total = x + s + sum(r) + sum(sum(a));
