//! Pass 2 — identifier resolution (paper §3).
//!
//! "Beginning with the original script, it determines which
//! identifiers correspond to variables and which correspond to
//! functions. User M-file functions identified during this pass are
//! scanned, parsed, and eventually subjected to the same identifier
//! resolution algorithm. At the end of this pass every M-file in the
//! user's program has been added to the AST."
//!
//! Classification rule (MATLAB's): a name assigned anywhere in a
//! scope is a variable throughout that scope; otherwise it is a
//! function (built-in or M-file) or a built-in constant. The parser
//! emits every `name(args)` as [`ExprKind::Call`]; this pass rewrites
//! the variable cases to [`ExprKind::Index`].

use crate::builtins::{is_builtin_constant, is_builtin_function};
use crate::error::{AnalysisError, Result};
use otter_frontend::ast::*;
use otter_frontend::{parse, SourceProvider};
use std::collections::BTreeSet;

/// The resolved program: every reachable M-file loaded, every
/// `Call`/`Index` ambiguity settled.
#[derive(Debug, Clone, PartialEq)]
pub struct Resolved {
    pub program: Program,
}

/// Resolve a script against an M-file provider (parse + resolve in
/// one call — the historical entry point).
pub fn resolve(src: &str, provider: &dyn SourceProvider) -> Result<Resolved> {
    let file = parse(src).map_err(|e| AnalysisError::new(e.to_string(), e.span))?;
    resolve_program(
        Program {
            script: file.script,
            functions: file.functions,
        },
        provider,
    )
}

/// Resolve an already-parsed program against an M-file provider.
/// This is pass 2 proper; the pass manager runs it after a separate
/// parse pass so the two stages are timed and dumped independently.
pub fn resolve_program(mut program: Program, provider: &dyn SourceProvider) -> Result<Resolved> {
    // Work-list of function names still to load.
    let mut pending: Vec<String> = Vec::new();

    // Resolve the script scope.
    let assigned = assigned_names(&program.script, &[]);
    let script = std::mem::take(&mut program.script);
    program.script = resolve_block(script, &assigned, &program, &mut pending)?;

    // Resolve functions already present in the original file.
    let mut resolved_fns: Vec<Function> = Vec::new();
    let mut fns = std::mem::take(&mut program.functions);
    for f in &mut fns {
        resolve_function(f, &program, &mut pending)?;
    }
    resolved_fns.extend(fns);
    program.functions = resolved_fns;

    // Chase pending M-files to fixpoint.
    while let Some(name) = pending.pop() {
        if program.function(&name).is_some() {
            continue;
        }
        let Some(src) = provider.m_file(&name) else {
            // Name was enqueued speculatively; a genuine unknown is
            // reported at the use site during the walk below.
            continue;
        };
        let file = parse(&src).map_err(|e| AnalysisError::new(format!("{name}.m: {e}"), e.span))?;
        if file.functions.is_empty() {
            return Err(AnalysisError::new(
                format!("{name}.m does not define a function"),
                otter_frontend::Span::DUMMY,
            ));
        }
        for mut f in file.functions {
            resolve_function(&mut f, &program, &mut pending)?;
            program.functions.push(f);
        }
    }

    // Final verification walk: every Call must now be a builtin or a
    // loaded function.
    verify_calls(&program)?;
    Ok(Resolved { program })
}

fn resolve_function(f: &mut Function, program: &Program, pending: &mut Vec<String>) -> Result<()> {
    let assigned = assigned_names(&f.body, &f.params);
    let body = std::mem::take(&mut f.body);
    f.body = resolve_block(body, &assigned, program, pending)?;
    Ok(())
}

/// Names assigned anywhere in a block (entire-scope rule), plus
/// explicitly seeded names (function parameters and outputs).
pub fn assigned_names(block: &Block, seed: &[String]) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = seed.iter().cloned().collect();
    fn walk(block: &Block, out: &mut BTreeSet<String>) {
        for stmt in block {
            match &stmt.kind {
                StmtKind::Assign { lhs, .. } => {
                    out.insert(lhs.name.clone());
                }
                StmtKind::MultiAssign { lhs, .. } => {
                    for lv in lhs {
                        out.insert(lv.name.clone());
                    }
                }
                StmtKind::For { var, body, .. } => {
                    out.insert(var.clone());
                    walk(body, out);
                }
                StmtKind::If { arms, else_body } => {
                    for (_, b) in arms {
                        walk(b, out);
                    }
                    if let Some(b) = else_body {
                        walk(b, out);
                    }
                }
                StmtKind::While { body, .. } => walk(body, out),
                StmtKind::Global(names) => {
                    for n in names {
                        out.insert(n.clone());
                    }
                }
                _ => {}
            }
        }
    }
    walk(block, &mut out);
    out
}

fn resolve_block(
    block: Block,
    assigned: &BTreeSet<String>,
    program: &Program,
    pending: &mut Vec<String>,
) -> Result<Block> {
    block
        .into_iter()
        .map(|stmt| resolve_stmt(stmt, assigned, program, pending))
        .collect()
}

fn resolve_stmt(
    stmt: Stmt,
    assigned: &BTreeSet<String>,
    program: &Program,
    pending: &mut Vec<String>,
) -> Result<Stmt> {
    let kind = match stmt.kind {
        StmtKind::Expr(e) => StmtKind::Expr(resolve_expr(e, assigned, program, pending)?),
        StmtKind::Assign { lhs, rhs } => StmtKind::Assign {
            lhs: resolve_lvalue(lhs, assigned, program, pending)?,
            rhs: resolve_expr(rhs, assigned, program, pending)?,
        },
        StmtKind::MultiAssign { lhs, rhs } => StmtKind::MultiAssign {
            lhs: lhs
                .into_iter()
                .map(|lv| resolve_lvalue(lv, assigned, program, pending))
                .collect::<Result<Vec<_>>>()?,
            rhs: resolve_expr(rhs, assigned, program, pending)?,
        },
        StmtKind::If { arms, else_body } => StmtKind::If {
            arms: arms
                .into_iter()
                .map(|(c, b)| {
                    Ok((
                        resolve_expr(c, assigned, program, pending)?,
                        resolve_block(b, assigned, program, pending)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?,
            else_body: match else_body {
                Some(b) => Some(resolve_block(b, assigned, program, pending)?),
                None => None,
            },
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: resolve_expr(cond, assigned, program, pending)?,
            body: resolve_block(body, assigned, program, pending)?,
        },
        StmtKind::For { var, iter, body } => StmtKind::For {
            var,
            iter: resolve_expr(iter, assigned, program, pending)?,
            body: resolve_block(body, assigned, program, pending)?,
        },
        other => other,
    };
    Ok(Stmt {
        kind,
        span: stmt.span,
        display: stmt.display,
    })
}

fn resolve_lvalue(
    lv: LValue,
    assigned: &BTreeSet<String>,
    program: &Program,
    pending: &mut Vec<String>,
) -> Result<LValue> {
    let indices = match lv.indices {
        None => None,
        Some(idx) => Some(
            idx.into_iter()
                .map(|e| resolve_expr(e, assigned, program, pending))
                .collect::<Result<Vec<_>>>()?,
        ),
    };
    Ok(LValue {
        name: lv.name,
        indices,
        span: lv.span,
    })
}

fn resolve_expr(
    e: Expr,
    assigned: &BTreeSet<String>,
    program: &Program,
    pending: &mut Vec<String>,
) -> Result<Expr> {
    let span = e.span;
    let kind = match e.kind {
        ExprKind::Ident(name) => {
            if assigned.contains(&name) || is_builtin_constant(&name) {
                ExprKind::Ident(name)
            } else if is_builtin_function(&name) {
                // Bare builtin-function reference: zero-argument call.
                ExprKind::Call {
                    callee: name,
                    args: vec![],
                }
            } else {
                // Possibly a zero-argument M-file function.
                pending.push(name.clone());
                ExprKind::Call {
                    callee: name,
                    args: vec![],
                }
            }
        }
        ExprKind::Call { callee, args } => {
            let args = args
                .into_iter()
                .map(|a| resolve_expr(a, assigned, program, pending))
                .collect::<Result<Vec<_>>>()?;
            if assigned.contains(&callee) {
                ExprKind::Index { base: callee, args }
            } else {
                if !is_builtin_function(&callee) && program.function(&callee).is_none() {
                    pending.push(callee.clone());
                }
                ExprKind::Call { callee, args }
            }
        }
        ExprKind::Index { base, args } => {
            // Already classified (re-resolution is idempotent).
            let args = args
                .into_iter()
                .map(|a| resolve_expr(a, assigned, program, pending))
                .collect::<Result<Vec<_>>>()?;
            ExprKind::Index { base, args }
        }
        ExprKind::Unary { op, operand } => ExprKind::Unary {
            op,
            operand: Box::new(resolve_expr(*operand, assigned, program, pending)?),
        },
        ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
            op,
            lhs: Box::new(resolve_expr(*lhs, assigned, program, pending)?),
            rhs: Box::new(resolve_expr(*rhs, assigned, program, pending)?),
        },
        ExprKind::Transpose { op, operand } => ExprKind::Transpose {
            op,
            operand: Box::new(resolve_expr(*operand, assigned, program, pending)?),
        },
        ExprKind::Range { start, step, stop } => ExprKind::Range {
            start: Box::new(resolve_expr(*start, assigned, program, pending)?),
            step: match step {
                Some(s) => Some(Box::new(resolve_expr(*s, assigned, program, pending)?)),
                None => None,
            },
            stop: Box::new(resolve_expr(*stop, assigned, program, pending)?),
        },
        ExprKind::Matrix(rows) => ExprKind::Matrix(
            rows.into_iter()
                .map(|r| {
                    r.into_iter()
                        .map(|c| resolve_expr(c, assigned, program, pending))
                        .collect::<Result<Vec<_>>>()
                })
                .collect::<Result<Vec<_>>>()?,
        ),
        k @ (ExprKind::Number { .. }
        | ExprKind::Str(_)
        | ExprKind::Colon
        | ExprKind::EndKeyword) => k,
    };
    Ok(Expr::new(kind, span))
}

/// After loading, every `Call` must target a builtin or a program
/// function; anything else is an unknown identifier.
fn verify_calls(program: &Program) -> Result<()> {
    fn check_expr(e: &Expr, program: &Program) -> Result<()> {
        let mut err = None;
        e.walk(&mut |x| {
            if err.is_some() {
                return;
            }
            if let ExprKind::Call { callee, .. } = &x.kind {
                if !is_builtin_function(callee) && program.function(callee).is_none() {
                    err = Some(AnalysisError::new(
                        format!("unknown function or variable `{callee}`"),
                        x.span,
                    ));
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
    fn check_block(b: &Block, program: &Program) -> Result<()> {
        for stmt in b {
            match &stmt.kind {
                StmtKind::Expr(e) => check_expr(e, program)?,
                StmtKind::Assign { lhs, rhs } => {
                    check_expr(rhs, program)?;
                    if let Some(idx) = &lhs.indices {
                        for e in idx {
                            check_expr(e, program)?;
                        }
                    }
                }
                StmtKind::MultiAssign { rhs, .. } => check_expr(rhs, program)?,
                StmtKind::If { arms, else_body } => {
                    for (c, b) in arms {
                        check_expr(c, program)?;
                        check_block(b, program)?;
                    }
                    if let Some(b) = else_body {
                        check_block(b, program)?;
                    }
                }
                StmtKind::While { cond, body } => {
                    check_expr(cond, program)?;
                    check_block(body, program)?;
                }
                StmtKind::For { iter, body, .. } => {
                    check_expr(iter, program)?;
                    check_block(body, program)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
    check_block(&program.script, program)?;
    for f in &program.functions {
        check_block(&f.body, program)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_frontend::{EmptyProvider, MapProvider};

    fn resolve_ok(src: &str) -> Program {
        resolve(src, &EmptyProvider).unwrap().program
    }

    #[test]
    fn assigned_variable_indexing_becomes_index() {
        let p = resolve_ok("a = zeros(3, 3);\nx = a(1, 2);");
        let StmtKind::Assign { rhs, .. } = &p.script[1].kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Index { .. }), "{rhs:?}");
    }

    #[test]
    fn builtin_call_stays_call() {
        let p = resolve_ok("a = zeros(3, 3);");
        let StmtKind::Assign { rhs, .. } = &p.script[0].kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Call { .. }));
    }

    #[test]
    fn forward_assignment_still_makes_variable() {
        // `x` is used before the assignment textually, but MATLAB's
        // whole-scope rule classifies it as a variable. (Use-before-
        // def is then an inference-time error, not a resolution one.)
        let p = resolve_ok("for i = 1:3\ny = x(i);\nx = [1, 2, 3];\nend");
        let StmtKind::For { body, .. } = &p.script[0].kind else {
            panic!()
        };
        let StmtKind::Assign { rhs, .. } = &body[0].kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Index { .. }));
    }

    #[test]
    fn m_file_functions_are_loaded_transitively() {
        let provider = MapProvider::new()
            .with(
                "outer_fn",
                "function y = outer_fn(x)\ny = inner_fn(x) + 1;\n",
            )
            .with("inner_fn", "function y = inner_fn(x)\ny = x * 2;\n");
        let p = resolve("z = outer_fn(3);", &provider).unwrap().program;
        assert!(p.function("outer_fn").is_some());
        assert!(
            p.function("inner_fn").is_some(),
            "transitive M-file must load"
        );
    }

    #[test]
    fn unknown_function_is_an_error() {
        let err = resolve("z = mystery(3);", &EmptyProvider).unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
    }

    #[test]
    fn builtin_constants_stay_idents() {
        let p = resolve_ok("x = pi * 2;");
        let StmtKind::Assign { rhs, .. } = &p.script[0].kind else {
            panic!()
        };
        let ExprKind::Binary { lhs, .. } = &rhs.kind else {
            panic!()
        };
        assert!(matches!(lhs.kind, ExprKind::Ident(_)));
    }

    #[test]
    fn bare_builtin_function_becomes_zero_arg_call() {
        let p = resolve_ok("x = rand;");
        let StmtKind::Assign { rhs, .. } = &p.script[0].kind else {
            panic!()
        };
        assert!(
            matches!(&rhs.kind, ExprKind::Call { callee, args } if callee == "rand" && args.is_empty())
        );
    }

    #[test]
    fn function_scope_params_are_variables() {
        let provider = MapProvider::new().with("f", "function y = f(a)\ny = a(1) + 1;\n");
        let p = resolve("z = f([1, 2]);", &provider).unwrap().program;
        let f = p.function("f").unwrap();
        let StmtKind::Assign { rhs, .. } = &f.body[0].kind else {
            panic!()
        };
        let ExprKind::Binary { lhs, .. } = &rhs.kind else {
            panic!()
        };
        assert!(
            matches!(lhs.kind, ExprKind::Index { .. }),
            "param indexing is Index"
        );
    }

    #[test]
    fn loop_variable_is_a_variable() {
        let p = resolve_ok("for i = 1:3\nx = i + 1;\nend");
        let StmtKind::For { body, .. } = &p.script[0].kind else {
            panic!()
        };
        let StmtKind::Assign { rhs, .. } = &body[0].kind else {
            panic!()
        };
        let ExprKind::Binary { lhs, .. } = &rhs.kind else {
            panic!()
        };
        assert!(matches!(lhs.kind, ExprKind::Ident(_)));
    }

    #[test]
    fn resolution_is_idempotent() {
        let p1 = resolve_ok("a = zeros(2, 2);\nb = a(1, 1) + sum(a(:, 1));");
        // Feed the resolved program's pretty-print back through.
        let printed = otter_frontend::pretty::program_to_string(&p1);
        let p2 = resolve_ok(&printed);
        assert_eq!(otter_frontend::pretty::program_to_string(&p2), printed);
    }
}
