//! Cost metering: the interpreter's modeled execution time.
//!
//! Every executed statement and every vector operation charges
//! flop-units according to [`ExecutionStyle::Interpreter`]'s
//! coefficients; the figures' "speedup over MATLAB" baselines divide
//! by the resulting modeled seconds on the target machine's CPU.

use otter_machine::{CpuModel, ExecutionStyle, OpClass, StyleCosts};
use std::collections::BTreeMap;

/// Accumulates modeled flop-units for one interpreted run.
#[derive(Debug, Clone)]
pub struct CostMeter {
    costs: StyleCosts,
    units: f64,
    statements: u64,
    ops: u64,
    /// Executed-operation counts by kind (op-class name, `statement`,
    /// `matmul`, `matvec`) — the sequential engines' contribution to
    /// the uniform `EngineReport::op_counts` schema.
    op_counts: BTreeMap<&'static str, u64>,
}

fn class_name(class: OpClass) -> &'static str {
    match class {
        OpClass::Add => "add",
        OpClass::Mul => "mul",
        OpClass::Div => "div",
        OpClass::Transcendental => "transcendental",
    }
}

impl CostMeter {
    /// Meter with the given style's coefficients.
    pub fn new(style: ExecutionStyle) -> Self {
        CostMeter {
            costs: style.costs(),
            units: 0.0,
            statements: 0,
            ops: 0,
            op_counts: BTreeMap::new(),
        }
    }

    fn bump(&mut self, kind: &'static str) {
        *self.op_counts.entry(kind).or_insert(0) += 1;
    }

    /// Charge one statement dispatch.
    pub fn statement(&mut self) {
        self.units += self.costs.statement_dispatch;
        self.statements += 1;
        self.bump("statement");
    }

    /// Charge one vector/matrix operation over `elements` elements.
    pub fn op(&mut self, class: OpClass, elements: usize) {
        self.units += self.costs.op_units(class, elements);
        self.ops += 1;
        self.bump(class_name(class));
    }

    /// Charge raw flop-units of O(n³) dense linear algebra (matrix
    /// multiply, solve).
    pub fn raw(&mut self, units: f64) {
        self.units += units * self.costs.matmul_factor;
        self.ops += 1;
        self.bump("matmul");
    }

    /// Charge raw flop-units of O(n²) dense linear algebra
    /// (matrix-vector products).
    pub fn raw_matvec(&mut self, units: f64) {
        self.units += units * self.costs.matvec_factor;
        self.ops += 1;
        self.bump("matvec");
    }

    /// Executed-operation counts by kind.
    pub fn op_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.op_counts
    }

    /// Total accumulated flop-units.
    pub fn units(&self) -> f64 {
        self.units
    }

    /// Modeled wall-seconds on the given CPU.
    pub fn seconds_on(&self, cpu: &CpuModel) -> f64 {
        self.units * cpu.flop_time()
    }

    /// Number of statements executed.
    pub fn statements(&self) -> u64 {
        self.statements
    }

    /// Number of vector operations executed.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_machine::workstation;

    #[test]
    fn accumulates_dispatch_and_ops() {
        let mut m = CostMeter::new(ExecutionStyle::Interpreter);
        m.statement();
        m.op(OpClass::Add, 100);
        let c = ExecutionStyle::Interpreter.costs();
        let expect = c.statement_dispatch + c.op_units(OpClass::Add, 100);
        assert_eq!(m.units(), expect);
        assert_eq!(m.statements(), 1);
        assert_eq!(m.ops(), 1);
    }

    #[test]
    fn seconds_scale_with_cpu() {
        let mut m = CostMeter::new(ExecutionStyle::Interpreter);
        m.op(OpClass::Mul, 1000);
        let ws = workstation();
        let secs = m.seconds_on(&ws.cpu);
        assert!((secs - m.units() / ws.cpu.flops).abs() < 1e-18);
    }

    #[test]
    fn matcom_charges_less_than_interpreter() {
        let mut i = CostMeter::new(ExecutionStyle::Interpreter);
        let mut m = CostMeter::new(ExecutionStyle::Matcom);
        for meter in [&mut i, &mut m] {
            meter.statement();
            meter.op(OpClass::Add, 10);
        }
        assert!(i.units() > m.units());
    }
}
