//! A minimal MATLAB REPL over the baseline interpreter — useful for
//! exploring the accepted language subset interactively.
//!
//! ```text
//! cargo run --example matlab_repl
//! >> x = [1, 2; 3, 4];
//! >> sum(x(:, 1))
//! ans =
//!     4.000000
//! >> quit
//! ```

use otter_frontend::{parse, Program};
use otter_interp::Interp;
use std::io::{self, BufRead, Write};

fn main() {
    println!("otter-rs MATLAB REPL (type `quit` to exit)");
    let mut interp = Interp::new(Program::default());
    let stdin = io::stdin();
    let mut line = String::new();
    loop {
        print!(">> ");
        io::stdout().flush().ok();
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let src = line.trim();
        if src.is_empty() {
            continue;
        }
        if src == "quit" || src == "exit" {
            break;
        }
        match parse(src) {
            Ok(file) => {
                let before = interp.output.len();
                match interp.exec_block(&file.script) {
                    Ok(_) => {
                        print!("{}", &interp.output[before..]);
                    }
                    Err(e) => eprintln!("{e}"),
                }
            }
            Err(e) => eprintln!("{e}"),
        }
    }
    println!("bye");
}
