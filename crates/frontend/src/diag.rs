//! The shared compiler diagnostic.
//!
//! Every per-crate error type (front-end, analysis, codegen,
//! interpreter run-time) converts into this one shape, so drivers like
//! `otterc` and the benchmark harness print a single consistent
//! format: `error[<pass>] <file>:<line>:<col>: <message>`. The crate
//! errors themselves stay as they are — `From` impls do the lifting —
//! and the pass manager re-labels `pass` with the name of the pipeline
//! stage that actually failed.
//!
//! Diagnostics carry a [`Severity`]: errors abort the pipeline, while
//! warnings (the lint pass's output) accumulate so one run can report
//! many findings.

use crate::span::Span;
use std::fmt;

/// How serious a diagnostic is. Errors abort compilation; warnings
/// are collected and reported together (and only fail the pipeline
/// under `--lint=deny`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Severity {
    Warning,
    #[default]
    Error,
}

impl Severity {
    /// The lowercase keyword used when rendering (`error[...]` /
    /// `warning[...]`).
    pub fn keyword(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A uniformly printable compiler/run-time diagnostic: what went
/// wrong, where in the source, and which pipeline stage said so.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The pipeline stage or subsystem that raised the error
    /// (`parse`, `resolve`, `ssa-infer`, `codegen`, `execution`, ...).
    pub pass: String,
    /// Human-readable description, without location decoration.
    pub message: String,
    /// Source location; [`Span::DUMMY`] when there is no useful one.
    pub span: Span,
    /// Originating M-file, when known.
    pub file: Option<String>,
    /// Error (aborts the pipeline) or warning (collected).
    pub severity: Severity,
}

impl Diagnostic {
    /// An error diagnostic with no source location.
    pub fn new(pass: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            pass: pass.into(),
            message: message.into(),
            span: Span::DUMMY,
            file: None,
            severity: Severity::Error,
        }
    }

    /// A warning diagnostic with no source location.
    pub fn warning(pass: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::new(pass, message)
        }
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Attach the originating file name.
    pub fn in_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// Re-label the originating pass (the pass manager applies the
    /// concrete pipeline-stage name to errors raised inside a pass).
    pub fn with_pass(mut self, pass: impl Into<String>) -> Self {
        self.pass = pass.into();
        self
    }

    /// Change the severity (deny-mode promotes warnings to errors).
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Whether the span is usable for display. A span whose line is 0
    /// came from a context with no real source position (hand-built
    /// IR, synthesized nodes) even when it is not exactly
    /// [`Span::DUMMY`]; rendering such a span would print a bogus
    /// `0:0` location.
    pub fn has_location(&self) -> bool {
        !self.span.is_dummy() && self.span.line > 0
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity.keyword(), self.pass)?;
        // Location part, omitted cleanly when absent: there must be no
        // dangling `:` or stray whitespace without one.
        match (&self.file, self.has_location()) {
            (Some(file), true) => write!(f, " {file}:{}:", self.span)?,
            (Some(file), false) => write!(f, " {file}:")?,
            (None, true) => write!(f, " {}:", self.span)?,
            (None, false) => write!(f, ":")?,
        }
        write!(f, " {}", self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_location_shapes() {
        let d = Diagnostic::new("resolve", "use of `x` before assignment");
        assert_eq!(
            d.to_string(),
            "error[resolve]: use of `x` before assignment"
        );
        let d = d.with_span(Span::new(4, 5, 1, 5));
        assert_eq!(
            d.to_string(),
            "error[resolve] 1:5: use of `x` before assignment"
        );
        let d = d.in_file("cg.m");
        assert_eq!(
            d.to_string(),
            "error[resolve] cg.m:1:5: use of `x` before assignment"
        );
    }

    #[test]
    fn zero_line_span_is_treated_as_absent() {
        // A non-DUMMY span with line 0 must not render as `0:0`.
        let d = Diagnostic::new("lint", "dead value").with_span(Span::new(7, 9, 0, 0));
        assert_eq!(d.to_string(), "error[lint]: dead value");
        let d = d.in_file("gen.m");
        assert_eq!(d.to_string(), "error[lint] gen.m: dead value");
    }

    #[test]
    fn no_dangling_location_punctuation() {
        for d in [
            Diagnostic::new("lint", "m"),
            Diagnostic::new("lint", "m").in_file("f.m"),
            Diagnostic::new("lint", "m").with_span(Span::new(0, 0, 2, 1)),
        ] {
            let s = d.to_string();
            assert!(!s.contains(": :"), "{s:?}");
            assert!(!s.contains("  "), "{s:?}");
            assert!(!s.contains(" :"), "{s:?}");
        }
    }

    #[test]
    fn warnings_render_with_their_own_keyword() {
        let d = Diagnostic::warning("lint", "redundant broadcast").with_span(Span::new(0, 0, 3, 5));
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.to_string(), "warning[lint] 3:5: redundant broadcast");
        let promoted = d.with_severity(Severity::Error);
        assert_eq!(promoted.to_string(), "error[lint] 3:5: redundant broadcast");
    }

    #[test]
    fn with_pass_relabels() {
        let d = Diagnostic::new("analysis", "rank conflict").with_pass("ssa-infer");
        assert_eq!(d.pass, "ssa-infer");
        assert!(d.to_string().starts_with("error[ssa-infer]"));
    }
}
