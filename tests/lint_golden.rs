//! Golden tests for the SPMD lint pass.
//!
//! Three layers: the four benchmark applications must be warning-clean
//! (the lints describe real inefficiencies, and the apps don't have
//! any); the fixture scripts under `tests/fixtures/` must trigger each
//! distribution-state lint with exact spans and rendering; and
//! hand-built IR exercises the divergence lints that no *compiled*
//! program can reach (resolution rejects use-before-assignment, so
//! compiled control flow is always replicated — the divergence
//! analysis is the verifier of that invariant, not a style check).
//! Finally, linting must be read-only: disabling the pass changes
//! nothing downstream.

use otter_core::{compile_program, compile_str, CompileOptions, LintReport};
use otter_frontend::EmptyProvider;
use otter_ir::{Instr, IrProgram, MatInit, RedOp, SBinOp, SExpr, VarRank};
use otter_lint::lint_program;

const DIST_FIXTURE: &str = include_str!("fixtures/lint_dist.m");
const CHURN_FIXTURE: &str = include_str!("fixtures/lint_churn.m");
const SHAPE_FIXTURE: &str = include_str!("fixtures/lint_shape.m");

fn lint_of(src: &str) -> LintReport {
    compile_str(src).expect("fixture compiles").lint
}

fn rendered(report: &LintReport) -> Vec<String> {
    report.warnings.iter().map(|w| w.to_string()).collect()
}

#[test]
fn benchmark_apps_are_warning_clean() {
    for app in otter_apps::paper_apps() {
        let report = lint_of(&app.script);
        assert!(
            report.is_clean(),
            "{}: unexpected lint warnings: {:#?}",
            app.id,
            rendered(&report)
        );
        assert!(report.divergence_free, "{}", app.id);
        assert!(report.sendrecv_matched, "{}", app.id);
        // Every app communicates: the census must see the collectives.
        assert!(report.collective_sites > 0, "{}", app.id);
    }
}

#[test]
fn dist_fixture_golden() {
    let report = lint_of(DIST_FIXTURE);
    assert_eq!(
        rendered(&report),
        [
            "warning[lint] 2:1: dead distributed value: `a` is allocated and computed \
             on every rank but never read before `a__1` overwrites it",
            "warning[lint] 5:1: redundant broadcast: element `a__1[1, 2]` is already \
             replicated by an earlier `ML_broadcast` and none of its inputs changed; \
             reuse that value",
        ]
    );
    // The fixture's control flow is still uniform.
    assert!(report.divergence_free);
    assert!(report.sendrecv_matched);
}

#[test]
fn churn_fixture_golden() {
    let report = lint_of(CHURN_FIXTURE);
    assert_eq!(
        rendered(&report),
        [
            "warning[lint] 5:3: redistribution churn: `t` repeats the same \
          `extract-range` of loop-invariant `v` (block-vec) on every iteration; \
          hoist it out of the loop"
        ]
    );
    assert_eq!(report.p2p_sites, 1);
}

#[test]
fn shape_fixture_golden() {
    // Each category of shape-safety error the lint pack proves
    // statically, with exact spans: constant-index reads and writes
    // past the matrix extent, dot-product length disagreement, and a
    // constant range overrunning its vector. These are run-time aborts
    // caught at compile time, so they render as errors, not warnings.
    let report = lint_of(SHAPE_FIXTURE);
    assert_eq!(
        rendered(&report),
        [
            "error[shape] 2:1: row index 4 out of bounds: `a` is 3x4",
            "error[shape] 3:1: row index 5 out of bounds: `a` is 3x4",
            "error[shape] 7:1: dot length mismatch: `u` has 8 elements but `w` has 9",
            "error[shape] 8:1: range 3:12 out of bounds: `u` has 8 elements",
        ]
    );
    // The fixture's problems are shape problems only — control flow is
    // uniform and no distribution lint fires.
    assert!(report.divergence_free);
    assert!(report.sendrecv_matched);
}

#[test]
fn shape_errors_fail_deny_mode() {
    let opts = CompileOptions::default().deny_lints();
    let err = compile_program(SHAPE_FIXTURE, &EmptyProvider, &opts).unwrap_err();
    let msg = err.to_string();
    assert!(msg.starts_with("error[lint]"), "{msg}");
    assert!(msg.contains("out of bounds"), "{msg}");
}

#[test]
fn deny_mode_fails_the_pipeline() {
    let opts = CompileOptions::default().deny_lints();
    let err = compile_program(DIST_FIXTURE, &EmptyProvider, &opts).unwrap_err();
    let msg = err.to_string();
    assert!(msg.starts_with("error[lint]"), "{msg}");
    assert!(msg.contains("dead distributed value"), "{msg}");
    assert!(msg.contains("1 more lint warning"), "{msg}");
    // Clean programs are unaffected by deny mode.
    for app in otter_apps::test_apps() {
        compile_program(&app.script, &EmptyProvider, &opts)
            .unwrap_or_else(|e| panic!("{} under --lint=deny: {e}", app.id));
    }
}

#[test]
fn lint_is_read_only() {
    // Disabling the pass must change nothing the pipeline produces —
    // IR, C text, stats — for every app and both fixtures.
    let sources: Vec<String> = otter_apps::test_apps()
        .into_iter()
        .map(|a| a.script)
        .chain([
            DIST_FIXTURE.to_string(),
            CHURN_FIXTURE.to_string(),
            SHAPE_FIXTURE.to_string(),
        ])
        .collect();
    for src in sources {
        let with = compile_str(&src).unwrap();
        let without = compile_program(
            &src,
            &EmptyProvider,
            &CompileOptions::default().without_pass("lint"),
        )
        .unwrap();
        assert_eq!(with.ir_text(), without.ir_text());
        assert_eq!(with.c_source, without.c_source);
        assert_eq!(with.peephole_stats, without.peephole_stats);
        assert_eq!(with.guard_stats, without.guard_stats);
        assert!(without.lint.warnings.is_empty(), "disabled pass reported");
    }
}

// ---- divergence lints on hand-built IR ------------------------------------
//
// The source language cannot express rank-divergent control flow (all
// scalars are replicated and resolution rejects use-before-assignment),
// so these fixtures build IR directly: an undefined variable models a
// per-rank value, exactly what a future `ML_rank()` intrinsic would
// introduce.

fn rand_mat(dst: &str) -> Instr {
    Instr::InitMatrix {
        dst: dst.into(),
        init: MatInit::Rand {
            rows: SExpr::c(8.0),
            cols: SExpr::c(8.0),
        },
    }
}

#[test]
fn divergent_collective_golden() {
    let mut p = IrProgram {
        main: vec![
            rand_mat("a"),
            Instr::If {
                cond: SExpr::bin(SBinOp::Gt, SExpr::var("myrank"), SExpr::c(0.0)),
                then_body: vec![Instr::Reduce {
                    dst: "s".into(),
                    op: RedOp::SumAll,
                    m: "a".into(),
                }],
                else_body: vec![],
            },
        ],
        ..Default::default()
    };
    p.var_ranks.insert("a".into(), VarRank::Matrix);
    p.var_ranks.insert("s".into(), VarRank::Scalar);
    let report = lint_program(&p);
    assert!(!report.divergence_free);
    // No source span exists for hand-built IR: the rendering must fall
    // back cleanly (satellite: no dangling `:` or whitespace).
    let lines = rendered(&report);
    assert_eq!(
        lines,
        [
            "warning[lint]: collective divergence: `s` (`reduce`) executes under \
          rank-divergent control flow; ranks that skip the branch never enter \
          the collective and the others deadlock"
        ]
    );
}

#[test]
fn divergent_point_to_point_breaks_sendrecv_matching() {
    let mut p = IrProgram {
        main: vec![
            rand_mat("a"),
            Instr::While {
                pre: vec![],
                cond: SExpr::bin(SBinOp::Gt, SExpr::var("myrank"), SExpr::c(0.0)),
                body: vec![Instr::Transpose {
                    dst: "b".into(),
                    a: "a".into(),
                }],
            },
        ],
        ..Default::default()
    };
    p.var_ranks.insert("a".into(), VarRank::Matrix);
    p.var_ranks.insert("b".into(), VarRank::Matrix);
    let report = lint_program(&p);
    assert!(!report.sendrecv_matched);
    assert!(!report.divergence_free);
    assert_eq!(report.p2p_sites, 1);
    assert!(
        report.warnings.iter().any(|w| w
            .message
            .starts_with("send/recv mismatch: point-to-point `b` (`transpose`)")),
        "{:#?}",
        rendered(&report)
    );
}

#[test]
fn uniform_branches_around_collectives_stay_clean() {
    // The same shape with a *defined* (replicated) condition variable
    // must not warn: the lint keys on provable rank-dependence, not on
    // collectives-inside-branches.
    let mut p = IrProgram {
        main: vec![
            Instr::AssignScalar {
                dst: "n".into(),
                src: SExpr::c(4.0),
            },
            rand_mat("a"),
            Instr::If {
                cond: SExpr::bin(SBinOp::Gt, SExpr::var("n"), SExpr::c(2.0)),
                then_body: vec![Instr::Reduce {
                    dst: "s".into(),
                    op: RedOp::SumAll,
                    m: "a".into(),
                }],
                else_body: vec![],
            },
        ],
        ..Default::default()
    };
    p.var_ranks.insert("a".into(), VarRank::Matrix);
    p.var_ranks.insert("s".into(), VarRank::Scalar);
    p.var_ranks.insert("n".into(), VarRank::Scalar);
    let report = lint_program(&p);
    assert!(report.divergence_free);
    assert!(report.is_clean(), "{:#?}", rendered(&report));
}
