//! # otter
//!
//! Facade crate for **otter-rs**, a from-scratch Rust reproduction of
//! Quinn et al., *"Preliminary Results from a Parallel MATLAB
//! Compiler"* (IPPS 1998): a compiler from pure MATLAB to SPMD
//! message-passing programs, its distributed-matrix run-time library,
//! the baseline systems it was evaluated against, and performance
//! models of its three 1998 test beds.
//!
//! This crate re-exports the member crates under stable names and
//! hosts the repository's runnable examples (`examples/`) and
//! cross-crate integration tests (`tests/`). Most users want:
//!
//! ```
//! use otter::core::{compile, run, EngineOptions, RunRequest};
//! use otter::machine::meiko_cs2;
//!
//! let artifact = compile("v = 1:100;\ns = sum(v);", &EngineOptions::default()).unwrap();
//! let report = run(&artifact, &RunRequest::on(meiko_cs2(), 8)).unwrap();
//! assert_eq!(report.scalar("s"), Some(5050.0));
//! ```

/// Resolution, SSA, type/rank/shape inference.
pub use otter_analysis as analysis;
/// The paper's four benchmark applications.
pub use otter_apps as apps;
/// Lowering, peephole optimization, C emission.
pub use otter_codegen as codegen;
/// The compiler driver and execution engines.
pub use otter_core as core;
/// MATLAB front end: lexer, parser, AST.
pub use otter_frontend as frontend;
/// The baseline MATLAB interpreter.
pub use otter_interp as interp;
/// The SPMD intermediate representation.
pub use otter_ir as ir;
/// Machine performance models.
pub use otter_machine as machine;
/// The message-passing substrate.
pub use otter_mpi as mpi;
/// The distributed-matrix run-time library.
pub use otter_rt as rt;
