//! Communication-bearing linear algebra: the run-time library calls
//! the compiler emits for operations that cannot be done as local
//! element-wise loops (paper §3-4: `ML_matrix_multiply`,
//! `ML_matrix_vector_multiply`, transpose, outer products).

use crate::dense::Dense;
use crate::dist::Block;
use crate::matrix::DistMatrix;
use otter_mpi::{Comm, CommError};
use otter_trace::EventKind;

impl DistMatrix {
    /// Distributed matrix multiply, `C = A · B` (`ML_matrix_multiply`).
    ///
    /// Both operands are row-block distributed; the rows of `B` rotate
    /// around a ring while each rank accumulates the partial products
    /// its rows of `A` need. Per step, rank `r` multiplies its
    /// `A(:, k-range)` panel against the visiting `B` block:
    /// `p` steps, each moving `(k/p)·n` elements — the standard 1-D
    /// rotation algorithm a row-distributed 1998 run-time would use.
    pub fn matmul(&self, comm: &mut Comm, other: &DistMatrix) -> Result<DistMatrix, CommError> {
        let t0 = comm.clock();
        let out = self.matmul_impl(comm, other)?;
        comm.emit_span(
            EventKind::Phase {
                name: "ML_matrix_multiply",
            },
            t0,
        );
        crate::note_rt_op(comm, "ML_matrix_multiply", t0);
        Ok(out)
    }

    fn matmul_impl(&self, comm: &mut Comm, other: &DistMatrix) -> Result<DistMatrix, CommError> {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul inner dimensions {}x{} * {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, kk, n) = (self.rows(), self.cols(), other.cols());
        let p = comm.size();
        let rank = comm.rank();
        // Degenerate shapes the compiler normally folds away but the
        // library still honours:
        if m == 1 && kk == 1 {
            // (1×1) · B — scalar scaling.
            let s = self.get_bcast(comm, 0, 0)?;
            return Ok(other.map_scalar(comm, s, otter_machine::OpClass::Mul, |x, v| x * v));
        }
        if kk == 1 && other.cols() == 1 {
            // A(m×1) · B(1×1) — scalar scaling from the right.
            let s = other.get_bcast(comm, 0, 0)?;
            return Ok(self.map_scalar(comm, s, otter_machine::OpClass::Mul, |x, v| x * v));
        }
        if kk == 1 && m > 1 && n > 1 {
            // (m×1) · (1×n) — outer product of a column by a row.
            return DistMatrix::outer(comm, self, other);
        }
        // Treat operands uniformly as row-distributed 2-D objects.
        // (A 1×k row-vector operand distributes over its elements, not
        // rows; gather it and fall back to a local multiply broadcast
        // across ranks — it is small by definition.)
        if self.is_vector() && self.rows() == 1 {
            // (1×k) · (k×n) — row vector times matrix.
            let x = self.gather_all(comm)?.into_data();
            let bb = Block::new(other.dist_extent(), p);
            // partial_j = Σ_{k local} x[k] · B[k, j]
            let mut partial = vec![0.0; n];
            for (li, gk) in bb.range(rank).enumerate() {
                let brow = &other.local()[li * n..(li + 1) * n];
                let xv = x[gk];
                for (acc, &b) in partial.iter_mut().zip(brow) {
                    *acc += xv * b;
                }
            }
            comm.compute(2.0 * bb.count(rank) as f64 * n as f64);
            let full = comm.allreduce(&partial, otter_mpi::ReduceOp::Sum)?;
            return Ok(DistMatrix::from_replicated(comm, &Dense::row_vector(&full)));
        }
        if other.is_vector() && other.cols() == 1 {
            // (m×k) · (k×1) is a matvec.
            return self.matvec(comm, other);
        }

        let a_rows = Block::new(m, p);
        let b_rows = Block::new(kk, p);
        let my_rows = a_rows.count(rank);
        let mut c_local = vec![0.0; my_rows * n];
        let mut cur: Vec<f64> = other.local().to_vec();
        let mut cur_owner = rank;
        for step in 0..p {
            // Multiply my A panel for the k-range owned by cur_owner —
            // the branchless tiled kernel, accumulating the visiting
            // block's contributions in ascending k.
            let krange = b_rows.range(cur_owner);
            crate::kernels::matmul_accumulate(
                &mut c_local,
                my_rows,
                n,
                krange.len(),
                self.local(),
                kk,
                krange.start,
                &cur,
            );
            comm.compute(2.0 * my_rows as f64 * krange.len() as f64 * n as f64);
            if step + 1 < p {
                // Rotate: pass my current B block left, take from right.
                let left = (rank + p - 1) % p;
                let right = (rank + 1) % p;
                comm.send_concurrent(left, &cur, p)?;
                cur = comm.recv(right)?;
                cur_owner = (cur_owner + 1) % p;
            }
        }
        Ok(DistMatrix::from_local(comm, m, n, c_local))
    }

    /// Distributed matrix–vector product
    /// (`ML_matrix_vector_multiply`): `y = A · x` with `x` block
    /// distributed. `x` is allgathered (it is a factor `n` smaller than
    /// `A`), then each rank multiplies its row panel; the result is
    /// already correctly distributed because `A`'s row blocks coincide
    /// with `y`'s element blocks.
    pub fn matvec(&self, comm: &mut Comm, x: &DistMatrix) -> Result<DistMatrix, CommError> {
        let t0 = comm.clock();
        assert!(x.is_vector(), "matvec needs a vector");
        assert_eq!(
            self.cols(),
            x.len(),
            "matvec dimensions {}x{} · {}",
            self.rows(),
            self.cols(),
            x.len()
        );
        let x_full = x.gather_all(comm)?.into_data();
        let w = self.cols();
        let mut local = vec![0.0; self.local().len() / w.max(1)];
        crate::kernels::matvec_into(&mut local, self.local(), w, &x_full);
        comm.compute(2.0 * local.len() as f64 * w as f64);
        comm.emit_span(
            EventKind::Phase {
                name: "ML_matrix_vector_multiply",
            },
            t0,
        );
        crate::note_rt_op(comm, "ML_matrix_vector_multiply", t0);
        Ok(DistMatrix::from_local(comm, self.rows(), 1, local))
    }

    /// Outer product of two distributed vectors: `u · vᵀ`, row-block
    /// distributed like any `m×n` result. `v` is allgathered; `u` is
    /// already aligned with the result's rows.
    pub fn outer(comm: &mut Comm, u: &DistMatrix, v: &DistMatrix) -> Result<DistMatrix, CommError> {
        let t0 = comm.clock();
        assert!(u.is_vector() && v.is_vector(), "outer needs vectors");
        let (m, n) = (u.len(), v.len());
        let v_full = v.gather_all(comm)?.into_data();
        let rows = Block::new(m, comm.size());
        // u's element blocks coincide with the result's row blocks.
        let mut local = vec![0.0; rows.count(comm.rank()) * n];
        for (li, &uv) in u.local().iter().enumerate() {
            for (j, &vv) in v_full.iter().enumerate() {
                local[li * n + j] = uv * vv;
            }
        }
        comm.compute(u.local_els() as f64 * n as f64);
        comm.emit_span(EventKind::Phase { name: "ML_outer" }, t0);
        crate::note_rt_op(comm, "ML_outer", t0);
        Ok(DistMatrix::from_local(comm, m, n, local))
    }

    /// Distributed transpose: an all-to-all where rank `r` ships the
    /// intersection of its row panel with every destination's column
    /// panel.
    pub fn transpose(&self, comm: &mut Comm) -> Result<DistMatrix, CommError> {
        let t0 = comm.clock();
        let out = self.transpose_impl(comm)?;
        comm.emit_span(
            EventKind::Phase {
                name: "ML_transpose",
            },
            t0,
        );
        crate::note_rt_op(comm, "ML_transpose", t0);
        Ok(out)
    }

    fn transpose_impl(&self, comm: &mut Comm) -> Result<DistMatrix, CommError> {
        let (m, n) = (self.rows(), self.cols());
        if self.is_vector() {
            // A vector transpose only flips orientation; both
            // orientations share the same element distribution.
            return Ok(DistMatrix::from_local(comm, n, m, self.local().to_vec()));
        }
        let p = comm.size();
        let rank = comm.rank();
        let src_rows = Block::new(m, p); // my rows of A
        let dst_rows = Block::new(n, p); // my rows of Aᵀ = columns of A
                                         // Ship phase: to each rank d, send A(my rows, d's columns),
                                         // transposed so the receiver can splice rows directly.
        for d in 0..p {
            if d == rank {
                continue;
            }
            let cols = dst_rows.range(d);
            let mut payload = Vec::with_capacity(src_rows.count(rank) * cols.len());
            for j in cols.clone() {
                for li in 0..src_rows.count(rank) {
                    payload.push(self.local()[li * n + j]);
                }
            }
            comm.send_concurrent(d, &payload, p - 1)?;
        }
        // Assemble phase: my Aᵀ rows are A's columns dst_rows.range(rank);
        // each source rank contributes the element block for its rows.
        let my_cols = dst_rows.range(rank);
        let mut local = vec![0.0; my_cols.len() * m];
        for s in 0..p {
            let their_rows = src_rows.range(s);
            let chunk: Vec<f64> = if s == rank {
                let mut v = Vec::with_capacity(their_rows.len() * my_cols.len());
                for j in my_cols.clone() {
                    for li in 0..their_rows.len() {
                        v.push(self.local()[li * n + j]);
                    }
                }
                v
            } else {
                comm.recv(s)?
            };
            // chunk is (my_cols.len() × their_rows.len()) row-major in
            // transposed orientation already.
            for (cj, _) in my_cols.clone().enumerate() {
                for (ri, gr) in their_rows.clone().enumerate() {
                    local[cj * m + gr] = chunk[cj * their_rows.len() + ri];
                }
            }
        }
        comm.compute(local.len() as f64);
        Ok(DistMatrix::from_local(comm, n, m, local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_det::DetRng;
    use otter_machine::meiko_cs2;
    use otter_mpi::run_spmd;

    fn rand_dense(rows: usize, cols: usize, seed: u64) -> Dense {
        let mut rng = DetRng::seed_from_u64(seed);
        Dense::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    fn assert_close(a: &Dense, b: &Dense, tol: f64) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_dense_oracle() {
        for p in [1usize, 2, 3, 4, 8] {
            for (m, k, n) in [(6, 6, 6), (5, 7, 3), (9, 2, 4), (1, 1, 1), (16, 16, 16)] {
                let a = rand_dense(m, k, 1);
                let b = rand_dense(k, n, 2);
                // Skip vector-shaped operands here; covered separately.
                if m == 1 || n == 1 || k == 1 {
                    continue;
                }
                let oracle = a.matmul(&b);
                let (aa, bb) = (a.clone(), b.clone());
                let res = run_spmd(&meiko_cs2(), p, move |c| {
                    let da = DistMatrix::from_replicated(c, &aa);
                    let db = DistMatrix::from_replicated(c, &bb);
                    da.matmul(c, &db)?.gather_all(c)
                });
                for r in &res {
                    assert_close(&r.value, &oracle, 1e-12);
                }
            }
        }
    }

    #[test]
    fn matmul_row_vector_times_matrix() {
        let a = rand_dense(1, 6, 3);
        let b = rand_dense(6, 4, 4);
        let oracle = a.matmul(&b);
        let res = run_spmd(&meiko_cs2(), 3, move |c| {
            let da = DistMatrix::from_replicated(c, &a);
            let db = DistMatrix::from_replicated(c, &b);
            da.matmul(c, &db)?.gather_all(c)
        });
        assert_close(&res[0].value, &oracle, 1e-12);
    }

    #[test]
    fn matmul_matrix_times_column_vector() {
        let a = rand_dense(5, 6, 5);
        let x = rand_dense(6, 1, 6);
        let oracle = a.matmul(&x);
        let res = run_spmd(&meiko_cs2(), 4, move |c| {
            let da = DistMatrix::from_replicated(c, &a);
            let dx = DistMatrix::from_replicated(c, &x);
            da.matmul(c, &dx)?.gather_all(c)
        });
        assert_close(&res[0].value, &oracle, 1e-12);
    }

    #[test]
    fn matvec_matches_dense() {
        for p in [1usize, 2, 5] {
            let a = rand_dense(8, 8, 7);
            let x = rand_dense(8, 1, 8);
            let oracle = Dense::col_vector(&a.matvec(x.data()));
            let (aa, xx) = (a, x);
            let res = run_spmd(&meiko_cs2(), p, move |c| {
                let da = DistMatrix::from_replicated(c, &aa);
                let dx = DistMatrix::from_replicated(c, &xx);
                da.matvec(c, &dx)?.gather_all(c)
            });
            assert_close(&res[0].value, &oracle, 1e-12);
        }
    }

    #[test]
    fn outer_matches_dense() {
        let u = rand_dense(5, 1, 9);
        let v = rand_dense(1, 7, 10);
        let oracle = Dense::outer(u.data(), v.data());
        let res = run_spmd(&meiko_cs2(), 3, move |c| {
            let du = DistMatrix::from_replicated(c, &u);
            let dv = DistMatrix::from_replicated(c, &v);
            DistMatrix::outer(c, &du, &dv)?.gather_all(c)
        });
        assert_close(&res[0].value, &oracle, 1e-12);
    }

    #[test]
    fn transpose_matches_dense() {
        for p in [1usize, 2, 3, 4] {
            for (m, n) in [(6, 6), (5, 3), (2, 9)] {
                let a = rand_dense(m, n, 11);
                let oracle = a.transpose();
                let aa = a.clone();
                let res = run_spmd(&meiko_cs2(), p, move |c| {
                    let da = DistMatrix::from_replicated(c, &aa);
                    da.transpose(c)?.gather_all(c)
                });
                for r in &res {
                    assert_close(&r.value, &oracle, 0.0);
                }
            }
        }
    }

    #[test]
    fn transpose_vector_flips_orientation() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            let v = DistMatrix::range(c, 1.0, 1.0, 5.0); // 1×5
            let t = v.transpose(c)?;
            Ok((t.rows(), t.cols(), t.gather_all(c)?.into_data()))
        });
        assert_eq!(res[0].value, (5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]));
    }

    #[test]
    fn transpose_involution_distributed() {
        let a = rand_dense(7, 4, 12);
        let aa = a.clone();
        let res = run_spmd(&meiko_cs2(), 4, move |c| {
            let da = DistMatrix::from_replicated(c, &aa);
            da.transpose(c)?.transpose(c)?.gather_all(c)
        });
        assert_close(&res[0].value, &a, 0.0);
    }

    #[test]
    fn matmul_associates_with_identity() {
        let a = rand_dense(6, 6, 13);
        let aa = a.clone();
        let res = run_spmd(&meiko_cs2(), 3, move |c| {
            let da = DistMatrix::from_replicated(c, &aa);
            let i = DistMatrix::eye(c, 6);
            da.matmul(c, &i)?.gather_all(c)
        });
        assert_close(&res[0].value, &a, 1e-12);
    }

    #[test]
    fn distributed_matmul_propagates_nan_through_zero_entries() {
        // Same regression as the Dense kernel, through the ring
        // algorithm: a 0.0 in A must still multiply a NaN in the
        // visiting B block.
        for p in [1usize, 2, 3] {
            let mut a = Dense::eye(6);
            a.set(0, 5, 0.0); // explicit zero against B's NaN row
            let mut b = Dense::ones(6, 6);
            b.set(5, 0, f64::NAN);
            let res = run_spmd(&meiko_cs2(), p, move |c| {
                let da = DistMatrix::from_replicated(c, &a);
                let db = DistMatrix::from_replicated(c, &b);
                da.matmul(c, &db)?.gather_all(c)
            });
            for r in &res {
                assert!(
                    r.value.get(0, 0).is_nan(),
                    "p={p}: 0·NaN dropped: {}",
                    r.value.get(0, 0)
                );
                // Rows without a NaN factor stay finite.
                assert_eq!(r.value.get(1, 1), 1.0, "p={p}");
            }
        }
    }

    #[test]
    fn matmul_bits_stable_across_tile_sizes() {
        // The ring algorithm's per-rank k order is fixed by the
        // rotation schedule; within a visit the kernel accumulates in
        // ascending k for every tile size, so the distributed product
        // is byte-identical across tiles.
        let a = rand_dense(12, 12, 21);
        let b = rand_dense(12, 12, 22);
        let mut reference: Option<Vec<u64>> = None;
        for tile in [1usize, 5, 64] {
            let (aa, bb) = (a.clone(), b.clone());
            let res = run_spmd(&meiko_cs2(), 4, move |c| {
                crate::kernels::configure(tile, 1);
                let da = DistMatrix::from_replicated(c, &aa);
                let db = DistMatrix::from_replicated(c, &bb);
                let out = da.matmul(c, &db)?.gather_all(c)?;
                crate::kernels::configure(crate::kernels::DEFAULT_TILE, 1);
                Ok(out.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>())
            });
            match &reference {
                None => reference = Some(res[0].value.clone()),
                Some(bits) => {
                    assert_eq!(bits, &res[0].value, "tile {tile} changed product bits")
                }
            }
        }
    }

    #[test]
    fn matmul_charges_compute_time() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            let a = DistMatrix::ones(c, 32, 32);
            let b = DistMatrix::ones(c, 32, 32);
            let before = c.stats().compute_time;
            let _ = a.matmul(c, &b)?;
            Ok(c.stats().compute_time - before)
        });
        // 2·m·k·n/p flops per rank at 25 Mflop/s.
        let expect = 2.0 * 32.0 * 32.0 * 32.0 / 2.0 / 25e6;
        for r in &res {
            assert!(
                r.value >= expect * 0.9,
                "charged {} expected ≥ {expect}",
                r.value
            );
        }
    }
}
