//! The labeled metric registry and its mergeable snapshots.
//!
//! A [`MetricsRegistry`] is a per-rank, single-owner store (ranks are
//! threads and each owns its registry, so there are no locks on the
//! record path — the same design as `otter_rt::alloc`). Recording
//! goes through either the one-shot methods (`inc`/`gauge_max`/
//! `observe`, which look the key up by name + labels) or through a
//! pre-registered [`MetricId`] handle for hot paths that record the
//! same metric thousands of times.
//!
//! At the end of a run every rank's registry freezes into a
//! [`MetricsSnapshot`] — a sorted, immutable map — and snapshots merge
//! deterministically into the job-level view: counters add, gauges
//! take the maximum (they track high-water marks), histograms add
//! bucket-wise. All three merge operators are associative and
//! commutative, so the job snapshot is independent of rank order.

use crate::hist::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt;

/// A metric identity: name plus canonically ordered label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: String,
    pub labels: BTreeMap<String, String>,
}

impl MetricKey {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}=\"{v}\"")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// One metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone event count; merges by addition.
    Counter(u64),
    /// High-water mark; merges by maximum.
    Gauge(f64),
    /// Log₂-bucketed distribution; merges bucket-wise.
    Histogram(Histogram),
}

impl MetricValue {
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    fn merge(&mut self, other: &MetricValue, key: &MetricKey) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.max(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            (a, b) => panic!("metric `{key}` merged as {} into {}", b.kind(), a.kind()),
        }
    }
}

/// Stable handle to one registered metric (index into the registry's
/// arena). Valid only for the registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// A per-rank metric store. See the module docs for the model.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Arena in registration order — `MetricId`s index into this.
    entries: Vec<(MetricKey, MetricValue)>,
    /// Canonical key → arena slot.
    index: BTreeMap<MetricKey, usize>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn slot(&mut self, name: &str, labels: &[(&str, &str)], make: fn() -> MetricValue) -> usize {
        let key = MetricKey::new(name, labels);
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let i = self.entries.len();
        self.entries.push((key.clone(), make()));
        self.index.insert(key, i);
        i
    }

    /// Pre-register a counter and get a hot-path handle.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> MetricId {
        MetricId(self.slot(name, labels, || MetricValue::Counter(0)))
    }

    /// Pre-register a (max-)gauge and get a hot-path handle.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> MetricId {
        MetricId(self.slot(name, labels, || MetricValue::Gauge(f64::NEG_INFINITY)))
    }

    /// Pre-register a histogram and get a hot-path handle.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> MetricId {
        MetricId(self.slot(name, labels, || MetricValue::Histogram(Histogram::new())))
    }

    /// Add `by` to the counter behind `id`.
    pub fn inc_id(&mut self, id: MetricId, by: u64) {
        match &mut self.entries[id.0].1 {
            MetricValue::Counter(c) => *c += by,
            other => panic!("MetricId is a {}, not a counter", other.kind()),
        }
    }

    /// Raise the gauge behind `id` to at least `v`.
    pub fn gauge_max_id(&mut self, id: MetricId, v: f64) {
        match &mut self.entries[id.0].1 {
            MetricValue::Gauge(g) => *g = g.max(v),
            other => panic!("MetricId is a {}, not a gauge", other.kind()),
        }
    }

    /// Record `v` into the histogram behind `id`.
    pub fn observe_id(&mut self, id: MetricId, v: f64) {
        match &mut self.entries[id.0].1 {
            MetricValue::Histogram(h) => h.observe(v),
            other => panic!("MetricId is a {}, not a histogram", other.kind()),
        }
    }

    /// One-shot counter increment (looks the key up; use
    /// [`MetricsRegistry::counter`] + [`MetricsRegistry::inc_id`] on
    /// hot paths).
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        let id = self.counter(name, labels);
        self.inc_id(id, by);
    }

    /// One-shot high-water-mark update.
    pub fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let id = self.gauge(name, labels);
        self.gauge_max_id(id, v);
    }

    /// One-shot histogram observation.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let id = self.histogram(name, labels);
        self.observe_id(id, v);
    }

    /// Freeze into a sorted, mergeable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .index
                .iter()
                .map(|(k, &i)| (k.clone(), self.entries[i].1.clone()))
                .collect(),
        }
    }
}

/// An immutable, canonically sorted set of metric values — what a rank
/// reports and what ranks' reports merge into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub entries: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fold `other` into `self`: counters add, gauges take the max,
    /// histograms merge bucket-wise. Panics on a name registered with
    /// two different metric kinds (a programming error).
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        for (key, val) in &other.entries {
            match self.entries.get_mut(key) {
                Some(mine) => mine.merge(val, key),
                None => {
                    self.entries.insert(key.clone(), val.clone());
                }
            }
        }
    }

    /// Merge a sequence of snapshots (e.g. one per rank) into one.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a MetricsSnapshot>) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for p in parts {
            out.merge_from(p);
        }
        out
    }

    fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.entries.get(&MetricKey::new(name, labels))
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels)? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.get(name, labels)? {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.get(name, labels)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sum of a counter over every label combination it was recorded
    /// with (e.g. total ops across all opcodes).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.name == name)
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Serialize as a JSON array of metric objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|(k, v)| {
                    let mut obj = vec![
                        ("name".to_string(), Json::Str(k.name.clone())),
                        (
                            "labels".to_string(),
                            Json::Obj(
                                k.labels
                                    .iter()
                                    .map(|(lk, lv)| (lk.clone(), Json::Str(lv.clone())))
                                    .collect(),
                            ),
                        ),
                        ("type".to_string(), Json::Str(v.kind().to_string())),
                    ];
                    match v {
                        MetricValue::Counter(c) => {
                            obj.push(("value".to_string(), Json::Num(*c as f64)));
                        }
                        MetricValue::Gauge(g) => {
                            obj.push(("value".to_string(), Json::Num(*g)));
                        }
                        MetricValue::Histogram(h) => {
                            obj.push(("count".to_string(), Json::Num(h.count() as f64)));
                            obj.push(("sum".to_string(), Json::Num(h.sum())));
                            if let (Some(mn), Some(mx)) = (h.min(), h.max()) {
                                obj.push(("min".to_string(), Json::Num(mn)));
                                obj.push(("max".to_string(), Json::Num(mx)));
                            }
                            obj.push((
                                "buckets".to_string(),
                                Json::Arr(
                                    h.nonzero_buckets()
                                        .map(|(i, _, c)| {
                                            Json::Arr(vec![
                                                Json::Num(i as f64),
                                                Json::Num(c as f64),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ));
                        }
                    }
                    Json::Obj(obj)
                })
                .collect(),
        )
    }

    /// Parse a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(json: &Json) -> Result<MetricsSnapshot, String> {
        let arr = json.as_arr().ok_or("metrics: expected an array")?;
        let mut entries = BTreeMap::new();
        for m in arr {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric missing name")?;
            let labels: BTreeMap<String, String> = match m.get("labels") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| {
                        v.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or_else(|| format!("metric `{name}`: non-string label"))
                    })
                    .collect::<Result<_, _>>()?,
                _ => BTreeMap::new(),
            };
            let kind = m
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metric `{name}` missing type"))?;
            let num = |field: &str| -> Result<f64, String> {
                m.get(field)
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("metric `{name}` missing `{field}`"))
            };
            let value = match kind {
                "counter" => MetricValue::Counter(num("value")? as u64),
                "gauge" => MetricValue::Gauge(num("value")?),
                "histogram" => {
                    let count = num("count")? as u64;
                    let sum = num("sum")?;
                    let min = m.get("min").and_then(Json::as_num).unwrap_or(f64::INFINITY);
                    let max = m
                        .get("max")
                        .and_then(Json::as_num)
                        .unwrap_or(f64::NEG_INFINITY);
                    let sparse: Vec<(usize, u64)> = match m.get("buckets") {
                        Some(Json::Arr(pairs)) => pairs
                            .iter()
                            .filter_map(|p| {
                                let pair = p.as_arr()?;
                                Some((
                                    pair.first()?.as_num()? as usize,
                                    pair.get(1)?.as_num()? as u64,
                                ))
                            })
                            .collect(),
                        _ => Vec::new(),
                    };
                    MetricValue::Histogram(Histogram::from_parts(count, sum, min, max, &sparse))
                }
                other => return Err(format!("metric `{name}`: unknown type `{other}`")),
            };
            entries.insert(
                MetricKey {
                    name: name.to_string(),
                    labels,
                },
                value,
            );
        }
        Ok(MetricsSnapshot { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_and_handles_hit_the_same_metric() {
        let mut r = MetricsRegistry::new();
        let id = r.counter("msgs", &[("dir", "send")]);
        r.inc_id(id, 2);
        r.inc("msgs", &[("dir", "send")], 3);
        let s = r.snapshot();
        assert_eq!(s.counter("msgs", &[("dir", "send")]), Some(5));
        assert_eq!(s.counter("msgs", &[]), None);
    }

    #[test]
    fn label_order_is_canonical() {
        let mut r = MetricsRegistry::new();
        r.inc("m", &[("b", "2"), ("a", "1")], 1);
        r.inc("m", &[("a", "1"), ("b", "2")], 1);
        let s = r.snapshot();
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.counter("m", &[("a", "1"), ("b", "2")]), Some(2));
    }

    #[test]
    fn merge_semantics_per_kind() {
        let mut a = MetricsRegistry::new();
        a.inc("c", &[], 5);
        a.gauge_max("g", &[], 10.0);
        a.observe("h", &[], 1.0);
        let mut b = MetricsRegistry::new();
        b.inc("c", &[], 7);
        b.gauge_max("g", &[], 3.0);
        b.observe("h", &[], 4.0);
        b.inc("only_b", &[], 1);

        let mut m = a.snapshot();
        m.merge_from(&b.snapshot());
        assert_eq!(m.counter("c", &[]), Some(12), "counters add");
        assert_eq!(m.gauge("g", &[]), Some(10.0), "gauges take the max");
        let h = m.histogram("h", &[]).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 5.0);
        assert_eq!(m.counter("only_b", &[]), Some(1), "union of keys");
    }

    #[test]
    fn counter_sum_spans_labels() {
        let mut r = MetricsRegistry::new();
        r.inc("ops", &[("op", "matmul")], 3);
        r.inc("ops", &[("op", "reduce")], 4);
        assert_eq!(r.snapshot().counter_sum("ops"), 7);
    }

    #[test]
    fn json_round_trip() {
        let mut r = MetricsRegistry::new();
        r.inc("msgs", &[("kind", "p2p")], 42);
        r.gauge_max("peak_bytes", &[], 1.5e6);
        r.observe("lat", &[("op", "send")], 0.001);
        r.observe("lat", &[("op", "send")], 0.5);
        let snap = r.snapshot();
        let text = snap.to_json().to_string();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn key_display_is_prometheus_style() {
        let k = MetricKey::new("op_seconds", &[("op", "matmul")]);
        assert_eq!(k.to_string(), "op_seconds{op=\"matmul\"}");
        assert_eq!(MetricKey::new("plain", &[]).to_string(), "plain");
    }
}
