//! Cache-blocked, branchless compute kernels shared by the local
//! [`crate::Dense`] algebra and the distributed run-time library.
//!
//! Three design rules, in priority order:
//!
//! 1. **Value-independent control flow.** No data-dependent branches:
//!    a zero (or NaN, or infinity) in the input takes the same path as
//!    any other value, so IEEE specials propagate per IEEE 754 rules
//!    (`0 · NaN = NaN`, `0 · ∞ = NaN`) and wall time depends only on
//!    shapes, never on contents.
//! 2. **Bit-stable accumulation.** Per output element, the k-index
//!    contributions are added in globally ascending k order for
//!    *every* tile size and thread count: tiles partition `0..kc` into
//!    ascending contiguous blocks processed in order, and threads
//!    split disjoint output-row chunks (never the k axis). The product
//!    is therefore byte-identical across all `(tile, threads)`
//!    configurations.
//! 3. **No per-op allocation.** The axpy loop order (`i-k-j`) streams
//!    rows of `B` directly — row-major `B` k-tiles are already
//!    contiguous, so there is no transpose pass and no tile-copy
//!    workspace; the only writes go to the caller's output buffer.
//!
//! The `i-k-j` (axpy) order is what makes rule 1 cheap: the inner loop
//! `c[j] += a · b[j]` has independent iterations the compiler can
//! vectorize, unlike the sequential dependence chain of an `i-j-k` dot
//! product. Blocking over k keeps the active `B` tile
//! (`tile × n` doubles) hot across all output rows.
//!
//! Per-thread kernel configuration lives here too: ranks are OS
//! threads, so a thread-local `(tile, threads)` pair lets the executor
//! give every rank its own budget without locks (same pattern as
//! [`crate::alloc`]).

use crate::pool;
use std::cell::Cell;

/// Default k-tile: 64 rows of a 512-wide `B` panel is a 256 KiB tile —
/// L2-resident on the machines this runs on, and evenly divides the
/// paper's power-of-two problem sizes.
pub const DEFAULT_TILE: usize = 64;

thread_local! {
    /// This thread's `(k-tile, intra-rank threads)` kernel budget.
    static KCFG: Cell<(usize, usize)> = const { Cell::new((DEFAULT_TILE, 1)) };
}

/// Set the calling rank's kernel configuration. Zero values are
/// clamped to 1.
pub fn configure(tile: usize, threads: usize) {
    KCFG.with(|c| c.set((tile.max(1), threads.max(1))));
}

/// The calling rank's `(k-tile, threads)` configuration.
pub fn config() -> (usize, usize) {
    KCFG.with(Cell::get)
}

/// `C += A_panel · B`: for `i in 0..m`, `j in 0..n`,
/// `c[i·n + j] += Σ_{k<kc} a[i·a_stride + a_off + k] · b[k·n + j]`.
///
/// `a` is a row-major matrix of row stride `a_stride` whose columns
/// `a_off..a_off+kc` form the panel — exactly the shape the ring
/// matmul's per-step panel multiply needs, with `a_stride = kc`,
/// `a_off = 0` recovering a plain whole-matrix multiply.
///
/// Accumulates in ascending k per output element regardless of the
/// configured tile, and splits output rows over the configured
/// intra-rank threads (see the module rules).
#[allow(clippy::too_many_arguments)] // BLAS-style panel signature: dims + (stride, offset) are the API
pub fn matmul_accumulate(
    c: &mut [f64],
    m: usize,
    n: usize,
    kc: usize,
    a: &[f64],
    a_stride: usize,
    a_off: usize,
    b: &[f64],
) {
    assert!(c.len() >= m * n, "output {} short of {m}x{n}", c.len());
    assert!(b.len() >= kc * n, "B {} short of {kc}x{n}", b.len());
    if m == 0 || n == 0 || kc == 0 {
        return;
    }
    assert!(
        a.len() >= (m - 1) * a_stride + a_off + kc,
        "A panel out of bounds"
    );
    let (tile, threads) = config();
    let threads = threads.min(m);
    let rows_per = m.div_ceil(threads);
    let c_base = c.as_mut_ptr() as usize;
    pool::parallel_for(threads, threads, &move |part| {
        let i0 = part * rows_per;
        if i0 >= m {
            return; // ceil-division can leave trailing empty parts
        }
        let i1 = (i0 + rows_per).min(m);
        // SAFETY: parts own disjoint row ranges [i0, i1) of the output,
        // and the caller's `c` borrow outlives the blocking
        // parallel_for call.
        let c_rows = unsafe {
            std::slice::from_raw_parts_mut((c_base as *mut f64).add(i0 * n), (i1 - i0) * n)
        };
        let nrows = i1 - i0;
        for k0 in (0..kc).step_by(tile) {
            let k1 = (k0 + tile).min(kc);
            // 4-row × 4-k register micro-kernel: four output rows share
            // each loaded `B` element, and `c[j]` stays in a register
            // across four k-steps. The per-element FP sequence is still
            // one mul+add per ascending k — blocking only regroups
            // loads, never reorders arithmetic — so bits match the
            // scalar tail (and every other tile/thread config) exactly.
            let mut rblocks = c_rows.chunks_exact_mut(4 * n);
            for (blk, cblk) in rblocks.by_ref().enumerate() {
                let row0 = i0 + blk * 4;
                let (c0, rest) = cblk.split_at_mut(n);
                let (c1, rest) = rest.split_at_mut(n);
                let (c2, c3) = rest.split_at_mut(n);
                let crows = [c0, c1, c2, c3];
                let arows: [&[f64]; 4] =
                    std::array::from_fn(|r| &a[(row0 + r) * a_stride + a_off..]);
                let mut k = k0;
                while k + 4 <= k1 {
                    let bk: [&[f64]; 4] = std::array::from_fn(|t| &b[(k + t) * n..][..n]);
                    let xs: [[f64; 4]; 4] =
                        std::array::from_fn(|r| std::array::from_fn(|t| arows[r][k + t]));
                    for j in 0..n {
                        let bj = [bk[0][j], bk[1][j], bk[2][j], bk[3][j]];
                        for r in 0..4 {
                            let mut t = crows[r][j];
                            t += xs[r][0] * bj[0];
                            t += xs[r][1] * bj[1];
                            t += xs[r][2] * bj[2];
                            t += xs[r][3] * bj[3];
                            crows[r][j] = t;
                        }
                    }
                    k += 4;
                }
                while k < k1 {
                    let brow = &b[k * n..][..n];
                    for r in 0..4 {
                        let av = arows[r][k];
                        for (cv, &bv) in crows[r].iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                    k += 1;
                }
            }
            // Remaining 0–3 rows: single-row axpy with the same 4-k
            // register blocking.
            let done = (nrows / 4) * 4;
            for (li, crow) in rblocks.into_remainder().chunks_exact_mut(n).enumerate() {
                let arow = &a[(i0 + done + li) * a_stride + a_off..];
                let mut k = k0;
                while k + 4 <= k1 {
                    let (a0, a1, a2, a3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
                    let b0 = &b[k * n..][..n];
                    let b1 = &b[(k + 1) * n..][..n];
                    let b2 = &b[(k + 2) * n..][..n];
                    let b3 = &b[(k + 3) * n..][..n];
                    for j in 0..n {
                        let mut t = crow[j];
                        t += a0 * b0[j];
                        t += a1 * b1[j];
                        t += a2 * b2[j];
                        t += a3 * b3[j];
                        crow[j] = t;
                    }
                    k += 4;
                }
                while k < k1 {
                    let av = arow[k];
                    let brow = &b[k * n..][..n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                    k += 1;
                }
            }
        }
    });
}

/// `y = A · x` for a row-major `m × w` panel: `y[i] = Σ_j a[i·w+j]·x[j]`.
///
/// Each output element is an independent dot product, so rows split
/// over the configured threads; the per-row summation order is the
/// natural ascending j for every thread count (rule 2).
pub fn matvec_into(y: &mut [f64], a: &[f64], w: usize, x: &[f64]) {
    let m = y.len();
    assert_eq!(x.len(), w, "matvec x length");
    assert!(a.len() >= m * w, "matvec A panel short");
    if m == 0 {
        return;
    }
    let (_, threads) = config();
    let threads = threads.min(m);
    let rows_per = m.div_ceil(threads);
    let y_base = y.as_mut_ptr() as usize;
    pool::parallel_for(threads, threads, &move |part| {
        let i0 = part * rows_per;
        if i0 >= m {
            return; // ceil-division can leave trailing empty parts
        }
        let i1 = (i0 + rows_per).min(m);
        // SAFETY: disjoint output ranges; `y` outlives the blocking
        // parallel_for call.
        let ys = unsafe { std::slice::from_raw_parts_mut((y_base as *mut f64).add(i0), i1 - i0) };
        for (li, out) in ys.iter_mut().enumerate() {
            let row = &a[(i0 + li) * w..(i0 + li + 1) * w];
            *out = row.iter().zip(x).map(|(&av, &xv)| av * xv).sum();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Restore the thread's default config when dropped, so tests
    /// cannot leak a configuration into each other.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            configure(DEFAULT_TILE, 1);
        }
    }

    fn mm(m: usize, n: usize, kc: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        matmul_accumulate(&mut c, m, n, kc, a, kc, 0, b);
        c
    }

    fn pseudo(len: usize, seed: u64) -> Vec<f64> {
        // Simple LCG — enough spread to make FP association visible.
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn known_product() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        assert_eq!(mm(2, 2, 3, &a, &b), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn tile_size_never_changes_a_bit() {
        let _g = Restore;
        let (m, kc, n) = (13, 29, 7); // awkward, non-divisible shapes
        let a = pseudo(m * kc, 1);
        let b = pseudo(kc * n, 2);
        configure(DEFAULT_TILE, 1);
        let reference = mm(m, n, kc, &a, &b);
        for tile in [1, 2, 3, 8, 64, 1000] {
            configure(tile, 1);
            let got = mm(m, n, kc, &a, &b);
            for (x, y) in reference.iter().zip(&got) {
                assert_eq!(x.to_bits(), y.to_bits(), "tile {tile} changed bits");
            }
        }
    }

    #[test]
    fn thread_count_never_changes_a_bit() {
        let _g = Restore;
        let (m, kc, n) = (17, 16, 11);
        let a = pseudo(m * kc, 3);
        let b = pseudo(kc * n, 4);
        configure(8, 1);
        let reference = mm(m, n, kc, &a, &b);
        for threads in [2, 3, 4, 8] {
            configure(8, threads);
            let got = mm(m, n, kc, &a, &b);
            for (x, y) in reference.iter().zip(&got) {
                assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads changed bits");
            }
        }
    }

    #[test]
    fn panel_offset_and_stride() {
        // Multiply only columns 1..3 of a 2x4 A against a 2x2 B.
        let a = [9.0, 1.0, 2.0, 9.0, 9.0, 3.0, 4.0, 9.0];
        let b = [1.0, 0.0, 0.0, 1.0];
        let mut c = vec![0.0; 4];
        matmul_accumulate(&mut c, 2, 2, 2, &a, 4, 1, &b);
        assert_eq!(c, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn nan_and_inf_propagate_through_zero_factors() {
        // 0 · NaN = NaN and 0 · ∞ = NaN: a value-skipping kernel would
        // silently drop both contributions.
        let a = [0.0, 1.0]; // 1x2
        let b = [f64::NAN, 1.0, 1.0, 1.0]; // 2x2
        let c = mm(1, 2, 2, &a, &b);
        assert!(c[0].is_nan(), "0·NaN + 1·1 must be NaN, got {}", c[0]);
        assert_eq!(c[1], 1.0, "0·1 + 1·1: finite column unaffected");
        let binf = [f64::INFINITY, 1.0, 1.0, 1.0];
        let cinf = mm(1, 2, 2, &a, &binf);
        assert!(cinf[0].is_nan(), "0·∞ + 1·1 must be NaN, got {}", cinf[0]);
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let _g = Restore;
        let (m, w) = (9, 23);
        let a = pseudo(m * w, 5);
        let x = pseudo(w, 6);
        let mut y = vec![0.0; m];
        matvec_into(&mut y, &a, w, &x);
        for threads in [2, 4] {
            configure(DEFAULT_TILE, threads);
            let mut yt = vec![0.0; m];
            matvec_into(&mut yt, &a, w, &x);
            for (p, q) in y.iter().zip(&yt) {
                assert_eq!(p.to_bits(), q.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn config_is_per_thread() {
        configure(7, 3);
        assert_eq!(config(), (7, 3));
        std::thread::spawn(|| {
            assert_eq!(config(), (DEFAULT_TILE, 1), "fresh thread gets defaults");
        })
        .join()
        .unwrap();
        configure(DEFAULT_TILE, 1);
    }

    #[test]
    #[ignore = "manual kernel throughput probe; run with --ignored --nocapture"]
    fn throughput_probe() {
        let _g = Restore;
        let n = 192;
        let a = pseudo(n * n, 7);
        let b = pseudo(n * n, 8);
        let mut c = vec![0.0; n * n];
        let reps = 50;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            matmul_accumulate(&mut c, n, n, n, &a, n, 0, &b);
        }
        let secs = t0.elapsed().as_secs_f64();
        let flops = (2 * n * n * n * reps) as f64;
        println!(
            "matmul {n}x{n}: {:.1} ms/mult, {:.2} GFLOP/s",
            secs * 1e3 / reps as f64,
            flops / secs / 1e9
        );
    }

    #[test]
    fn zero_clamps_to_one() {
        configure(0, 0);
        assert_eq!(config(), (1, 1));
        configure(DEFAULT_TILE, 1);
    }
}
